//! Misbehaving applications and how the schedulers contain them.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example adversary
//! ```
//!
//! Three scenarios from the paper's motivation:
//!
//! 1. A **greedy batcher** merges its work into 10 ms requests to hog
//!    a work-conserving device; timeslicing restores fairness.
//! 2. An **infinite-loop request** would hang the GPU forever; the
//!    scheduler identifies the offender (the token holder) and kills
//!    it, after which the victim recovers the full device.
//! 3. A **channel-hoarding attacker** opens contexts until the device
//!    is exhausted; the §6.3 allocation policy contains it.

use disengaged_scheduling::core::cost::SchedParams;
use disengaged_scheduling::core::world::{World, WorldConfig};
use disengaged_scheduling::core::SchedulerKind;
use disengaged_scheduling::experiments::sec63;
use disengaged_scheduling::workloads::adversary::{Batcher, InfiniteLoop};
use disengaged_scheduling::workloads::app;
use neon_sim::SimDuration;

fn main() {
    batcher_scenario();
    infinite_loop_scenario();
    channel_dos_scenario();
}

fn batcher_scenario() {
    println!("== 1. Greedy batcher (10ms requests) vs DCT ==");
    for scheduler in [SchedulerKind::Direct, SchedulerKind::DisengagedTimeslice] {
        let mut world = World::new(
            WorldConfig::default(),
            scheduler.build(SchedParams::default()),
        );
        world.add_task(Box::new(app::dct())).expect("room");
        world
            .add_task(Box::new(Batcher::new(SimDuration::from_millis(10))))
            .expect("room");
        let report = world.run(SimDuration::from_secs(1));
        let dct = report.tasks[0].usage;
        let batcher = report.tasks[1].usage;
        println!(
            "  {:<16} DCT got {:>7.1}ms of GPU, batcher {:>7.1}ms",
            scheduler.label(),
            dct.as_micros_f64() / 1000.0,
            batcher.as_micros_f64() / 1000.0,
        );
    }
    println!();
}

fn infinite_loop_scenario() {
    println!("== 2. Infinite-loop request (kill after the documented limit) ==");
    let params = SchedParams {
        // A short limit so the example finishes quickly.
        overlong_limit: SimDuration::from_millis(50),
        ..SchedParams::default()
    };
    let mut world = World::new(
        WorldConfig {
            params: params.clone(),
            ..WorldConfig::default()
        },
        SchedulerKind::DisengagedTimeslice.build(params),
    );
    world.add_task(Box::new(app::dct())).expect("room");
    world
        .add_task(Box::new(InfiniteLoop::new(
            20,
            SimDuration::from_micros(100),
        )))
        .expect("room");
    let report = world.run(SimDuration::from_secs(1));
    let victim = &report.tasks[0];
    let attacker = &report.tasks[1];
    println!(
        "  attacker killed: {} (completed {} rounds before poisoning the GPU)",
        attacker.killed,
        attacker.rounds_completed()
    );
    println!(
        "  victim completed {} rounds and kept running",
        victim.rounds_completed()
    );
    println!();
}

fn channel_dos_scenario() {
    println!("== 3. Channel exhaustion DoS (Sec 6.3) ==");
    let outcomes = sec63::run(&sec63::Config::default());
    println!("{}", sec63::render(&outcomes));
}
