//! Work conservation with nonsaturating workloads (the Figure 9/10
//! scenario).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example nonsaturating
//! ```
//!
//! A Throttle that keeps the device idle 80 % of the time shares it
//! with a saturating DCT. The timeslice schedulers waste Throttle's
//! idle slices; Disengaged Fair Queueing hands the slack to DCT
//! without hurting Throttle — fair sharing does not require co-runners
//! to suffer equally.

use disengaged_scheduling::core::SchedulerKind;
use disengaged_scheduling::experiments::pairwise::{self, PairwiseConfig};
use disengaged_scheduling::workloads::{app, throttle};
use neon_sim::SimDuration;

fn main() {
    let size = SimDuration::from_micros(430);
    println!("DCT vs Throttle(430us) at several off ratios, 2s simulated\n");
    for off in [0.0, 0.4, 0.8] {
        println!("-- Throttle off ratio {:.0}% --", off * 100.0);
        println!(
            "{:<16} {:>14} {:>20} {:>12}",
            "scheduler", "DCT slowdown", "Throttle slowdown", "efficiency"
        );
        for scheduler in SchedulerKind::PAPER {
            let result = pairwise::run(&PairwiseConfig {
                scheduler,
                workloads: vec![
                    Box::new(app::dct()),
                    Box::new(throttle::nonsaturating(size, off)),
                ],
                horizon: SimDuration::from_secs(2),
                seed: 42,
                cost: None,
                params: None,
            });
            println!(
                "{:<16} {:>13.2}x {:>19.2}x {:>12.2}",
                scheduler.label(),
                result.tasks[0].slowdown,
                result.tasks[1].slowdown,
                result.efficiency
            );
        }
        println!();
    }
    println!(
        "at high off ratios the timeslice rows lose efficiency (idle slices),\n\
         while disengaged fair queueing tracks the direct-access efficiency."
    );
}
