//! A four-tenant GPU server (the Figure 8 scenario, extended).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```
//!
//! One large-request Throttle plus three small-request applications
//! (BinarySearch, DCT, FFT) share the device under every scheduler,
//! including the engaged SFQ and DRR baselines. Fair sharing among
//! four tenants means each slows ~4-5x; the interesting column is the
//! efficiency each policy preserves while getting there.

use disengaged_scheduling::core::SchedulerKind;
use disengaged_scheduling::experiments::pairwise::{self, PairwiseConfig};
use disengaged_scheduling::workloads::{app, throttle};
use neon_sim::SimDuration;

fn main() {
    println!("Throttle(1.7ms) + BinarySearch + DCT + FFT, 3s simulated\n");
    println!(
        "{:<16} {:>10} {:>13} {:>8} {:>8} {:>12}",
        "scheduler", "Throttle", "BinarySearch", "DCT", "FFT", "efficiency"
    );
    for scheduler in SchedulerKind::ALL {
        let result = pairwise::run(&PairwiseConfig {
            scheduler,
            workloads: vec![
                Box::new(throttle::saturating(SimDuration::from_micros(1700))),
                Box::new(app::binary_search()),
                Box::new(app::dct()),
                Box::new(app::fft()),
            ],
            horizon: SimDuration::from_secs(3),
            seed: 42,
            cost: None,
            params: None,
        });
        let s: Vec<f64> = result.tasks.iter().map(|t| t.slowdown).collect();
        println!(
            "{:<16} {:>9.2}x {:>12.2}x {:>7.2}x {:>7.2}x {:>12.2}",
            scheduler.label(),
            s[0],
            s[1],
            s[2],
            s[3],
            result.efficiency
        );
    }
    println!(
        "\ndirect access favors the large-request tenant; the fair policies\n\
         even things out, and the disengaged ones do it at higher efficiency\n\
         than the per-request (engaged) baselines."
    );
}
