//! Quickstart: two applications share a simulated GPU under each of
//! the paper's schedulers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! DCT (small, frequent compute requests) competes with a Throttle
//! microbenchmark issuing 1.7 ms requests. Under direct device access
//! the round-robin-by-request device starves DCT; the disengaged
//! schedulers restore ~2x fair sharing at a few percent overhead.

use disengaged_scheduling::core::SchedulerKind;
use disengaged_scheduling::experiments::pairwise::{self, PairwiseConfig};
use disengaged_scheduling::workloads::{app, throttle};
use neon_sim::SimDuration;

fn main() {
    println!("DCT vs Throttle(1.7ms), 2s simulated per scheduler\n");
    println!(
        "{:<16} {:>14} {:>20} {:>12}",
        "scheduler", "DCT slowdown", "Throttle slowdown", "efficiency"
    );
    for scheduler in SchedulerKind::PAPER {
        let result = pairwise::run(&PairwiseConfig {
            scheduler,
            workloads: vec![
                Box::new(app::dct()),
                Box::new(throttle::saturating(SimDuration::from_micros(1700))),
            ],
            horizon: SimDuration::from_secs(2),
            seed: 42,
            cost: None,
            params: None,
        });
        println!(
            "{:<16} {:>13.2}x {:>19.2}x {:>12.2}",
            scheduler.label(),
            result.tasks[0].slowdown,
            result.tasks[1].slowdown,
            result.efficiency
        );
    }
    println!(
        "\nfair sharing for two tasks is ~2x each; direct access instead gives\n\
         the large-request task nearly the whole device."
    );
}
