//! Property-based tests over the full stack: conservation laws and
//! determinism that must hold for any workload mix, any scheduler,
//! and any seed.

use disengaged_scheduling::core::cost::SchedParams;
use disengaged_scheduling::core::world::{World, WorldConfig};
use disengaged_scheduling::core::{RunReport, SchedulerKind};
use disengaged_scheduling::workloads::Throttle;
use neon_sim::SimDuration;
use proptest::prelude::*;

fn run_mix(kind: SchedulerKind, sizes: &[u64], seed: u64, horizon_ms: u64) -> RunReport {
    let config = WorldConfig {
        seed,
        ..WorldConfig::default()
    };
    let mut world = World::new(config, kind.build(SchedParams::default()));
    for (i, &size) in sizes.iter().enumerate() {
        // Distinct sizes (hence names) so reports are unambiguous.
        let size = size + i as u64;
        world
            .add_task(Box::new(Throttle::new(SimDuration::from_micros(size))))
            .expect("device has room");
    }
    world.run(SimDuration::from_millis(horizon_ms))
}

fn any_scheduler() -> impl Strategy<Value = SchedulerKind> {
    prop_oneof![
        Just(SchedulerKind::Direct),
        Just(SchedulerKind::Timeslice),
        Just(SchedulerKind::DisengagedTimeslice),
        Just(SchedulerKind::DisengagedFairQueueing),
        Just(SchedulerKind::EngagedSfq),
        Just(SchedulerKind::EngagedDrr),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Per-task usage never exceeds engine busy time, which never
    /// exceeds the wall clock.
    #[test]
    fn usage_is_conserved(
        kind in any_scheduler(),
        sizes in proptest::collection::vec(10u64..800, 1..4),
        seed in 0u64..1_000,
    ) {
        let report = run_mix(kind, &sizes, seed, 120);
        let wall = report.wall;
        prop_assert!(report.compute_busy <= wall);
        let usage_sum: SimDuration = report.tasks.iter().map(|t| t.usage).sum();
        // In-flight work at the horizon is uncharged; allow one request
        // plus a context switch of slack.
        let slack = SimDuration::from_micros(sizes.iter().copied().max().unwrap_or(0) + 10);
        prop_assert!(
            usage_sum <= report.compute_busy + report.dma_busy + slack,
            "usage {} vs busy {}", usage_sum, report.compute_busy
        );
    }

    /// Completions never exceed submissions, and nothing is lost:
    /// submitted − completed is bounded by the in-flight pipeline.
    #[test]
    fn requests_are_conserved(
        kind in any_scheduler(),
        sizes in proptest::collection::vec(10u64..800, 1..4),
        seed in 0u64..1_000,
    ) {
        let report = run_mix(kind, &sizes, seed, 120);
        for t in &report.tasks {
            prop_assert!(t.completed_requests <= t.submitted_requests);
            prop_assert!(
                t.submitted_requests - t.completed_requests <= 64,
                "{}: {} submitted vs {} completed",
                t.name, t.submitted_requests, t.completed_requests
            );
        }
    }

    /// Every task of a saturating mix makes progress under every fair
    /// scheduler (no starvation).
    #[test]
    fn no_starvation(
        kind in any_scheduler(),
        sizes in proptest::collection::vec(20u64..400, 2..4),
        seed in 0u64..1_000,
    ) {
        let report = run_mix(kind, &sizes, seed, 250);
        for t in &report.tasks {
            prop_assert!(
                t.rounds_completed() > 0,
                "{} starved under {}", t.name, report.scheduler
            );
        }
    }

    /// Identical configuration and seed produce identical reports.
    #[test]
    fn determinism(
        kind in any_scheduler(),
        sizes in proptest::collection::vec(10u64..500, 1..4),
        seed in 0u64..1_000,
    ) {
        let a = run_mix(kind, &sizes, seed, 80);
        let b = run_mix(kind, &sizes, seed, 80);
        prop_assert_eq!(a.compute_busy, b.compute_busy);
        prop_assert_eq!(a.faults, b.faults);
        for (ta, tb) in a.tasks.iter().zip(&b.tasks) {
            prop_assert_eq!(&ta.rounds, &tb.rounds);
            prop_assert_eq!(ta.usage, tb.usage);
        }
    }

    /// Direct access never faults; engaged timeslice intercepts every
    /// submission.
    #[test]
    fn interception_counts_match_policy(
        sizes in proptest::collection::vec(20u64..400, 1..3),
        seed in 0u64..1_000,
    ) {
        let direct = run_mix(SchedulerKind::Direct, &sizes, seed, 100);
        prop_assert_eq!(direct.faults, 0);
        prop_assert!(direct.direct_submits > 0);

        let engaged = run_mix(SchedulerKind::Timeslice, &sizes, seed, 100);
        prop_assert_eq!(engaged.direct_submits, 0, "engaged TS must trap everything");
        prop_assert!(engaged.faults > 0);
    }
}

// ---------------------------------------------------------------------------
// Sweep-runner and world-reuse equivalence (the parallel-execution layer
// must be invisible in the results).

use disengaged_scheduling::core::fault::{FaultConfig, FaultKind, FaultPlan};
use disengaged_scheduling::core::placement::PlacementKind;
use disengaged_scheduling::gpu::{DeviceId, GpuConfig};
use disengaged_scheduling::scenario::{sweep, ScenarioSpec, SweepCell, TenantGroup, WorkloadSpec};
use neon_sim::SimTime;

/// A skew-prone sweep plan: scenarios of widely varying cost (horizon ×
/// tenant count both drawn by the caller), two schedulers, per-scenario
/// seeds — the shape that makes naive static partitioning imbalanced
/// and forces the runner to steal.
fn skewed_plan(shapes: &[(u64, u32)], seeds: &[u64]) -> Vec<SweepCell> {
    let specs: Vec<ScenarioSpec> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(horizon_ms, tenants))| {
            ScenarioSpec::new(
                format!("skew-{i}-{horizon_ms}ms"),
                SimDuration::from_millis(horizon_ms),
            )
            .seeds(seeds.to_vec())
            .schedulers(vec![
                SchedulerKind::Direct,
                SchedulerKind::DisengagedFairQueueing,
            ])
            .group(
                TenantGroup::new(
                    "tenant",
                    WorkloadSpec::Throttle {
                        request: SimDuration::from_micros(120 + 60 * i as u64),
                        off_ratio: 0.0,
                        jitter: 0.02,
                    },
                )
                .count(tenants),
            )
        })
        .collect();
    sweep::plan(specs)
}

/// Every simulation-derived field must agree between two runs of the
/// same plan; host-timing fields (`elapsed`, `peak_rss_bytes`) are the
/// only permitted difference.
macro_rules! assert_cells_equivalent {
    ($assert:ident, $a:expr, $b:expr) => {
        $assert!($a.results.len() == $b.results.len());
        for (s, p) in $a.results.iter().zip(&$b.results) {
            let (ss, ps) = (&s.summary, &p.summary);
            $assert!(ss.scenario == ps.scenario, "plan order drifted");
            $assert!(ss.scheduler == ps.scheduler);
            $assert!(ss.placement == ps.placement);
            $assert!(ss.rebalance == ps.rebalance);
            $assert!(ss.seed == ps.seed);
            $assert!(ss.admitted == ps.admitted, "{}: admitted", ss.scenario);
            $assert!(ss.rejected == ps.rejected);
            $assert!(ss.departed == ps.departed);
            $assert!(ss.killed == ps.killed);
            $assert!(
                ss.total_rounds == ps.total_rounds,
                "{}: rounds {} vs {}",
                ss.scenario,
                ss.total_rounds,
                ps.total_rounds
            );
            $assert!(ss.completed_requests == ps.completed_requests);
            $assert!(ss.faults == ps.faults);
            $assert!(ss.direct_submits == ps.direct_submits);
            $assert!(ss.utilization == ps.utilization);
            $assert!(ss.fairness == ps.fairness);
            $assert!(ss.round_p50 == ps.round_p50);
            $assert!(ss.round_p95 == ps.round_p95);
            $assert!(ss.round_p99 == ps.round_p99);
            $assert!(ss.migrations == ps.migrations);
            $assert!(ss.transfer_stall == ps.transfer_stall);
            $assert!(s.report.events == p.report.events, "{}: events", ss.scenario);
            $assert!(s.report.compute_busy == p.report.compute_busy);
            for (da, db) in ss.per_device.iter().zip(&ps.per_device) {
                $assert!(da.device == db.device);
                $assert!(da.utilization == db.utilization);
                $assert!(da.rejected == db.rejected);
                $assert!(da.tenants == db.tenants);
                $assert!(da.migrations_in == db.migrations_in);
                $assert!(da.migrations_out == db.migrations_out);
                $assert!(da.transfer_stall == db.transfer_stall);
            }
        }
    };
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// The work-stealing runner is invisible: for any thread count and
    /// any steal-prone skew of cell costs, `run_parallel` produces the
    /// same cell results as `run_serial`, in the same plan order.
    #[test]
    fn work_stealing_sweep_matches_serial_for_any_thread_count(
        threads in 1usize..=16,
        shapes in proptest::collection::vec((1u64..=8, 1u32..=3), 2..5),
        seeds in proptest::collection::vec(0u64..1_000, 1..3),
    ) {
        let cells = skewed_plan(&shapes, &seeds);
        let serial = sweep::run_serial(&cells);
        let parallel = sweep::run_parallel(&cells, Some(threads));
        assert_cells_equivalent!(prop_assert, serial, parallel);
    }
}

/// A reused [`World`] (`reset()` then re-run) behaves exactly like a
/// freshly constructed one — for every scheduler × placement pair, on
/// a churny two-device scenario, down to the trace text. This is the
/// contract that lets sweep workers recycle one world across cells.
#[test]
fn reset_world_matches_fresh_world() {
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
    fn config() -> WorldConfig {
        WorldConfig {
            devices: vec![GpuConfig::default(); 2],
            seed: 0x90_1D,
            ..WorldConfig::default()
        }
    }
    fn drive(world: &mut World) -> (u64, u64, usize) {
        world.trace.set_enabled(true);
        for _ in 0..2 {
            world
                .add_task(Box::new(Throttle::new(SimDuration::from_micros(150))))
                .unwrap();
        }
        world.spawn_task_for(
            SimTime::ZERO + SimDuration::from_millis(10),
            Box::new(Throttle::new(SimDuration::from_micros(700))),
            SimDuration::from_millis(20),
        );
        let report = world.run(SimDuration::from_millis(50));
        let mut log = String::new();
        for e in world.trace.iter() {
            log.push_str(&format!("{e}\n"));
        }
        (fnv1a(log.as_bytes()), report.faults, report.tasks.len())
    }
    let schedulers = [
        SchedulerKind::Direct,
        SchedulerKind::Timeslice,
        SchedulerKind::DisengagedTimeslice,
        SchedulerKind::DisengagedFairQueueing,
        SchedulerKind::EngagedSfq,
        SchedulerKind::EngagedDrr,
    ];
    for kind in schedulers {
        for placement in PlacementKind::ALL {
            let mut fresh = World::with_devices(config(), placement.build(), |_| {
                kind.build(SchedParams::default())
            });
            let expected = drive(&mut fresh);

            // Dirty a world on a *different* program (other scheduler
            // axis ordering would hide state leaks) — and put it
            // through chaos: a hang the watchdog kills and a device
            // hot-remove whose residents drain-migrate. Watchdog arms,
            // park queues and offline devices must all clear on reset.
            let mut chaos = FaultPlan::new(FaultConfig {
                watchdog: Some(SimDuration::from_millis(2)),
                ..FaultConfig::default()
            });
            chaos
                .push(
                    SimTime::ZERO + SimDuration::from_millis(1),
                    FaultKind::TaskHang { task: None },
                )
                .push(
                    SimTime::ZERO + SimDuration::from_millis(3),
                    FaultKind::DeviceRemove {
                        device: DeviceId::new(1),
                    },
                );
            let dirty_config = WorldConfig {
                faults: Some(chaos),
                ..config()
            };
            let mut reused =
                World::with_devices(dirty_config, PlacementKind::RoundRobin.build(), |_| {
                    SchedulerKind::Timeslice.build(SchedParams::default())
                });
            reused.trace.set_enabled(true);
            reused
                .add_task(Box::new(Throttle::new(SimDuration::from_micros(90))))
                .unwrap();
            let dirty = reused.run(SimDuration::from_millis(15));
            assert!(
                dirty.watchdog_kills >= 1 && dirty.hot_removes == 1,
                "dirty run must actually exercise the fault paths \
                 (kills={}, removes={})",
                dirty.watchdog_kills,
                dirty.hot_removes
            );

            reused.reset(config(), placement.build(), |_| {
                kind.build(SchedParams::default())
            });
            let replayed = drive(&mut reused);
            assert_eq!(
                expected, replayed,
                "{kind} × {placement}: reused world drifted from fresh"
            );
        }
    }
}
