//! Dynamic-churn integration tests: every policy must survive tasks
//! arriving and departing mid-run without panicking, leaking
//! protection state, or starving the tasks that remain.

use disengaged_scheduling::core::cost::SchedParams;
use disengaged_scheduling::core::placement::PlacementKind;
use disengaged_scheduling::core::world::{World, WorldConfig};
use disengaged_scheduling::core::{RunReport, SchedulerKind};
use disengaged_scheduling::gpu::GpuConfig;
use disengaged_scheduling::scenario::{
    sweep, ArrivalSpec, LifetimeSpec, ScenarioSpec, TenantGroup, WorkloadSpec,
};
use disengaged_scheduling::workloads::Throttle;
use neon_sim::{SimDuration, SimTime};

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// Two equal residents, a mid-run visitor that departs, and a late
/// arrival, under `kind`, for `horizon`.
fn churn_world(kind: SchedulerKind, seed: u64) -> World {
    let config = WorldConfig {
        seed,
        ..WorldConfig::default()
    };
    let mut world = World::new(config, kind.build(SchedParams::default()));
    for _ in 0..2 {
        world
            .add_task(Box::new(Throttle::new(us(150))))
            .expect("room for residents");
    }
    // A large-request visitor arrives at 50ms and stays 100ms.
    world.spawn_task_for(
        SimTime::ZERO + ms(50),
        Box::new(Throttle::new(us(900))),
        ms(100),
    );
    // A latecomer arrives at 250ms and stays to the end.
    world.spawn_task_at(SimTime::ZERO + ms(250), Box::new(Throttle::new(us(150))));
    world
}

fn run_churn(kind: SchedulerKind, seed: u64, horizon: SimDuration) -> RunReport {
    churn_world(kind, seed).run(horizon)
}

#[test]
fn every_policy_survives_midrun_arrival_and_departure() {
    for kind in SchedulerKind::ALL {
        let report = run_churn(kind, 0xC0DE, ms(500));
        assert_eq!(report.tasks.len(), 4, "{kind}: visitor or latecomer lost");

        let visitor = &report.tasks[2];
        assert_eq!(
            visitor.finished_at,
            Some(SimTime::ZERO + ms(150)),
            "{kind}: visitor did not depart on schedule"
        );
        assert!(!visitor.killed, "{kind}: departure must be graceful");
        assert!(
            visitor.rounds_completed() > 0,
            "{kind}: visitor starved while present"
        );

        let late = &report.tasks[3];
        assert_eq!(late.arrived_at, SimTime::ZERO + ms(250), "{kind}");
        assert!(
            late.rounds_completed() > 0,
            "{kind}: late arrival starved after joining"
        );

        for resident in &report.tasks[..2] {
            assert!(
                resident.rounds_completed() > 100,
                "{kind}: resident {} starved ({} rounds)",
                resident.name,
                resident.rounds_completed()
            );
        }
    }
}

#[test]
fn residents_stay_fair_after_the_departer_leaves() {
    // The two residents are identical; whatever the policy, neither
    // may end up with a grossly larger share once the churn settles.
    for kind in SchedulerKind::ALL {
        let report = run_churn(kind, 0xFA12, ms(500));
        let a = report.tasks[0].usage;
        let b = report.tasks[1].usage;
        let ratio = a.max(b).ratio(a.min(b).max(us(1)));
        assert!(
            ratio < 2.0,
            "{kind}: identical residents diverged, usage ratio {ratio:.2}"
        );
    }
}

#[test]
fn progress_continues_after_departure_under_every_policy() {
    // Deterministic worlds: the same churn run twice with different
    // horizons shows whether the residents kept completing rounds
    // after the visitor left at 150ms (no leaked protection or token
    // state pointing at the departed task).
    for kind in SchedulerKind::ALL {
        let early = run_churn(kind, 0xBEEF, ms(200));
        let late = run_churn(kind, 0xBEEF, ms(450));
        for i in 0..2 {
            let before = early.tasks[i].rounds_completed();
            let after = late.tasks[i].rounds_completed();
            assert!(
                after > before + 50,
                "{kind}: resident {i} stalled after the departure \
                 ({before} rounds at 200ms, {after} at 450ms)"
            );
        }
    }
}

#[test]
fn exhausted_arrivals_are_rejected_not_fatal_for_every_policy() {
    for kind in SchedulerKind::ALL {
        let config = WorldConfig {
            gpu: disengaged_scheduling::gpu::GpuConfig {
                total_contexts: 3,
                ..disengaged_scheduling::gpu::GpuConfig::default()
            },
            ..WorldConfig::default()
        };
        let mut world = World::new(config, kind.build(SchedParams::default()));
        for _ in 0..3 {
            world
                .add_task(Box::new(Throttle::new(us(200))))
                .expect("room for residents");
        }
        for i in 0..4u64 {
            world.spawn_task_at(SimTime::ZERO + ms(5 + i), Box::new(Throttle::new(us(200))));
        }
        // Long enough for every resident to hold the 30ms token at
        // least once under the timeslice policies.
        let report = world.run(ms(250));
        assert_eq!(report.rejected_admissions, 4, "{kind}");
        assert_eq!(report.tasks.len(), 3, "{kind}");
        for t in &report.tasks {
            assert!(t.rounds_completed() > 0, "{kind}: resident starved");
        }
    }
}

#[test]
fn churn_scenarios_are_deterministic_for_every_policy() {
    for kind in SchedulerKind::ALL {
        let a = run_churn(kind, 0x5EED, ms(300));
        let b = run_churn(kind, 0x5EED, ms(300));
        assert_eq!(a.compute_busy, b.compute_busy, "{kind}");
        assert_eq!(a.faults, b.faults, "{kind}");
        for (ta, tb) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(ta.rounds, tb.rounds, "{kind}: {}", ta.name);
            assert_eq!(ta.usage, tb.usage, "{kind}");
            assert_eq!(ta.finished_at, tb.finished_at, "{kind}");
        }
    }
}

fn churn_sweep_spec(seeds: Vec<u64>) -> ScenarioSpec {
    ScenarioSpec::new("sweep-churn", ms(150))
        .seeds(seeds)
        .schedulers(vec![
            SchedulerKind::Direct,
            SchedulerKind::DisengagedTimeslice,
            SchedulerKind::DisengagedFairQueueing,
            SchedulerKind::DisengagedFairQueueingVendor,
        ])
        .group(
            TenantGroup::new(
                "resident",
                WorkloadSpec::FixedLoop {
                    service: us(100),
                    gap: us(10),
                    rounds: None,
                },
            )
            .count(2),
        )
        .group(
            TenantGroup::new(
                "churner",
                WorkloadSpec::Throttle {
                    request: us(500),
                    off_ratio: 0.0,
                    jitter: 0.0,
                },
            )
            .count(5)
            .arrival(ArrivalSpec::Poisson {
                rate_hz: 80.0,
                start: ms(5),
            })
            .lifetime(LifetimeSpec::Exponential { mean: ms(30) }),
        )
}

#[test]
fn parallel_sweep_matches_serial_and_scales_when_cores_exist() {
    // 4 schedulers × 2 seeds = 8 cells, the acceptance-criterion size.
    let cells = sweep::plan([churn_sweep_spec(vec![1, 2])]);
    assert!(cells.len() >= 8);
    let serial = sweep::run_serial(&cells);
    let parallel = sweep::run_parallel(&cells, None);

    for (s, p) in serial.results.iter().zip(&parallel.results) {
        assert_eq!(s.summary.scheduler, p.summary.scheduler);
        assert_eq!(s.summary.seed, p.summary.seed);
        assert_eq!(s.summary.total_rounds, p.summary.total_rounds);
        assert_eq!(s.summary.faults, p.summary.faults);
        assert_eq!(s.report.compute_busy, p.report.compute_busy);
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 2 {
        assert!(parallel.threads >= 2, "should fan out on a multicore box");
        assert!(
            parallel.wall < serial.wall,
            "parallel sweep ({:?}) not faster than serial ({:?}) on {cores} cores",
            parallel.wall,
            serial.wall
        );
    } else {
        eprintln!("single-core machine: speedup assertion skipped (equality still verified)");
    }
}

/// The multi-device analogue of [`churn_world`]: residents spread over
/// two devices, plus a mid-run visitor and a latecomer that the
/// placement policy must route.
fn multi_churn_world(kind: SchedulerKind, placement: PlacementKind, seed: u64) -> World {
    let config = WorldConfig {
        devices: vec![GpuConfig::default(); 2],
        seed,
        ..WorldConfig::default()
    };
    let mut world = World::with_devices(config, placement.build(), |_| {
        kind.build(SchedParams::default())
    });
    for _ in 0..4 {
        world
            .add_task(Box::new(Throttle::new(us(150))))
            .expect("room for residents");
    }
    world.spawn_task_for(
        SimTime::ZERO + ms(50),
        Box::new(Throttle::new(us(900))),
        ms(100),
    );
    world.spawn_task_at(SimTime::ZERO + ms(250), Box::new(Throttle::new(us(150))));
    world
}

#[test]
fn every_placement_policy_survives_churn_under_every_scheduler() {
    // Placement × scheduler churn matrix: arrivals and departures on a
    // 2-device world must leave no task starved, no panic, and the
    // visitor's departure on schedule — whatever policy pair runs it.
    for placement in PlacementKind::ALL {
        for kind in SchedulerKind::ALL {
            let report = multi_churn_world(kind, placement, 0xC0DE).run(ms(500));
            assert_eq!(report.tasks.len(), 6, "{kind}/{placement}: task lost");
            let visitor = &report.tasks[4];
            assert_eq!(
                visitor.finished_at,
                Some(SimTime::ZERO + ms(150)),
                "{kind}/{placement}: visitor did not depart on schedule"
            );
            for t in &report.tasks {
                assert!(
                    t.rounds_completed() > 0,
                    "{kind}/{placement}: {} starved on {}",
                    t.name,
                    t.device
                );
            }
            // The residents spread across both devices at admission.
            for d in &report.devices {
                assert!(
                    d.compute_busy > SimDuration::ZERO,
                    "{kind}/{placement}: {} never ran work",
                    d.device
                );
            }
        }
    }
}

#[test]
fn placement_churn_is_deterministic_per_policy() {
    for placement in PlacementKind::ALL {
        let run = || {
            let report =
                multi_churn_world(SchedulerKind::DisengagedFairQueueing, placement, 0x5EED)
                    .run(ms(300));
            (
                report.compute_busy,
                report
                    .tasks
                    .iter()
                    .map(|t| (t.device, t.rounds.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run(), "{placement}");
    }
}

#[test]
fn midrun_churn_keeps_every_policy_fair_on_aggregate() {
    // Scenario-level check over the sweep matrix: utilization stays
    // high and no cell collapses (zero rounds) despite the churn.
    let cells = sweep::plan([churn_sweep_spec(vec![3])]);
    let outcome = sweep::run_parallel(&cells, None);
    for r in &outcome.results {
        let s = &r.summary;
        assert!(
            s.total_rounds > 200,
            "{} seed {}: only {} rounds",
            s.scheduler,
            s.seed,
            s.total_rounds
        );
        assert!(
            s.utilization > 0.5,
            "{} seed {}: utilization {:.2}",
            s.scheduler,
            s.seed,
            s.utilization
        );
        assert!((0.0..=1.0).contains(&s.fairness));
    }
}
