//! Streaming-telemetry integration tests: the bounded metrics pipeline
//! must agree with the exact oracle, must not perturb the event
//! stream, must keep per-task memory fixed, and the structured stats
//! block must agree with the legacy counters it mirrors.

use disengaged_scheduling::core::cost::SchedParams;
use disengaged_scheduling::core::rebalance::RebalanceKind;
use disengaged_scheduling::core::telemetry::{labels, MetricsMode, StatKey};
use disengaged_scheduling::core::world::{World, WorldConfig};
use disengaged_scheduling::core::SchedulerKind;
use disengaged_scheduling::metrics::{CounterKey, Distribution, StreamingHistogram};
use disengaged_scheduling::workloads::Throttle;
use neon_sim::{SimDuration, SimTime};

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}
fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// A churn scenario with mid-run arrivals and departures, so both
/// metrics pipelines see a non-trivial mix of round lengths.
fn churn_world(kind: SchedulerKind, config: WorldConfig) -> World {
    let mut world = World::new(config, kind.build(SchedParams::default()));
    for _ in 0..2 {
        world.add_task(Box::new(Throttle::new(us(150)))).unwrap();
    }
    world.spawn_task_for(
        SimTime::ZERO + ms(20),
        Box::new(Throttle::new(us(900))),
        ms(40),
    );
    world.spawn_task_at(SimTime::ZERO + ms(80), Box::new(Throttle::new(us(150))));
    world
}

fn config_with(metrics: MetricsMode) -> WorldConfig {
    WorldConfig {
        seed: 0x90_1D,
        metrics,
        ..WorldConfig::default()
    }
}

#[test]
fn streaming_percentiles_match_exact_within_one_percent() {
    for kind in SchedulerKind::ALL {
        let exact = churn_world(kind, config_with(MetricsMode::Exact)).run(ms(200));
        let streaming = churn_world(kind, config_with(MetricsMode::Streaming)).run(ms(200));
        let e = exact.round_distribution();
        let s = streaming.round_distribution();
        assert_eq!(
            e.count(),
            s.count(),
            "{kind}: both pipelines see every round"
        );
        assert!(e.count() > 100, "{kind}: scenario must produce rounds");
        for p in [50.0, 95.0, 99.0] {
            let ev = e.quantile(p).as_nanos() as f64;
            let sv = s.quantile(p).as_nanos() as f64;
            let err = (ev - sv).abs() / ev.max(1.0);
            assert!(
                err <= 0.01,
                "{kind}: p{p} exact {ev}ns vs streaming {sv}ns (err {err:.4})"
            );
        }
    }
}

#[test]
fn streaming_mode_keeps_per_task_memory_bounded() {
    let report = churn_world(
        SchedulerKind::DisengagedFairQueueing,
        config_with(MetricsMode::Streaming),
    )
    .run(ms(200));
    assert!(!report.tasks.is_empty());
    for t in &report.tasks {
        assert!(
            t.rounds.is_empty() && t.submit_times.is_empty() && t.service_times.is_empty(),
            "{}: streaming mode must not grow per-sample vectors",
            t.name
        );
        for h in [&t.rounds_hist, &t.service_hist, &t.interarrival_hist] {
            assert!(h.buckets_used() <= StreamingHistogram::MAX_BUCKETS);
        }
    }
    assert!(
        report.tasks.iter().any(|t| t.rounds_hist.count() > 0),
        "round sketches must actually be fed"
    );
    // Per-workload-name aggregation exists only in streaming mode.
    assert!(!report.groups.is_empty());
    let members: u64 = report.groups.iter().map(|g| g.members).sum();
    assert_eq!(members as usize, report.tasks.len());
}

#[test]
fn exact_mode_leaves_streaming_structures_empty() {
    let report = churn_world(
        SchedulerKind::DisengagedFairQueueing,
        config_with(MetricsMode::Exact),
    )
    .run(ms(200));
    for t in &report.tasks {
        assert!(
            t.rounds_hist.is_empty(),
            "{}: exact mode feeds Vecs",
            t.name
        );
        assert!(!t.rounds.is_empty() || t.killed, "{}", t.name);
    }
    assert!(report.groups.is_empty());
}

#[test]
fn streaming_mode_does_not_perturb_the_event_stream() {
    for kind in [
        SchedulerKind::DisengagedFairQueueing,
        SchedulerKind::Timeslice,
    ] {
        let mut exact = churn_world(kind, config_with(MetricsMode::Exact));
        exact.trace.set_enabled(true);
        let exact_report = exact.run(ms(200));
        let mut streaming = churn_world(kind, config_with(MetricsMode::Streaming));
        streaming.trace.set_enabled(true);
        let streaming_report = streaming.run(ms(200));
        assert_eq!(
            exact.trace.render(),
            streaming.trace.render(),
            "{kind}: metrics routing must be observation-only"
        );
        assert_eq!(exact_report.events, streaming_report.events, "{kind}");
    }
}

#[test]
fn sampler_is_off_by_default_and_fills_a_bounded_ring_when_on() {
    // Default config: no sampler, placeholder ring, zero allocation.
    let report = churn_world(
        SchedulerKind::DisengagedFairQueueing,
        config_with(MetricsMode::Exact),
    )
    .run(ms(200));
    assert!(report.timeline.is_empty());
    assert_eq!(report.timeline.capacity(), 0);

    // Sampler on with a tiny ring: retained bounded, overflow counted.
    let config = WorldConfig {
        sample_every: Some(ms(1)),
        timeline_capacity: 16,
        ..config_with(MetricsMode::Exact)
    };
    let report = churn_world(SchedulerKind::DisengagedFairQueueing, config).run(ms(200));
    assert_eq!(report.timeline.len(), 16, "ring holds exactly its capacity");
    // 200 ms at 1 ms cadence = ~199 samples; all but 16 dropped.
    assert!(
        report.timeline.dropped() >= 180,
        "{}",
        report.timeline.dropped()
    );
    for sample in report.timeline.iter() {
        assert_eq!(sample.devices.len(), 1);
        let d = &sample.devices[0];
        assert!((0.0..=1.0).contains(&d.utilization), "{}", d.utilization);
    }
    // Samples are ordered and cumulative counters are monotone.
    let times: Vec<u64> = report.timeline.iter().map(|s| s.at.as_nanos()).collect();
    assert!(times.windows(2).all(|w| w[0] < w[1]));
    let events: Vec<u64> = report.timeline.iter().map(|s| s.events).collect();
    assert!(events.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn sampler_does_not_change_the_trace() {
    let mut plain = churn_world(
        SchedulerKind::DisengagedFairQueueing,
        config_with(MetricsMode::Exact),
    );
    plain.trace.set_enabled(true);
    plain.run(ms(200));
    let config = WorldConfig {
        sample_every: Some(ms(1)),
        ..config_with(MetricsMode::Exact)
    };
    let mut sampled = churn_world(SchedulerKind::DisengagedFairQueueing, config);
    sampled.trace.set_enabled(true);
    sampled.run(ms(200));
    assert_eq!(
        plain.trace.render(),
        sampled.trace.render(),
        "sampling is pure observation"
    );
}

#[test]
fn stats_block_agrees_with_legacy_counters() {
    let config = WorldConfig {
        devices: vec![Default::default(), Default::default()],
        rebalance: RebalanceKind::CountDiff,
        ..config_with(MetricsMode::Exact)
    };
    let kind = SchedulerKind::DisengagedFairQueueing;
    let mut world = World::with_devices(
        config,
        disengaged_scheduling::core::placement::PlacementKind::LeastLoaded.build(),
        |_| kind.build(SchedParams::default()),
    );
    for _ in 0..4 {
        world.add_task(Box::new(Throttle::new(us(150)))).unwrap();
    }
    world.spawn_task_for(
        SimTime::ZERO + ms(20),
        Box::new(Throttle::new(us(900))),
        ms(40),
    );
    world.spawn_task_at(SimTime::ZERO + ms(80), Box::new(Throttle::new(us(150))));
    let report = world.run(ms(200));
    let stats = &report.stats;
    assert_eq!(stats.get(StatKey::Events), report.events);
    assert_eq!(stats.get(StatKey::Faults), report.faults);
    assert_eq!(stats.get(StatKey::Polls), report.polls);
    assert_eq!(stats.get(StatKey::DirectSubmits), report.direct_submits);
    assert_eq!(
        stats.get(StatKey::RejectedAdmissions),
        report.rejected_admissions
    );
    assert_eq!(stats.get(StatKey::MigrationsIn), report.migrations);
    assert_eq!(stats.get(StatKey::MigrationsOut), report.migrations);
    assert!(stats.get(StatKey::SamplingWindowsOpened) >= stats.get(StatKey::SamplingWindowsClosed));
    assert!(
        stats.get(StatKey::SamplingWindowsOpened) > 0,
        "disengaged fair queueing must sample"
    );
    // Per-device slices sum to the run-wide totals.
    for (key, total) in [
        (StatKey::Faults, report.faults),
        (StatKey::MigrationsIn, report.migrations),
        (StatKey::MigrationsOut, report.migrations),
    ] {
        let sum: u64 = report.devices.iter().map(|d| d.stats.get(key)).sum();
        assert_eq!(sum, total, "{}", key.label());
    }
    for d in &report.devices {
        assert_eq!(d.stats.get(StatKey::MigrationsIn), d.migrations_in);
        assert_eq!(d.stats.get(StatKey::MigrationsOut), d.migrations_out);
        assert_eq!(d.stats.get(StatKey::Faults), {
            let s: u64 = report
                .tasks
                .iter()
                .filter(|t| t.device == d.device)
                .map(|t| t.faults)
                .sum();
            s
        });
    }
}

#[test]
fn emitted_trace_labels_are_canonical() {
    for kind in SchedulerKind::ALL {
        let mut world = churn_world(kind, config_with(MetricsMode::Exact));
        world.trace.set_enabled(true);
        world.run(ms(200));
        let seen = world.trace.labels();
        assert!(!seen.is_empty(), "{kind}");
        for label in seen {
            assert!(
                labels::ALL.contains(&label),
                "{kind}: label {label:?} is not in telemetry::labels::ALL"
            );
        }
    }
}
