//! Multi-device integration tests: the single-device path must stay
//! byte-identical to the pre-refactor world, multi-device runs must be
//! deterministic for every device count, and placement policies must
//! never waste capacity.

use disengaged_scheduling::core::cost::SchedParams;
use disengaged_scheduling::core::placement::PlacementKind;
use disengaged_scheduling::core::rebalance::RebalanceKind;
use disengaged_scheduling::core::world::{World, WorldConfig};
use disengaged_scheduling::core::SchedulerKind;
use disengaged_scheduling::gpu::{DeviceId, GpuConfig};
use disengaged_scheduling::workloads::Throttle;
use neon_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}
fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A fixed churn scenario: two residents, a large mid-run visitor that
/// departs, and a latecomer (the workload of the pre-refactor golden
/// capture).
fn golden_world(kind: SchedulerKind) -> World {
    let config = WorldConfig {
        seed: 0x90_1D,
        ..WorldConfig::default()
    };
    let mut world = World::new(config, kind.build(SchedParams::default()));
    world.trace.set_enabled(true);
    for _ in 0..2 {
        world.add_task(Box::new(Throttle::new(us(150)))).unwrap();
    }
    world.spawn_task_for(
        SimTime::ZERO + ms(20),
        Box::new(Throttle::new(us(900))),
        ms(40),
    );
    world.spawn_task_at(SimTime::ZERO + ms(80), Box::new(Throttle::new(us(150))));
    world
}

/// The acceptance criterion of the multi-device refactor: a 1-device
/// world reproduces the pre-refactor single-GPU traces **exactly**.
/// The expected values (engine busy nanoseconds, fault counts, round
/// counts, and an FNV-1a hash over the rendered trace log) were
/// captured by running this exact scenario on the last single-device
/// commit; any drift in event ordering, scheduler dispatch, or trace
/// text shows up here.
#[test]
fn one_device_world_reproduces_pre_refactor_traces_exactly() {
    struct Golden {
        kind: SchedulerKind,
        busy_ns: u64,
        faults: u64,
        rounds: [usize; 4],
        trace_hash: u64,
        trace_len: usize,
    }
    let goldens = [
        Golden {
            kind: SchedulerKind::Direct,
            busy_ns: 119_868_227,
            faults: 0,
            rounds: [250, 249, 33, 86],
            trace_hash: 0x729b_5fa4_f37c_9c02,
            trace_len: 3,
        },
        Golden {
            kind: SchedulerKind::DisengagedTimeslice,
            busy_ns: 116_855_565,
            faults: 6,
            rounds: [400, 379, 0, 0],
            trace_hash: 0x4f15_5a8c_d692_bae0,
            trace_len: 16,
        },
        Golden {
            kind: SchedulerKind::DisengagedFairQueueing,
            busy_ns: 119_158_160,
            faults: 73,
            rounds: [269, 268, 26, 86],
            // Re-baselined after the intentional sampling-window fix
            // (see tests/dfq_sampling.rs): on this benign scenario the
            // fix leaves busy/faults/rounds identical to the
            // pre-refactor capture and only rewords sample trace
            // lines. The other three policies are the original
            // pre-refactor hashes, untouched.
            trace_hash: 0x5e9e_9cbc_f78f_e214,
            trace_len: 85,
        },
        Golden {
            kind: SchedulerKind::Timeslice,
            busy_ns: 108_317_087,
            faults: 729,
            rounds: [371, 351, 0, 0],
            trace_hash: 0xf453_669d_e62f_b53f,
            trace_len: 739,
        },
    ];
    for g in goldens {
        let mut world = golden_world(g.kind);
        let report = world.run(ms(120));
        assert_eq!(report.compute_busy.as_nanos(), g.busy_ns, "{}", g.kind);
        assert_eq!(report.faults, g.faults, "{}", g.kind);
        let rounds: Vec<usize> = report.tasks.iter().map(|t| t.rounds_completed()).collect();
        assert_eq!(rounds, g.rounds, "{}", g.kind);
        let mut log = String::new();
        for e in world.trace.iter() {
            log.push_str(&format!("{e}\n"));
        }
        assert_eq!(world.trace.len(), g.trace_len, "{}", g.kind);
        assert_eq!(
            fnv1a(log.as_bytes()),
            g.trace_hash,
            "{}: trace text drifted from the pre-refactor capture",
            g.kind
        );
    }
}

fn churny_multi_world(
    devices: usize,
    kind: SchedulerKind,
    placement: PlacementKind,
    seed: u64,
) -> World {
    let config = WorldConfig {
        devices: vec![GpuConfig::default(); devices],
        seed,
        ..WorldConfig::default()
    };
    let mut world = World::with_devices(config, placement.build(), |_| {
        kind.build(SchedParams::default())
    });
    for _ in 0..4 {
        world.add_task(Box::new(Throttle::new(us(150)))).unwrap();
    }
    world.spawn_task_for(
        SimTime::ZERO + ms(10),
        Box::new(Throttle::new(us(900))),
        ms(30),
    );
    world.spawn_task_for(
        SimTime::ZERO + ms(15),
        Box::new(Throttle::new(us(400))),
        ms(40),
    );
    world.spawn_task_at(SimTime::ZERO + ms(60), Box::new(Throttle::new(us(150))));
    world
}

/// Same seed ⇒ identical traces and reports, for every device count
/// and placement policy.
#[test]
fn traces_are_deterministic_across_device_counts() {
    for devices in [1usize, 2, 4] {
        for placement in PlacementKind::ALL {
            let run = |seed: u64| {
                let mut world = churny_multi_world(
                    devices,
                    SchedulerKind::DisengagedFairQueueing,
                    placement,
                    seed,
                );
                world.trace.set_enabled(true);
                let report = world.run(ms(100));
                let mut log = String::new();
                for e in world.trace.iter() {
                    log.push_str(&format!("{e}\n"));
                }
                (
                    fnv1a(log.as_bytes()),
                    report.compute_busy,
                    report
                        .tasks
                        .iter()
                        .map(|t| t.rounds.clone())
                        .collect::<Vec<_>>(),
                    report.tasks.iter().map(|t| t.device).collect::<Vec<_>>(),
                )
            };
            let a = run(0xD15C);
            let b = run(0xD15C);
            assert_eq!(a, b, "{devices} devices, {placement}: nondeterministic");
        }
    }
}

/// The same scenario must place identically on repeated runs but is
/// allowed (expected!) to differ across placement policies; what may
/// never differ is the total work admitted when capacity suffices.
#[test]
fn every_placement_admits_everything_while_capacity_lasts() {
    for placement in PlacementKind::ALL {
        let mut world = churny_multi_world(2, SchedulerKind::Direct, placement, 7);
        let report = world.run(ms(100));
        assert_eq!(report.rejected_admissions, 0, "{placement}");
        assert_eq!(report.tasks.len(), 7, "{placement}");
        for t in &report.tasks {
            assert!(
                t.rounds_completed() > 0,
                "{placement}: {} starved on {}",
                t.name,
                t.device
            );
        }
    }
}

/// Pinning via the world API: tasks land exactly where pinned, and
/// per-device rejection is charged to the full pinned device.
#[test]
fn pinning_is_exact_and_rejections_are_per_device() {
    let config = WorldConfig {
        devices: vec![
            GpuConfig {
                total_contexts: 2,
                ..GpuConfig::default()
            },
            GpuConfig::default(),
        ],
        ..WorldConfig::default()
    };
    let mut world = World::with_devices(config, PlacementKind::LeastLoaded.build(), |_| {
        SchedulerKind::Direct.build(SchedParams::default())
    });
    for _ in 0..2 {
        world
            .add_task_pinned(Box::new(Throttle::new(us(200))), DeviceId::new(0))
            .unwrap();
    }
    // Device 0 is full: three pinned arrivals must bounce even though
    // device 1 is idle.
    for i in 0..3u64 {
        world.spawn_task_at_on(
            SimTime::ZERO + ms(1 + i),
            Box::new(Throttle::new(us(200))),
            DeviceId::new(0),
        );
    }
    let report = world.run(ms(30));
    assert_eq!(report.rejected_admissions, 3);
    assert_eq!(report.devices[0].rejected, 3);
    assert_eq!(report.devices[1].rejected, 0);
    assert_eq!(report.devices[1].tenants, 0, "nothing spilled to dev1");
}

/// Migration under an engagement-driven scheduler: departures trigger
/// rebalancing while DFQ runs barriers/sampling on both devices. The
/// source scheduler must see the migrating task as exited (teardown
/// first, then `on_task_exit` — mirroring the real exit path), so a
/// mid-sample migration can never strand the policy waiting on a
/// drained-away request. Heavy churn of departures makes several
/// migrations land at varied policy phases.
#[test]
fn rebalancing_under_dfq_survives_churn_and_keeps_tasks_running() {
    let run = || {
        let config = WorldConfig {
            devices: vec![GpuConfig::default(); 2],
            rebalance: RebalanceKind::CountDiff,
            seed: 0x11_22,
            ..WorldConfig::default()
        };
        let mut world = World::with_devices(config, PlacementKind::RoundRobin.build(), |_| {
            SchedulerKind::DisengagedFairQueueing.build(SchedParams::default())
        });
        // Long-lived unpinned residents (round-robin: one per device)
        // plus waves of visitors *pinned* to device 0. While a wave
        // overlaps, device 0 holds 3-4 tenants vs 1 — each staggered
        // departure re-checks the imbalance, so migrations land at
        // varied DFQ phases; only the unpinned residents may move.
        for _ in 0..2 {
            world.add_task(Box::new(Throttle::new(us(150)))).unwrap();
        }
        for wave in 0..3u64 {
            for slot in 0..3u64 {
                world.spawn_task_for_on(
                    SimTime::ZERO + ms(10 + 120 * wave + 10 * slot),
                    Box::new(Throttle::new(us(2_000))),
                    ms(40),
                    DeviceId::new(0),
                );
            }
        }
        world.run(ms(400))
    };
    let report = run();
    assert!(
        report.migrations >= 1,
        "churn of this shape must trigger at least one rebalance migration"
    );
    for t in &report.tasks[..2] {
        assert!(
            t.rounds_completed() > 400,
            "resident starved after migrations: {} rounds",
            t.rounds_completed()
        );
    }
    // And the whole dance is reproducible.
    let again = run();
    assert_eq!(report.migrations, again.migrations);
    for (a, b) in report.tasks.iter().zip(&again.tasks) {
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.device, b.device);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// The least-loaded property from the issue: no arrival is ever
    /// rejected while any device still has capacity — equivalently, a
    /// task is never placed on (or bounced off) an exhausted device
    /// while another could host it. Device capacities and the arrival
    /// pattern are randomized; the invariant must hold always.
    #[test]
    fn least_loaded_never_wastes_capacity(
        caps in proptest::collection::vec(1usize..4, 2..5),
        arrivals in 1usize..12,
        seed in 0u64..500,
    ) {
        let total: usize = caps.iter().sum();
        let config = WorldConfig {
            devices: caps
                .iter()
                .map(|&c| GpuConfig {
                    total_contexts: c,
                    total_channels: c,
                    ..GpuConfig::default()
                })
                .collect(),
            seed,
            ..WorldConfig::default()
        };
        let mut world = World::with_devices(
            config,
            PlacementKind::LeastLoaded.build(),
            |_| SchedulerKind::Direct.build(SchedParams::default()),
        );
        // Tasks never depart, so occupancy is monotone: exactly the
        // first `total` arrivals must be admitted, the rest rejected.
        for i in 0..arrivals {
            world.spawn_task_at(
                SimTime::ZERO + SimDuration::from_micros(100 * (i as u64 + 1)),
                Box::new(Throttle::new(us(120))),
            );
        }
        let report = world.run(ms(15));
        let expected_admitted = arrivals.min(total);
        prop_assert_eq!(
            report.tasks.len(),
            expected_admitted,
            "admitted {} of {} arrivals with total capacity {}",
            report.tasks.len(), arrivals, total
        );
        prop_assert_eq!(
            report.rejected_admissions,
            (arrivals - expected_admitted) as u64
        );
        // And no device was over- or under-filled while others starved:
        // every device holds min(cap, its fair share) tenants — in
        // particular, if any arrival was rejected, every device is full.
        if arrivals >= total {
            for (d, &cap) in report.devices.iter().zip(&caps) {
                prop_assert_eq!(d.tenants, cap, "device {} not full", d.device);
            }
        }
    }
}
