//! Regression tests for the engaged-DRR quantum-vs-large-batch
//! collapse (the `adversary_midrun.toml` anomaly, engaged-drr cell).
//!
//! The DRR baseline used to keep a *single* deficit counter that was
//! reset to a full quantum on every turn change. A 20 ms batcher then
//! beat the 1 ms quantum trivially: its one allowed request overran
//! the quantum by 19 ms, the overdraft was forgotten at `advance`, and
//! the next rotation granted it a fresh quantum — ~20 ms of device
//! time per 1 ms handed to each honest tenant, ~1k aggregate rounds on
//! `adversary_midrun.toml` where every other protecting policy reaches
//! ~6k (the same investigation recipe as `tests/dfq_sampling.rs`).
//!
//! Fixed by per-task deficits that carry across turns: the batcher now
//! pays its overdraft off over the next ~20 turns, parked, while the
//! honest tenants run. These tests pin the fixed behavior.

use disengaged_scheduling::core::cost::SchedParams;
use disengaged_scheduling::core::world::{World, WorldConfig};
use disengaged_scheduling::core::{RunReport, SchedulerKind};
use disengaged_scheduling::workloads::adversary::Batcher;
use disengaged_scheduling::workloads::Throttle;
use neon_sim::{SimDuration, SimTime};

fn run_batcher_mix(kind: SchedulerKind) -> RunReport {
    // The dfq_sampling.rs scenario, reused verbatim: two honest
    // small-request tenants, a 20 ms batcher arriving at 100 ms.
    let config = WorldConfig {
        seed: 5,
        ..WorldConfig::default()
    };
    let mut world = World::new(config, kind.build(SchedParams::default()));
    for _ in 0..2 {
        world
            .add_task(Box::new(Throttle::new(SimDuration::from_micros(200))))
            .unwrap();
    }
    world.spawn_task_at(
        SimTime::ZERO + SimDuration::from_millis(100),
        Box::new(Batcher::new(SimDuration::from_millis(20))),
    );
    world.run(SimDuration::from_millis(700))
}

#[test]
fn drr_deficit_carryover_contains_a_large_request_batcher() {
    let report = run_batcher_mix(SchedulerKind::EngagedDrr);
    let honest0 = &report.tasks[0];
    let honest1 = &report.tasks[1];
    let batcher = &report.tasks[2];
    // Pre-fix numbers for this exact scenario: ~180 rounds per honest
    // task and a ~10x usage skew toward the batcher. With carried
    // deficits the honest tenants keep the bulk of their throughput
    // and the batcher is held near its 1/3 share.
    for t in [honest0, honest1] {
        assert!(
            t.rounds_completed() > 600,
            "honest tenant starved by the batcher under DRR: {} rounds",
            t.rounds_completed()
        );
    }
    let skew = batcher.usage.ratio(honest0.usage.min(honest1.usage));
    assert!(
        skew < 3.0,
        "batcher still dominates device time under DRR: {skew:.1}x an honest tenant"
    );
    assert!(
        !batcher.killed,
        "containment must come from the deficit, not kills (20 ms < overlong limit)"
    );
}

#[test]
fn drr_stays_within_reach_of_the_other_engaged_baseline() {
    // The anomaly's signature: engaged-drr at ~1/6 of engaged-sfq
    // aggregate throughput on the batcher mix. Require the gap to stay
    // under 2x in either direction.
    let drr: usize = run_batcher_mix(SchedulerKind::EngagedDrr)
        .tasks
        .iter()
        .map(|t| t.rounds_completed())
        .sum();
    let sfq: usize = run_batcher_mix(SchedulerKind::EngagedSfq)
        .tasks
        .iter()
        .map(|t| t.rounds_completed())
        .sum();
    assert!(
        drr * 2 > sfq,
        "DRR collapsed again under the batcher: {drr} rounds vs {sfq} for engaged-sfq"
    );
    assert!(
        sfq * 2 > drr,
        "suspicious: DRR at {drr} rounds far ahead of engaged-sfq at {sfq}"
    );
}

#[test]
fn drr_overdraft_is_paid_off_not_compounded() {
    // A benign small-request mix must still share evenly: deficit
    // carry-over may not punish tasks whose requests fit the quantum.
    let config = WorldConfig {
        seed: 11,
        ..WorldConfig::default()
    };
    let mut world = World::new(
        config,
        SchedulerKind::EngagedDrr.build(SchedParams::default()),
    );
    for _ in 0..3 {
        world
            .add_task(Box::new(Throttle::new(SimDuration::from_micros(150))))
            .unwrap();
    }
    let report = world.run(SimDuration::from_millis(300));
    let usages: Vec<_> = report.tasks.iter().map(|t| t.usage).collect();
    let max = usages.iter().max().unwrap();
    let min = usages.iter().min().unwrap();
    assert!(
        max.ratio(*min) < 1.25,
        "equal tenants must stay near-equal under DRR: {usages:?}"
    );
    for t in &report.tasks {
        assert!(t.rounds_completed() > 400, "{} starved", t.name);
    }
}
