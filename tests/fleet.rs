//! Fleet-layer integration tests: a 1-host fleet must be byte-identical
//! to a bare `World` for every scheduler × placement, cross-host
//! migration must charge the cluster interconnect tier, cluster
//! admission must never reject while any host fits, and a
//! million-round streaming fleet run must stay within the bounded
//! sketch budget.

use disengaged_scheduling::core::cost::SchedParams;
use disengaged_scheduling::core::fleet::{Fleet, FleetPlacementKind, FleetRebalanceKind};
use disengaged_scheduling::core::placement::PlacementKind;
use disengaged_scheduling::core::telemetry::MetricsMode;
use disengaged_scheduling::core::workload::FixedLoop;
use disengaged_scheduling::core::world::{World, WorldConfig};
use disengaged_scheduling::core::SchedulerKind;
use disengaged_scheduling::gpu::{ClusterInterconnect, GpuConfig};
use disengaged_scheduling::metrics::{Distribution, StreamingHistogram};
use disengaged_scheduling::workloads::Throttle;
use neon_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}
fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn trace_hash(world: &World) -> u64 {
    let mut log = String::new();
    for e in world.trace.iter() {
        log.push_str(&format!("{e}\n"));
    }
    fnv1a(log.as_bytes())
}

/// A 2-device host so the *device* placement axis is exercised inside
/// the host, with the churn shape of `tests/multi_device.rs`.
fn host_world(kind: SchedulerKind, placement: PlacementKind, seed: u64) -> World {
    let config = WorldConfig {
        devices: vec![GpuConfig::default(); 2],
        seed,
        ..WorldConfig::default()
    };
    World::with_devices(config, placement.build(), move |_| {
        kind.build(SchedParams::default())
    })
}

/// The tentpole's acceptance criterion: wrapping one host in a `Fleet`
/// is a pure pass-through. For every scheduler × placement pair, the
/// 1-host fleet's trace is byte-identical (FNV-hash equal) to the bare
/// world's, and the reports agree on busy time, rounds, and device
/// assignment.
#[test]
fn one_host_fleet_is_byte_identical_to_bare_world() {
    for kind in SchedulerKind::ALL {
        for placement in PlacementKind::ALL {
            // Bare world, staged directly.
            let mut bare = host_world(kind, placement, 0xF1EE7);
            bare.trace.set_enabled(true);
            for _ in 0..4 {
                bare.add_task(Box::new(Throttle::new(us(150)))).unwrap();
            }
            bare.spawn_task_for(
                SimTime::ZERO + ms(10),
                Box::new(Throttle::new(us(900))),
                ms(30),
            );
            bare.spawn_task_for(
                SimTime::ZERO + ms(15),
                Box::new(Throttle::new(us(400))),
                ms(40),
            );
            bare.spawn_task_at(SimTime::ZERO + ms(60), Box::new(Throttle::new(us(150))));
            let bare_report = bare.run(ms(100));

            // The same program through a 1-host fleet.
            let mut inner = host_world(kind, placement, 0xF1EE7);
            inner.trace.set_enabled(true);
            let mut fleet = Fleet::new(
                vec![inner],
                FleetPlacementKind::LeastLoaded.build(),
                FleetRebalanceKind::Off.build(),
                ClusterInterconnect::free(),
            );
            for _ in 0..4 {
                fleet.add_task(Box::new(Throttle::new(us(150)))).unwrap();
            }
            fleet.spawn_task_for(
                SimTime::ZERO + ms(10),
                Box::new(Throttle::new(us(900))),
                ms(30),
            );
            fleet.spawn_task_for(
                SimTime::ZERO + ms(15),
                Box::new(Throttle::new(us(400))),
                ms(40),
            );
            fleet.spawn_task_at(SimTime::ZERO + ms(60), Box::new(Throttle::new(us(150))));
            let fleet_report = fleet.run(ms(100));

            let tag = format!("{kind} × {placement}");
            assert_eq!(fleet_report.hosts.len(), 1, "{tag}");
            let host = &fleet_report.hosts[0];
            assert_eq!(host.compute_busy, bare_report.compute_busy, "{tag}");
            assert_eq!(host.faults, bare_report.faults, "{tag}");
            assert_eq!(host.events, bare_report.events, "{tag}");
            assert_eq!(
                host.rejected_admissions, bare_report.rejected_admissions,
                "{tag}"
            );
            let rounds = |r: &disengaged_scheduling::core::RunReport| {
                r.tasks
                    .iter()
                    .map(|t| (t.rounds.clone(), t.device))
                    .collect::<Vec<_>>()
            };
            assert_eq!(rounds(host), rounds(&bare_report), "{tag}");
            assert_eq!(
                trace_hash(fleet.host(0)),
                trace_hash(&bare),
                "{tag}: 1-host fleet trace drifted from the bare world"
            );
            assert_eq!(fleet_report.cross_host_migrations, 0, "{tag}");
            assert_eq!(fleet_report.fleet_rejected, 0, "{tag}");
        }
    }
}

/// Churn that forces a cross-host move: two endless migratable tenants
/// pile up on host 0 while host 1's short-lived tenants die off. The
/// count-diff policy must move one tenant, and the cluster tier must
/// charge the 64 MiB working-set transfer on a 25G network — and
/// nothing on a free one.
fn churny_fleet(cluster: ClusterInterconnect) -> disengaged_scheduling::core::FleetReport {
    let host = |seed: u64| {
        let config = WorldConfig {
            seed,
            ..WorldConfig::default()
        };
        World::with_devices(config, PlacementKind::LeastLoaded.build(), |_| {
            SchedulerKind::Direct.build(SchedParams::default())
        })
    };
    let mut fleet = Fleet::new(
        vec![host(0xA), host(0xB)],
        FleetPlacementKind::FewestTenants.build(),
        FleetRebalanceKind::CountDiff.build(),
        cluster,
    );
    // Arrival order alternates hosts under fewest-tenants:
    // t1→h0 (endless, migratable), t2→h1 (dies at 12 ms),
    // t3→h0 (endless, migratable), t4→h1 (dies at 14 ms).
    fleet.spawn_migratable_at(
        SimTime::ZERO + ms(1),
        Box::new(|| Box::new(Throttle::new(us(150))) as _),
    );
    fleet.spawn_task_for(
        SimTime::ZERO + ms(2),
        Box::new(Throttle::new(us(150))),
        ms(10),
    );
    fleet.spawn_migratable_at(
        SimTime::ZERO + ms(3),
        Box::new(|| Box::new(Throttle::new(us(150))) as _),
    );
    fleet.spawn_task_for(
        SimTime::ZERO + ms(4),
        Box::new(Throttle::new(us(150))),
        ms(10),
    );
    fleet.run(ms(100))
}

#[test]
fn cross_host_migration_charges_the_cluster_tier() {
    let paid = churny_fleet(ClusterInterconnect::network_25g());
    assert_eq!(
        paid.cross_host_migrations, 1,
        "t4's departure leaves 2 vs 0 — count-diff must move one tenant"
    );
    // 64 MiB over a 25G link ≈ 22.4 ms plus 100 µs latency.
    assert!(
        paid.cluster_transfer_stall >= ms(20),
        "25G transfer of a 64 MiB working set must stall ≥ 20 ms, got {}",
        paid.cluster_transfer_stall
    );
    // The mover restages on host 1: its original two short-lived
    // tenants plus the migrated continuation.
    assert_eq!(paid.hosts[0].tasks.len(), 2);
    assert_eq!(paid.hosts[1].tasks.len(), 3);

    let free = churny_fleet(ClusterInterconnect::free());
    assert_eq!(free.cross_host_migrations, 1);
    assert_eq!(
        free.cluster_transfer_stall,
        SimDuration::ZERO,
        "a free cluster interconnect must charge nothing"
    );
}

/// A ≥1M-round open-loop fleet run in streaming mode: per-task sample
/// vectors must stay empty, every sketch bounded, and the fleet-level
/// merge must still see every round.
#[test]
fn million_round_streaming_fleet_stays_bounded() {
    let host = |seed: u64| {
        let config = WorldConfig {
            seed,
            metrics: MetricsMode::Streaming,
            ..WorldConfig::default()
        };
        World::new(config, SchedulerKind::Direct.build(SchedParams::default()))
    };
    let mut fleet = Fleet::new(
        vec![host(1), host(2)],
        FleetPlacementKind::LeastLoaded.build(),
        FleetRebalanceKind::Off.build(),
        ClusterInterconnect::free(),
    );
    // 2 tenants per host spinning 1 µs rounds for 3 simulated seconds
    // (≈ 5 µs per round with submit overhead ⇒ ~1.2M rounds total).
    for _ in 0..4 {
        fleet
            .add_task(Box::new(FixedLoop::endless(
                "spin",
                us(1),
                SimDuration::ZERO,
            )))
            .unwrap();
    }
    let report = fleet.run(SimDuration::from_secs(3));
    let rounds = report.round_distribution();
    assert!(
        rounds.count() >= 1_000_000,
        "fleet must aggregate ≥ 1M rounds, got {}",
        rounds.count()
    );
    for h in &report.hosts {
        for t in &h.tasks {
            assert!(
                t.rounds.is_empty() && t.submit_times.is_empty() && t.service_times.is_empty(),
                "{}: streaming mode must not grow per-sample vectors",
                t.name
            );
            assert!(t.rounds_hist.buckets_used() <= StreamingHistogram::MAX_BUCKETS);
        }
    }
    // The fleet-level group merge is lossless: member and round counts
    // across hosts add up.
    let spin = report
        .groups
        .iter()
        .find(|g| g.name == "spin")
        .expect("streaming runs aggregate per-workload groups");
    assert_eq!(spin.members, 4);
    assert_eq!(spin.rounds.count(), rounds.count());
    assert!(spin.rounds.buckets_used() <= StreamingHistogram::MAX_BUCKETS);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// Cluster admission never wastes capacity: with single-device
    /// hosts, single-channel endless tenants, and known capacities,
    /// every fleet placement policy admits exactly
    /// `min(arrivals, total capacity)` and the hosts themselves reject
    /// nothing (the ledger is exact for this shape).
    #[test]
    fn fleet_admission_never_rejects_while_any_host_fits(
        caps in proptest::collection::vec(1usize..4, 2..5),
        arrivals in 1usize..14,
        seed in 0u64..500,
        policy in 0usize..3,
    ) {
        let policy = FleetPlacementKind::ALL[policy];
        let total: usize = caps.iter().sum();
        let hosts: Vec<World> = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let config = WorldConfig {
                    devices: vec![GpuConfig {
                        total_contexts: c,
                        total_channels: c,
                        ..GpuConfig::default()
                    }],
                    seed: seed + i as u64,
                    ..WorldConfig::default()
                };
                World::with_devices(config, PlacementKind::LeastLoaded.build(), |_| {
                    SchedulerKind::Direct.build(SchedParams::default())
                })
            })
            .collect();
        let mut fleet = Fleet::new(
            hosts,
            policy.build(),
            FleetRebalanceKind::Off.build(),
            ClusterInterconnect::free(),
        );
        for i in 0..arrivals {
            fleet.spawn_task_at(
                SimTime::ZERO + us(100 * (i as u64 + 1)),
                Box::new(Throttle::new(us(120))),
            );
        }
        let report = fleet.run(ms(15));
        let admitted: usize = report.hosts.iter().map(|h| h.tasks.len()).sum();
        let expected = arrivals.min(total);
        prop_assert_eq!(
            admitted, expected,
            "{}: admitted {} of {} arrivals with fleet capacity {}",
            policy, admitted, arrivals, total
        );
        prop_assert_eq!(
            report.fleet_rejected,
            (arrivals - expected) as u64,
            "{}: cluster boundary must absorb exactly the overflow",
            policy
        );
        let host_rejections: u64 =
            report.hosts.iter().map(|h| h.rejected_admissions).sum();
        prop_assert_eq!(
            host_rejections, 0,
            "{}: the ledger is exact here, hosts must reject nothing",
            policy
        );
    }
}

// ---------------------------------------------------------------------
// Whole-host failure and recovery
// ---------------------------------------------------------------------

use disengaged_scheduling::core::fault::{FaultKind, FaultPlan};

/// A 2-host fleet under fewest-tenants with one endless non-migratable
/// tenant and two endless migratable ones, running `plan`'s host-scope
/// events to a 40 ms horizon.
fn faulted_fleet(plan: FaultPlan) -> disengaged_scheduling::core::FleetReport {
    let host = |seed: u64| {
        let config = WorldConfig {
            seed,
            ..WorldConfig::default()
        };
        World::with_devices(config, PlacementKind::LeastLoaded.build(), |_| {
            SchedulerKind::Direct.build(SchedParams::default())
        })
    };
    let mut fleet = Fleet::new(
        vec![host(0xA), host(0xB)],
        FleetPlacementKind::FewestTenants.build(),
        FleetRebalanceKind::Off.build(),
        ClusterInterconnect::free(),
    );
    fleet.set_faults(plan);
    // t1 → h0 (migratable), t2 → h1 (NOT migratable), t3 → h0 on the
    // 1-vs-1 tie (migratable); all endless.
    fleet.spawn_migratable_at(
        SimTime::ZERO + ms(1),
        Box::new(|| Box::new(Throttle::new(us(150))) as _),
    );
    fleet.spawn_task_at(SimTime::ZERO + ms(2), Box::new(Throttle::new(us(150))));
    fleet.spawn_migratable_at(
        SimTime::ZERO + ms(3),
        Box::new(|| Box::new(Throttle::new(us(150))) as _),
    );
    fleet.run(ms(40))
}

#[test]
fn host_failure_readmits_migratable_tenants_on_the_survivor() {
    let mut plan = FaultPlan::default();
    plan.push(SimTime::ZERO + ms(10), FaultKind::HostFail { host: 0 });
    let report = faulted_fleet(plan);
    assert_eq!(report.host_failures, 1);
    assert_eq!(
        report.fleet_fault_recovered, 2,
        "both migratable residents of host 0 re-admit on host 1"
    );
    assert_eq!(report.fleet_lost_tasks, 0);
    assert_eq!(
        report.cross_host_migrations, 2,
        "fault re-admissions ride the migration machinery"
    );
    // Host 0's residencies truncate at the failure; host 1 ends with
    // its own tenant plus the two continuations.
    assert_eq!(report.hosts[0].tasks.len(), 2);
    assert!(report.hosts[0]
        .tasks
        .iter()
        .all(|t| t.finished_at == Some(SimTime::ZERO + ms(10))));
    assert_eq!(report.hosts[1].tasks.len(), 3);
    // Never recovered: degraded through the 40 ms horizon.
    assert_eq!(report.host_degraded, ms(30));
}

#[test]
fn host_failure_loses_nonmigratable_tenants_and_recovery_bounds_degraded_time() {
    let mut plan = FaultPlan::default();
    plan.push(SimTime::ZERO + ms(10), FaultKind::HostFail { host: 1 });
    plan.push(SimTime::ZERO + ms(20), FaultKind::HostRecover { host: 1 });
    let report = faulted_fleet(plan);
    assert_eq!(report.host_failures, 1);
    assert_eq!(
        report.fleet_lost_tasks, 1,
        "host 1's tenant has no factory, so it cannot restage"
    );
    assert_eq!(report.fleet_fault_recovered, 0);
    assert_eq!(report.cross_host_migrations, 0);
    assert_eq!(
        report.host_degraded,
        ms(10),
        "down exactly 10 ms..20 ms, then recovered"
    );
    assert_eq!(
        report.hosts[1].tasks[0].finished_at,
        Some(SimTime::ZERO + ms(10))
    );
}

#[test]
fn single_host_fleets_ignore_host_faults() {
    // The transparent-fleet guarantee outranks chaos: with nowhere to
    // re-admit, a 1-host fleet's plan skips host events entirely.
    let host = World::with_devices(
        WorldConfig::default(),
        PlacementKind::LeastLoaded.build(),
        |_| SchedulerKind::Direct.build(SchedParams::default()),
    );
    let mut fleet = Fleet::new(
        vec![host],
        FleetPlacementKind::FewestTenants.build(),
        FleetRebalanceKind::Off.build(),
        ClusterInterconnect::free(),
    );
    let mut plan = FaultPlan::default();
    plan.push(SimTime::ZERO + ms(5), FaultKind::HostFail { host: 0 });
    fleet.set_faults(plan);
    fleet.spawn_task_at(SimTime::ZERO + ms(1), Box::new(Throttle::new(us(150))));
    let report = fleet.run(ms(40));
    assert_eq!(report.host_failures, 0);
    assert_eq!(report.fleet_lost_tasks, 0);
    assert_eq!(report.host_degraded, SimDuration::ZERO);
    assert!(report.hosts[0].tasks[0].finished_at.is_none());
}

#[test]
fn host_failure_spares_prestaged_residents() {
    // Host failure governs the *scheduled* tenant population: tenants
    // staged before the run with `add_task` are host-world state the
    // planning pass never owns, so they ride through the outage (the
    // outage itself is still charged to `host_degraded`). Documented
    // on `Fleet::set_faults`; crash-vulnerable residents belong in
    // `spawn_task_at(ZERO, ..)`.
    let host = |seed: u64| {
        let config = WorldConfig {
            seed,
            ..WorldConfig::default()
        };
        World::with_devices(config, PlacementKind::LeastLoaded.build(), |_| {
            SchedulerKind::Direct.build(SchedParams::default())
        })
    };
    let mut fleet = Fleet::new(
        vec![host(0xA), host(0xB)],
        FleetPlacementKind::FewestTenants.build(),
        FleetRebalanceKind::Off.build(),
        ClusterInterconnect::free(),
    );
    let mut plan = FaultPlan::default();
    plan.push(SimTime::ZERO + ms(10), FaultKind::HostFail { host: 0 });
    plan.push(SimTime::ZERO + ms(20), FaultKind::HostRecover { host: 0 });
    fleet.set_faults(plan);
    fleet.add_task(Box::new(Throttle::new(us(150)))).unwrap();
    fleet.add_task(Box::new(Throttle::new(us(150)))).unwrap();
    let report = fleet.run(ms(40));
    assert_eq!(report.host_failures, 1);
    assert_eq!(report.host_degraded, ms(10), "down exactly 10 ms..20 ms");
    assert_eq!(report.fleet_lost_tasks, 0);
    assert_eq!(report.fleet_fault_recovered, 0);
    // Both pre-staged residents (one per host under fewest-tenants)
    // run to the horizon untouched.
    for h in 0..2 {
        assert_eq!(report.hosts[h].tasks.len(), 1);
        assert!(report.hosts[h].tasks[0].finished_at.is_none());
    }
}
