//! Regression tests for the Disengaged FQ sampling-window collision
//! with large-request tenants (the `adversary_midrun.toml` anomaly).
//!
//! A 20 ms batcher never completes a request inside the 5 ms sampling
//! window. Two compounding accounting failures used to follow:
//!
//! 1. A window that closed with zero completions discarded the sample
//!    entirely — the batcher kept a stale (small) run-time estimate, so
//!    the free-run charge model billed it like a small-request tenant
//!    while device round-robin handed it ~98 % of the engine. Fixed by
//!    keeping the sample open until the in-flight request drains, so
//!    its completion is observed (prompted polling) and charged.
//! 2. The batcher's barrier drains and sampling drains inflated the
//!    engagement length, and with it the 5× free-run *and* the denial
//!    threshold (which equals the upcoming interval) — the batcher's
//!    virtual-time lead chased a receding target and denial never
//!    fired. Fixed by capping the free-run interval
//!    (`SchedParams::freerun_max`).
//!
//! Together these took `adversary_midrun.toml`'s disengaged-fq cell
//! from ~900 aggregate rounds (≈ direct access, i.e. no protection at
//! all) to within ~15 % of disengaged-ts.

use disengaged_scheduling::core::cost::SchedParams;
use disengaged_scheduling::core::world::{World, WorldConfig};
use disengaged_scheduling::core::{RunReport, SchedulerKind};
use disengaged_scheduling::workloads::adversary::Batcher;
use disengaged_scheduling::workloads::Throttle;
use neon_sim::{SimDuration, SimTime};

fn run_batcher_mix(kind: SchedulerKind) -> RunReport {
    let config = WorldConfig {
        seed: 5,
        ..WorldConfig::default()
    };
    let mut world = World::new(config, kind.build(SchedParams::default()));
    for _ in 0..2 {
        world
            .add_task(Box::new(Throttle::new(SimDuration::from_micros(200))))
            .unwrap();
    }
    world.spawn_task_at(
        SimTime::ZERO + SimDuration::from_millis(100),
        Box::new(Batcher::new(SimDuration::from_millis(20))),
    );
    world.run(SimDuration::from_millis(700))
}

#[test]
fn dfq_contains_a_large_request_batcher() {
    let report = run_batcher_mix(SchedulerKind::DisengagedFairQueueing);
    let honest0 = &report.tasks[0];
    let honest1 = &report.tasks[1];
    let batcher = &report.tasks[2];
    // Pre-fix numbers for this exact scenario: ~300 rounds per honest
    // task and a 9× usage skew toward the batcher (as bad as direct
    // access). With correct sampling and the interval cap, the honest
    // tenants stay above 600 rounds and the skew is bounded.
    for t in [honest0, honest1] {
        assert!(
            t.rounds_completed() > 600,
            "honest tenant starved by the batcher: {} rounds",
            t.rounds_completed()
        );
    }
    let skew = batcher.usage.ratio(honest0.usage.min(honest1.usage));
    assert!(
        skew < 3.0,
        "batcher still dominates device time: {skew:.1}x an honest tenant"
    );
    assert!(
        !batcher.killed,
        "containment must come from denial, not kills"
    );
}

#[test]
fn dfq_stays_within_reach_of_disengaged_ts_under_the_batcher() {
    // The anomaly's original signature: DFQ at ~1/7 of disengaged-ts
    // aggregate throughput. Require the gap to stay under 2×.
    let dfq: usize = run_batcher_mix(SchedulerKind::DisengagedFairQueueing)
        .tasks
        .iter()
        .map(|t| t.rounds_completed())
        .sum();
    let dts: usize = run_batcher_mix(SchedulerKind::DisengagedTimeslice)
        .tasks
        .iter()
        .map(|t| t.rounds_completed())
        .sum();
    assert!(
        dfq * 2 > dts,
        "DFQ collapsed again under the batcher: {dfq} rounds vs {dts} for disengaged-ts"
    );
}

#[test]
fn freerun_cap_only_binds_on_inflated_engagements() {
    // A small-request mix must behave identically with and without the
    // cap: engagements stay ~10 ms, 5× of which is far below 100 ms.
    let run = |freerun_max| {
        let config = WorldConfig {
            seed: 11,
            params: SchedParams {
                freerun_max,
                ..SchedParams::default()
            },
            ..WorldConfig::default()
        };
        let params = config.params.clone();
        let mut world = World::new(config, SchedulerKind::DisengagedFairQueueing.build(params));
        for _ in 0..2 {
            world
                .add_task(Box::new(Throttle::new(SimDuration::from_micros(150))))
                .unwrap();
        }
        let r = world.run(SimDuration::from_millis(400));
        (
            r.faults,
            r.tasks[0].rounds.clone(),
            r.tasks[1].rounds.clone(),
        )
    };
    assert_eq!(
        run(SimDuration::from_millis(100)),
        run(SimDuration::from_secs(3600)),
        "the cap must be invisible to well-behaved workloads"
    );
}
