//! Cross-crate integration tests: scheduler behaviour end-to-end.

use disengaged_scheduling::core::cost::SchedParams;
use disengaged_scheduling::core::world::{World, WorldConfig};
use disengaged_scheduling::core::SchedulerKind;
use disengaged_scheduling::workloads::adversary::{Batcher, IdleBurst, InfiniteLoop};
use disengaged_scheduling::workloads::{app, throttle, Throttle};
use neon_sim::SimDuration;

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

fn world(kind: SchedulerKind) -> World {
    World::new(WorldConfig::default(), kind.build(SchedParams::default()))
}

#[test]
fn direct_access_is_unfair_by_request_size() {
    let mut w = world(SchedulerKind::Direct);
    w.add_task(Box::new(Throttle::new(us(20)))).unwrap();
    w.add_task(Box::new(Throttle::new(us(1000)))).unwrap();
    let report = w.run(SimDuration::from_millis(500));
    let small = report.tasks[0].usage;
    let large = report.tasks[1].usage;
    assert!(
        large.ratio(small) > 10.0,
        "round-robin by request must favor large requests: {:.1}",
        large.ratio(small)
    );
}

#[test]
fn all_fair_schedulers_split_device_time_evenly() {
    for kind in [
        SchedulerKind::Timeslice,
        SchedulerKind::DisengagedTimeslice,
        SchedulerKind::DisengagedFairQueueing,
    ] {
        let mut w = world(kind);
        w.add_task(Box::new(Throttle::new(us(20)))).unwrap();
        w.add_task(Box::new(Throttle::new(us(1000)))).unwrap();
        let report = w.run(SimDuration::from_millis(800));
        let small = report.tasks[0].usage;
        let large = report.tasks[1].usage;
        let ratio = large.ratio(small);
        assert!(
            (0.55..1.8).contains(&ratio),
            "{}: usage ratio {ratio:.2} not within fair band",
            kind.label()
        );
    }
}

#[test]
fn timeslice_overuse_control_contains_the_batcher() {
    // A batcher issuing 10ms requests overruns every 30ms slice; the
    // overuse ledger must keep its long-run share near 50%.
    let mut w = world(SchedulerKind::DisengagedTimeslice);
    w.add_task(Box::new(app::dct())).unwrap();
    w.add_task(Box::new(Batcher::new(SimDuration::from_millis(10))))
        .unwrap();
    let report = w.run(SimDuration::from_secs(1));
    let dct = report.tasks[0].usage;
    let batcher = report.tasks[1].usage;
    let share = batcher.ratio(dct + batcher);
    assert!(
        (0.40..0.62).contains(&share),
        "batcher share {share:.2} escaped overuse control"
    );
}

#[test]
fn infinite_loop_task_is_killed_and_victim_recovers() {
    for kind in [
        SchedulerKind::Timeslice,
        SchedulerKind::DisengagedTimeslice,
        SchedulerKind::DisengagedFairQueueing,
    ] {
        let params = SchedParams {
            overlong_limit: SimDuration::from_millis(40),
            ..SchedParams::default()
        };
        let mut w = World::new(
            WorldConfig {
                params: params.clone(),
                ..WorldConfig::default()
            },
            kind.build(params),
        );
        w.add_task(Box::new(app::dct())).unwrap();
        w.add_task(Box::new(InfiniteLoop::new(5, us(100)))).unwrap();
        let report = w.run(SimDuration::from_millis(600));
        assert!(
            report.tasks[1].killed,
            "{}: attacker not killed",
            kind.label()
        );
        assert!(
            !report.tasks[0].killed,
            "{}: victim wrongly killed",
            kind.label()
        );
        // The victim keeps making progress after the kill: it should
        // complete a large share of its standalone round count.
        let rounds = report.tasks[0].rounds_completed();
        assert!(
            rounds > 1500,
            "{}: victim only completed {rounds} rounds",
            kind.label()
        );
    }
}

#[test]
fn dfq_defuses_the_idle_burst_hoarder() {
    // A task that idles then bursts must not starve the steady task:
    // system virtual time forwards idle tasks, so the burst competes
    // from "now" instead of redeeming banked credit.
    let mut w = world(SchedulerKind::DisengagedFairQueueing);
    w.add_task(Box::new(Throttle::new(us(100)))).unwrap();
    w.add_task(Box::new(IdleBurst::new(
        SimDuration::from_millis(120),
        64,
        us(500),
    )))
    .unwrap();
    let report = w.run(SimDuration::from_secs(1));
    // The steady task must retain a solid share of the device.
    let steady = report.tasks[0].usage;
    assert!(
        steady > SimDuration::from_millis(300),
        "steady task starved: only {steady}"
    );
}

#[test]
fn disengaged_ts_intercepts_far_fewer_requests_than_engaged() {
    let run = |kind: SchedulerKind| {
        let mut w = world(kind);
        w.add_task(Box::new(app::dct())).unwrap();
        w.add_task(Box::new(Throttle::new(us(430)))).unwrap();
        w.run(SimDuration::from_millis(500))
    };
    let engaged = run(SchedulerKind::Timeslice);
    let disengaged = run(SchedulerKind::DisengagedTimeslice);
    assert!(
        engaged.faults > 10 * disengaged.faults.max(1),
        "engaged {} vs disengaged {} faults",
        engaged.faults,
        disengaged.faults
    );
    // Disengaged mode leaves the bulk of submissions direct.
    assert!(disengaged.direct_submits > 9 * disengaged.faults.max(1));
}

#[test]
fn dfq_mostly_disengages_too() {
    let mut w = world(SchedulerKind::DisengagedFairQueueing);
    w.add_task(Box::new(app::dct())).unwrap();
    w.add_task(Box::new(Throttle::new(us(430)))).unwrap();
    let report = w.run(SimDuration::from_millis(500));
    let total = report.faults + report.direct_submits;
    assert!(
        (report.faults as f64) < 0.25 * total as f64,
        "DFQ intercepted {}/{} submissions",
        report.faults,
        total
    );
}

#[test]
fn nonsaturating_throttle_is_not_punished_by_dfq() {
    let mut w = world(SchedulerKind::DisengagedFairQueueing);
    w.add_task(Box::new(app::dct())).unwrap();
    w.add_task(Box::new(throttle::nonsaturating(us(430), 0.8)))
        .unwrap();
    let report = w.run(SimDuration::from_secs(1));
    let throttle_round = report.tasks[1].mean_round(0.2).unwrap();
    // Standalone round would be 430µs/(1-0.8) = 2150µs.
    assert!(
        throttle_round < SimDuration::from_micros(3500),
        "nonsaturating throttle round ballooned to {throttle_round}"
    );
}

#[test]
fn scheduler_names_match_kinds() {
    for kind in SchedulerKind::ALL {
        let sched = kind.build(SchedParams::default());
        assert_eq!(sched.name(), kind.label());
    }
}

#[test]
fn vendor_statistics_remove_the_estimation_anomalies() {
    // Sec 6.1 future work: with hardware usage statistics, Disengaged
    // Fair Queueing needs no sampling and its accounting is exact, so
    // the glxgears anomaly disappears and overhead drops.
    let run_pair = |kind: SchedulerKind| {
        let mut w = world(kind);
        w.add_task(Box::new(app::glxgears_model())).unwrap();
        w.add_task(Box::new(Throttle::new(us(19)))).unwrap();
        w.run(SimDuration::from_secs(2))
    };
    let est = run_pair(SchedulerKind::DisengagedFairQueueing);
    let hw = run_pair(SchedulerKind::DisengagedFairQueueingVendor);

    // With exact statistics both tasks' *charged* usage is their true
    // usage, so shares even out better than under estimation.
    let est_gap = {
        let a = est.tasks[0].usage;
        let b = est.tasks[1].usage;
        a.max(b).ratio(a.min(b))
    };
    let hw_gap = {
        let a = hw.tasks[0].usage;
        let b = hw.tasks[1].usage;
        a.max(b).ratio(a.min(b))
    };
    assert!(
        hw_gap <= est_gap + 0.15,
        "vendor stats should not be less fair: est {est_gap:.2} vs hw {hw_gap:.2}"
    );

    // And the interception count collapses: no sampling windows at all.
    assert!(
        hw.faults * 5 < est.faults.max(1),
        "hw mode intercepted {} vs estimation's {}",
        hw.faults,
        est.faults
    );
}

#[test]
fn vendor_statistics_cut_standalone_overhead() {
    let run_solo = |kind: SchedulerKind| {
        let mut w = world(kind);
        w.add_task(Box::new(Throttle::new(us(19)))).unwrap();
        let report = w.run(SimDuration::from_millis(500));
        report.tasks[0].rounds_completed()
    };
    let direct = run_solo(SchedulerKind::Direct);
    let est = run_solo(SchedulerKind::DisengagedFairQueueing);
    let hw = run_solo(SchedulerKind::DisengagedFairQueueingVendor);
    // Estimation pays for sampling; hardware statistics are ~free.
    assert!(hw > est, "hw rounds {hw} should beat estimation's {est}");
    let hw_overhead = 1.0 - hw as f64 / direct as f64;
    assert!(
        hw_overhead < 0.02,
        "vendor-stat DFQ overhead {:.1}% should be ~0",
        hw_overhead * 100.0
    );
}

#[test]
fn hardware_preemption_tolerates_infinite_requests_without_killing() {
    // Sec 6.2 future work: with true hardware preemption the scheduler
    // swaps an over-long request out (remainder requeued, channel
    // masked) instead of killing the task; the co-runner keeps the
    // device and the offender is merely rate-limited.
    let params = SchedParams {
        overlong_limit: SimDuration::from_millis(20),
        hardware_preemption: true,
        ..SchedParams::default()
    };
    let mut w = World::new(
        WorldConfig {
            params: params.clone(),
            ..WorldConfig::default()
        },
        SchedulerKind::DisengagedFairQueueing.build(params),
    );
    w.add_task(Box::new(app::dct())).unwrap();
    w.add_task(Box::new(InfiniteLoop::new(5, us(100)))).unwrap();
    let report = w.run(SimDuration::from_secs(1));
    assert!(!report.tasks[1].killed, "preemption must replace the kill");
    // The attacker is rate-limited to roughly a fair share (it gets at
    // most one overlong_limit slice per interval), and the victim keeps
    // a solid share of the device and steady progress — the system
    // stays responsive despite an unbounded request.
    let victim = report.tasks[0].usage;
    let attacker = report.tasks[1].usage;
    let share = victim.ratio(victim + attacker);
    assert!(
        share > 0.35,
        "victim got only {victim} vs attacker {attacker} (share {share:.2})"
    );
    assert!(report.tasks[0].rounds_completed() > 1000);
}

#[test]
fn without_preemption_the_same_scenario_kills() {
    let params = SchedParams {
        overlong_limit: SimDuration::from_millis(20),
        hardware_preemption: false,
        ..SchedParams::default()
    };
    let mut w = World::new(
        WorldConfig {
            params: params.clone(),
            ..WorldConfig::default()
        },
        SchedulerKind::DisengagedFairQueueing.build(params),
    );
    w.add_task(Box::new(app::dct())).unwrap();
    w.add_task(Box::new(InfiniteLoop::new(5, us(100)))).unwrap();
    let report = w.run(SimDuration::from_secs(1));
    assert!(report.tasks[1].killed);
}
