//! Property-based tests over the full stack: conservation laws and
//! determinism that must hold for any workload mix, any scheduler,
//! and any seed.

use disengaged_scheduling::core::cost::SchedParams;
use disengaged_scheduling::core::world::{World, WorldConfig};
use disengaged_scheduling::core::{RunReport, SchedulerKind};
use disengaged_scheduling::workloads::Throttle;
use neon_sim::SimDuration;
use proptest::prelude::*;

fn run_mix(kind: SchedulerKind, sizes: &[u64], seed: u64, horizon_ms: u64) -> RunReport {
    let config = WorldConfig {
        seed,
        ..WorldConfig::default()
    };
    let mut world = World::new(config, kind.build(SchedParams::default()));
    for (i, &size) in sizes.iter().enumerate() {
        // Distinct sizes (hence names) so reports are unambiguous.
        let size = size + i as u64;
        world
            .add_task(Box::new(Throttle::new(SimDuration::from_micros(size))))
            .expect("device has room");
    }
    world.run(SimDuration::from_millis(horizon_ms))
}

fn any_scheduler() -> impl Strategy<Value = SchedulerKind> {
    prop_oneof![
        Just(SchedulerKind::Direct),
        Just(SchedulerKind::Timeslice),
        Just(SchedulerKind::DisengagedTimeslice),
        Just(SchedulerKind::DisengagedFairQueueing),
        Just(SchedulerKind::EngagedSfq),
        Just(SchedulerKind::EngagedDrr),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Per-task usage never exceeds engine busy time, which never
    /// exceeds the wall clock.
    #[test]
    fn usage_is_conserved(
        kind in any_scheduler(),
        sizes in proptest::collection::vec(10u64..800, 1..4),
        seed in 0u64..1_000,
    ) {
        let report = run_mix(kind, &sizes, seed, 120);
        let wall = report.wall;
        prop_assert!(report.compute_busy <= wall);
        let usage_sum: SimDuration = report.tasks.iter().map(|t| t.usage).sum();
        // In-flight work at the horizon is uncharged; allow one request
        // plus a context switch of slack.
        let slack = SimDuration::from_micros(sizes.iter().copied().max().unwrap_or(0) + 10);
        prop_assert!(
            usage_sum <= report.compute_busy + report.dma_busy + slack,
            "usage {} vs busy {}", usage_sum, report.compute_busy
        );
    }

    /// Completions never exceed submissions, and nothing is lost:
    /// submitted − completed is bounded by the in-flight pipeline.
    #[test]
    fn requests_are_conserved(
        kind in any_scheduler(),
        sizes in proptest::collection::vec(10u64..800, 1..4),
        seed in 0u64..1_000,
    ) {
        let report = run_mix(kind, &sizes, seed, 120);
        for t in &report.tasks {
            prop_assert!(t.completed_requests <= t.submitted_requests);
            prop_assert!(
                t.submitted_requests - t.completed_requests <= 64,
                "{}: {} submitted vs {} completed",
                t.name, t.submitted_requests, t.completed_requests
            );
        }
    }

    /// Every task of a saturating mix makes progress under every fair
    /// scheduler (no starvation).
    #[test]
    fn no_starvation(
        kind in any_scheduler(),
        sizes in proptest::collection::vec(20u64..400, 2..4),
        seed in 0u64..1_000,
    ) {
        let report = run_mix(kind, &sizes, seed, 250);
        for t in &report.tasks {
            prop_assert!(
                t.rounds_completed() > 0,
                "{} starved under {}", t.name, report.scheduler
            );
        }
    }

    /// Identical configuration and seed produce identical reports.
    #[test]
    fn determinism(
        kind in any_scheduler(),
        sizes in proptest::collection::vec(10u64..500, 1..4),
        seed in 0u64..1_000,
    ) {
        let a = run_mix(kind, &sizes, seed, 80);
        let b = run_mix(kind, &sizes, seed, 80);
        prop_assert_eq!(a.compute_busy, b.compute_busy);
        prop_assert_eq!(a.faults, b.faults);
        for (ta, tb) in a.tasks.iter().zip(&b.tasks) {
            prop_assert_eq!(&ta.rounds, &tb.rounds);
            prop_assert_eq!(ta.usage, tb.usage);
        }
    }

    /// Direct access never faults; engaged timeslice intercepts every
    /// submission.
    #[test]
    fn interception_counts_match_policy(
        sizes in proptest::collection::vec(20u64..400, 1..3),
        seed in 0u64..1_000,
    ) {
        let direct = run_mix(SchedulerKind::Direct, &sizes, seed, 100);
        prop_assert_eq!(direct.faults, 0);
        prop_assert!(direct.direct_submits > 0);

        let engaged = run_mix(SchedulerKind::Timeslice, &sizes, seed, 100);
        prop_assert_eq!(engaged.direct_submits, 0, "engaged TS must trap everything");
        prop_assert!(engaged.faults > 0);
    }
}
