//! Fault-injection integration tests: the watchdog kill-and-requeue
//! loop, crash and transient-submission-error paths, hot-remove
//! drain-and-migrate with park/re-stage recovery, degraded-capacity
//! accounting — and a chaos property: for *any* generated fault
//! schedule, under every scheduler × placement, the simulation
//! terminates, every admitted task lands in exactly one outcome
//! bucket, and the run replays byte-identically.

use disengaged_scheduling::core::cost::SchedParams;
use disengaged_scheduling::core::fault::{FaultConfig, FaultKind, FaultPlan};
use disengaged_scheduling::core::placement::PlacementKind;
use disengaged_scheduling::core::world::{World, WorldConfig};
use disengaged_scheduling::core::{RunReport, SchedulerKind};
use disengaged_scheduling::gpu::{DeviceId, GpuConfig, TaskId};
use disengaged_scheduling::workloads::Throttle;
use neon_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}
fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}
fn at_ms(v: u64) -> SimTime {
    SimTime::ZERO + ms(v)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

const ALL_SCHEDULERS: [SchedulerKind; 6] = [
    SchedulerKind::Direct,
    SchedulerKind::Timeslice,
    SchedulerKind::DisengagedTimeslice,
    SchedulerKind::DisengagedFairQueueing,
    SchedulerKind::EngagedSfq,
    SchedulerKind::EngagedDrr,
];

/// A world with `devices` GPUs, three residents and one mid-run
/// visitor, running `plan`.
fn run_faulted(
    kind: SchedulerKind,
    placement: PlacementKind,
    devices: usize,
    plan: FaultPlan,
    horizon: SimDuration,
) -> (RunReport, u64) {
    let config = WorldConfig {
        devices: vec![GpuConfig::default(); devices],
        seed: 0xFA_17,
        faults: Some(plan),
        ..WorldConfig::default()
    };
    let mut world = World::with_devices(config, placement.build(), |_| {
        kind.build(SchedParams::default())
    });
    world.trace.set_enabled(true);
    for i in 0..3u64 {
        world
            .add_task(Box::new(Throttle::new(us(150 + 10 * i))))
            .expect("seed tasks fit");
    }
    world.spawn_task_for(at_ms(8), Box::new(Throttle::new(us(400))), ms(6));
    let report = world.run(horizon);
    let mut log = String::new();
    for e in world.trace.iter() {
        log.push_str(&format!("{e}\n"));
    }
    (report, fnv1a(log.as_bytes()))
}

/// Partitions a report's tasks into (finished, killed, resident) and
/// asserts the buckets are disjoint and exhaustive.
fn outcome_buckets(report: &RunReport) -> (usize, usize, usize) {
    let mut finished = 0;
    let mut killed = 0;
    let mut resident = 0;
    for t in &report.tasks {
        if t.killed {
            assert!(
                t.finished_at.is_some(),
                "{}: killed task must carry its kill instant",
                t.id
            );
            killed += 1;
        } else if t.finished_at.is_some() {
            finished += 1;
        } else {
            resident += 1;
        }
    }
    assert_eq!(report.tasks.len(), finished + killed + resident);
    (finished, killed, resident)
}

// ---------------------------------------------------------------------
// Watchdog: hang, kill-and-requeue, retry budget
// ---------------------------------------------------------------------

#[test]
fn watchdog_kills_and_requeues_a_hung_task() {
    let mut plan = FaultPlan::new(FaultConfig {
        watchdog: Some(ms(2)),
        ..FaultConfig::default()
    });
    plan.push(at_ms(1), FaultKind::TaskHang { task: None });
    for kind in ALL_SCHEDULERS {
        let (report, _) = run_faulted(kind, PlacementKind::RoundRobin, 1, plan.clone(), ms(30));
        assert_eq!(report.injected_faults, 1, "{kind}");
        assert_eq!(report.watchdog_kills, 1, "{kind}");
        assert_eq!(report.fault_retries, 1, "{kind}: one requeue scheduled");
        assert_eq!(report.lost_tasks, 0, "{kind}: budget not exhausted");
        // The requeue is a fresh admission: 3 residents + 1 visitor + 1.
        assert_eq!(report.tasks.len(), 5, "{kind}");
        let (_, killed, _) = outcome_buckets(&report);
        assert_eq!(killed, 1, "{kind}: exactly the hung lineage");
    }
}

#[test]
fn watchdog_retry_budget_exhaustion_loses_the_lineage() {
    let mut plan = FaultPlan::new(FaultConfig {
        watchdog: Some(ms(2)),
        retry_budget: 0,
        ..FaultConfig::default()
    });
    plan.push(
        at_ms(1),
        FaultKind::TaskHang {
            task: Some(TaskId::new(0)),
        },
    );
    let (report, _) = run_faulted(
        SchedulerKind::DisengagedFairQueueing,
        PlacementKind::RoundRobin,
        1,
        plan,
        ms(30),
    );
    assert_eq!(report.watchdog_kills, 1);
    assert_eq!(report.fault_retries, 0, "no budget, no requeue");
    assert_eq!(report.lost_tasks, 1);
    assert_eq!(report.tasks.len(), 4, "no requeued admission");
}

#[test]
fn hang_without_watchdog_wedges_until_the_horizon() {
    // No watchdog: the hung request never completes and nobody kills
    // the task, so it is still resident (and stalled) at the horizon.
    let mut plan = FaultPlan::new(FaultConfig::default());
    plan.push(
        at_ms(1),
        FaultKind::TaskHang {
            task: Some(TaskId::new(0)),
        },
    );
    let (report, _) = run_faulted(
        SchedulerKind::Timeslice,
        PlacementKind::RoundRobin,
        1,
        plan,
        ms(30),
    );
    assert_eq!(report.watchdog_kills, 0);
    assert_eq!(report.lost_tasks, 0);
    let victim = &report.tasks[0];
    assert!(victim.finished_at.is_none(), "wedged, not killed");
    assert!(
        victim.completed_requests < victim.submitted_requests,
        "the hung submission never completed"
    );
}

// ---------------------------------------------------------------------
// Crash and transient submission error
// ---------------------------------------------------------------------

#[test]
fn crash_loses_the_victim_immediately() {
    let mut plan = FaultPlan::new(FaultConfig::default());
    plan.push(
        at_ms(1),
        FaultKind::TaskCrash {
            task: Some(TaskId::new(1)),
        },
    );
    for kind in ALL_SCHEDULERS {
        let (report, _) = run_faulted(kind, PlacementKind::RoundRobin, 1, plan.clone(), ms(30));
        assert_eq!(report.lost_tasks, 1, "{kind}");
        assert_eq!(report.watchdog_kills, 0, "{kind}");
        assert_eq!(report.fault_retries, 0, "{kind}: a crash is not retried");
        assert_eq!(report.tasks.len(), 4, "{kind}");
        let victim = &report.tasks[1];
        assert!(victim.killed, "{kind}");
        assert_eq!(victim.finished_at, Some(at_ms(1)), "{kind}");
    }
}

#[test]
fn submit_error_is_retried_and_the_task_recovers() {
    let mut plan = FaultPlan::new(FaultConfig::default());
    plan.push(
        at_ms(1),
        FaultKind::SubmitError {
            task: Some(TaskId::new(0)),
        },
    );
    let (report, _) = run_faulted(
        SchedulerKind::Direct,
        PlacementKind::RoundRobin,
        1,
        plan,
        ms(30),
    );
    assert_eq!(report.injected_faults, 1);
    assert_eq!(
        report.fault_retries, 1,
        "the failed submission retried once"
    );
    assert_eq!(report.lost_tasks, 0);
    let victim = &report.tasks[0];
    assert!(!victim.killed);
    assert!(
        victim.completed_requests > 0,
        "the task kept running after the transient error"
    );
}

// ---------------------------------------------------------------------
// Hot-remove / hot-add: drain-and-migrate, park, degraded accounting
// ---------------------------------------------------------------------

#[test]
fn hot_remove_drains_residents_to_the_survivor() {
    let mut plan = FaultPlan::new(FaultConfig::default());
    plan.push(
        at_ms(5),
        FaultKind::DeviceRemove {
            device: DeviceId::new(1),
        },
    );
    for kind in ALL_SCHEDULERS {
        let (report, _) = run_faulted(kind, PlacementKind::RoundRobin, 2, plan.clone(), ms(30));
        assert_eq!(report.hot_removes, 1, "{kind}");
        assert!(report.recovered_tasks >= 1, "{kind}: residents drained");
        assert!(
            report.migrations >= 1,
            "{kind}: drain uses the migration path"
        );
        assert_eq!(report.lost_tasks, 0, "{kind}: the survivor had room");
        // Offline from 5ms through the 30ms horizon.
        assert_eq!(report.degraded, ms(25), "{kind}");
        for t in report.tasks.iter().filter(|t| t.finished_at.is_none()) {
            assert_eq!(
                t.device,
                DeviceId::new(0),
                "{kind}: {} still on dead device",
                t.id
            );
        }
    }
}

#[test]
fn hot_add_restages_parked_tasks_and_bounds_degraded_time() {
    // Single device: a remove displaces everyone with nowhere to go,
    // so they park; the add brings them back.
    let mut plan = FaultPlan::new(FaultConfig::default());
    plan.push(
        at_ms(5),
        FaultKind::DeviceRemove {
            device: DeviceId::new(0),
        },
    );
    plan.push(
        at_ms(10),
        FaultKind::DeviceAdd {
            device: DeviceId::new(0),
        },
    );
    let (report, _) = run_faulted(
        SchedulerKind::DisengagedFairQueueing,
        PlacementKind::LeastLoaded,
        1,
        plan,
        ms(30),
    );
    assert_eq!(report.hot_removes, 1);
    assert_eq!(report.lost_tasks, 0, "everyone re-staged");
    assert_eq!(report.recovered_tasks, 3, "the three residents came back");
    assert!(
        report.fault_retries >= 1,
        "parked retries fired before the add"
    );
    assert_eq!(report.degraded, ms(5), "offline exactly 5ms..10ms");
    let (_, _, resident) = outcome_buckets(&report);
    assert_eq!(resident, 3, "residents live again at the horizon");
}

#[test]
fn park_retry_bound_loses_tasks_when_capacity_never_returns() {
    let mut plan = FaultPlan::new(FaultConfig {
        max_park_retries: 2,
        ..FaultConfig::default()
    });
    plan.push(
        at_ms(5),
        FaultKind::DeviceRemove {
            device: DeviceId::new(0),
        },
    );
    let (report, _) = run_faulted(
        SchedulerKind::Timeslice,
        PlacementKind::RoundRobin,
        1,
        plan,
        ms(30),
    );
    assert_eq!(report.hot_removes, 1);
    assert_eq!(report.recovered_tasks, 0);
    assert_eq!(report.lost_tasks, 3, "every parked resident hit the bound");
    assert_eq!(report.degraded, ms(25));
    let (_, killed, _) = outcome_buckets(&report);
    assert_eq!(killed, 3);
}

#[test]
fn attaching_an_empty_plan_is_byte_identical_to_no_plan() {
    for kind in ALL_SCHEDULERS {
        let run = |faults: Option<FaultPlan>| {
            let config = WorldConfig {
                devices: vec![GpuConfig::default(); 2],
                seed: 0xFA_17,
                faults,
                ..WorldConfig::default()
            };
            let mut world = World::with_devices(config, PlacementKind::RoundRobin.build(), |_| {
                kind.build(SchedParams::default())
            });
            world.trace.set_enabled(true);
            for _ in 0..2 {
                world
                    .add_task(Box::new(Throttle::new(us(150))))
                    .expect("fits");
            }
            world.run(ms(20));
            let mut log = String::new();
            for e in world.trace.iter() {
                log.push_str(&format!("{e}\n"));
            }
            fnv1a(log.as_bytes())
        };
        assert_eq!(
            run(None),
            run(Some(FaultPlan::default())),
            "{kind}: an event-free plan with no watchdog must not perturb the run"
        );
    }
}

// ---------------------------------------------------------------------
// Chaos property: any schedule, every scheduler × placement
// ---------------------------------------------------------------------

/// Decodes one generated `(selector, operand, at)` triple into a fault
/// event. Operands deliberately range past the real device/task
/// population so out-of-range targets (which must be ignored, not
/// crash) are part of the search space; host-scope events must be
/// no-ops for a lone world.
fn decode(sel: u8, operand: u32, at_us: u64) -> (SimTime, FaultKind) {
    let task = (!operand.is_multiple_of(3)).then(|| TaskId::new(operand % 8));
    let kind = match sel {
        0 => FaultKind::DeviceRemove {
            device: DeviceId::new(operand % 3),
        },
        1 => FaultKind::DeviceAdd {
            device: DeviceId::new(operand % 3),
        },
        2 => FaultKind::TaskHang { task },
        3 => FaultKind::TaskCrash { task },
        4 => FaultKind::SubmitError { task },
        5 => FaultKind::HostFail { host: operand % 2 },
        _ => FaultKind::HostRecover { host: operand % 2 },
    };
    (SimTime::ZERO + us(at_us), kind)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// For any fault schedule: the run terminates within the horizon,
    /// every event in the plan fires exactly once, every admitted task
    /// is in exactly one of {finished, killed, resident}, per-task
    /// request accounting stays conserved, degraded time is bounded by
    /// the horizon — and the whole thing replays byte-identically.
    #[test]
    fn chaos_schedules_terminate_conserve_and_replay(
        raw in proptest::collection::vec(((0u8..7), (0u32..12), (0u64..25_000)), 1..10),
    ) {
        let horizon = ms(30);
        let mut plan = FaultPlan::new(FaultConfig {
            watchdog: Some(ms(2)),
            ..FaultConfig::default()
        });
        for &(sel, operand, at_us) in &raw {
            let (at, kind) = decode(sel, operand, at_us);
            plan.push(at, kind);
        }
        for kind in ALL_SCHEDULERS {
            for placement in PlacementKind::ALL {
                let (report, hash) =
                    run_faulted(kind, placement, 2, plan.clone(), horizon);
                prop_assert!(report.wall <= horizon, "{kind} × {placement}");
                prop_assert_eq!(
                    report.injected_faults,
                    raw.len() as u64,
                    "{} × {}: every scheduled event fires once",
                    kind,
                    placement
                );
                let (finished, killed, resident) = outcome_buckets(&report);
                prop_assert_eq!(
                    report.tasks.len(),
                    finished + killed + resident,
                    "{} × {}",
                    kind,
                    placement
                );
                for t in &report.tasks {
                    prop_assert!(
                        t.completed_requests <= t.submitted_requests,
                        "{} × {}: {} completed more than it submitted",
                        kind,
                        placement,
                        t.id
                    );
                }
                prop_assert!(
                    report.degraded <= ms(60),
                    "{} × {}: degraded time exceeds devices × horizon",
                    kind,
                    placement
                );
                // Replay: identical schedule + seed => identical trace.
                let (replay, replay_hash) =
                    run_faulted(kind, placement, 2, plan.clone(), horizon);
                prop_assert_eq!(hash, replay_hash, "{} × {}", kind, placement);
                prop_assert_eq!(
                    (replay.watchdog_kills, replay.lost_tasks, replay.recovered_tasks),
                    (report.watchdog_kills, report.lost_tasks, report.recovered_tasks),
                    "{} × {}",
                    kind,
                    placement
                );
            }
        }
    }
}
