//! Integration tests asserting the *shape* of every reproduced figure:
//! who wins, by roughly what factor, and where crossovers fall.
//! Horizons are reduced relative to the bench harness to keep the
//! suite fast; the asserted bands are correspondingly generous.

use disengaged_scheduling::core::SchedulerKind;
use disengaged_scheduling::experiments::{
    fig10, fig2, fig4, fig5, fig6, fig8, fig9, sec3, sec63, table1,
};
use neon_sim::SimDuration;

#[test]
fn table1_round_times_track_the_paper() {
    let rows = table1::run(&table1::Config {
        horizon: SimDuration::from_millis(400),
        ..table1::Config::default()
    });
    assert_eq!(rows.len(), 18);
    for row in &rows {
        assert!(
            row.round_error() < 0.15,
            "{}: {:.0}us vs paper {:.0}us",
            row.name,
            row.measured_round_us,
            row.paper_round_us
        );
    }
}

#[test]
fn fig2_most_requests_are_short_and_back_to_back() {
    let rows = fig2::run(&fig2::Config {
        horizon: SimDuration::from_millis(250),
        ..fig2::Config::default()
    });
    for row in &rows {
        // More than half of requests are submitted within ~16µs of the
        // previous one (bin 4 = [16,32)µs).
        assert!(
            row.inter_arrival.cumulative_percent(4) > 50.0,
            "{}: only {:.0}% back-to-back",
            row.name,
            row.inter_arrival.cumulative_percent(4)
        );
    }
}

#[test]
fn sec3_direct_access_beats_trapping_stacks_for_small_requests() {
    let rows = sec3::run(&sec3::Config {
        horizon: SimDuration::from_millis(250),
        sizes: vec![SimDuration::from_micros(10), SimDuration::from_micros(100)],
        ..sec3::Config::default()
    });
    // Paper: 8–35% gains for 10–100µs, 48–170% with driver work.
    let small = &rows[0];
    let large = &rows[1];
    assert!(small.gain_over_syscall() > 0.15 && small.gain_over_syscall() < 0.60);
    assert!(large.gain_over_syscall() > 0.01 && large.gain_over_syscall() < 0.12);
    assert!(small.gain_over_heavy() > 0.8);
    assert!(small.gain_over_heavy() > small.gain_over_syscall() * 2.0);
}

#[test]
fn fig4_engaged_hurts_small_request_apps_disengaged_does_not() {
    let cfg = fig4::Config {
        horizon: SimDuration::from_millis(400),
        ..fig4::Config::default()
    };
    let rows = fig4::run(&cfg);
    let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap();

    // The three applications the paper calls out, under engaged TS.
    for (name, lo, hi) in [
        ("BitonicSort", 1.30, 1.50),
        ("FastWalshTransform", 1.22, 1.42),
        ("FloydWarshall", 1.32, 1.52),
    ] {
        let s = get(name).slowdown(SchedulerKind::Timeslice).unwrap();
        assert!(
            (lo..hi).contains(&s),
            "{name} engaged-ts slowdown {s:.2} outside [{lo},{hi}]"
        );
    }
    // Large-request apps barely notice the engaged scheduler.
    let mm = get("MatrixMulDouble")
        .slowdown(SchedulerKind::Timeslice)
        .unwrap();
    assert!(mm < 1.08, "MatrixMulDouble engaged-ts {mm:.2}");

    // Disengaged TS ≤ ~4%, DFQ ≤ ~9% for every application.
    for row in &rows {
        let dts = row.slowdown(SchedulerKind::DisengagedTimeslice).unwrap();
        let dfq = row.slowdown(SchedulerKind::DisengagedFairQueueing).unwrap();
        assert!(dts < 1.05, "{}: disengaged-ts {dts:.3}", row.name);
        assert!(dfq < 1.10, "{}: disengaged-fq {dfq:.3}", row.name);
    }
}

#[test]
fn fig5_overhead_decays_with_request_size() {
    let rows = fig5::run(&fig5::Config {
        horizon: SimDuration::from_millis(400),
        sizes: vec![
            SimDuration::from_micros(19),
            SimDuration::from_micros(430),
            SimDuration::from_micros(1700),
        ],
        ..fig5::Config::default()
    });
    let engaged: Vec<f64> = rows
        .iter()
        .map(|r| r.slowdown(SchedulerKind::Timeslice).unwrap())
        .collect();
    assert!(engaged[0] > 1.4, "19us engaged {:.2}", engaged[0]);
    assert!(engaged[0] > engaged[1] && engaged[1] > engaged[2]);
    assert!(engaged[2] < 1.05);
    for r in &rows {
        assert!(r.slowdown(SchedulerKind::DisengagedTimeslice).unwrap() < 1.06);
        assert!(r.slowdown(SchedulerKind::DisengagedFairQueueing).unwrap() < 1.10);
    }
}

#[test]
fn fig6_direct_access_starves_small_request_apps_fair_schedulers_do_not() {
    let cfg = fig6::Config {
        horizon: SimDuration::from_millis(900),
        throttle_sizes: vec![SimDuration::from_micros(1700)],
        apps: vec![fig6::AppFamily::Dct],
        schedulers: SchedulerKind::PAPER.to_vec(),
        ..fig6::Config::default()
    };
    let rows = fig6::run(&cfg);
    let cell = |kind: SchedulerKind| rows.iter().find(|r| r.scheduler == kind).unwrap();

    // Direct: DCT starved >10x (the paper's headline unfairness).
    assert!(cell(SchedulerKind::Direct).app_slowdown > 10.0);
    assert!(cell(SchedulerKind::Direct).throttle_slowdown < 1.3);

    // Every fair scheduler keeps both co-runners near 2x.
    for kind in [
        SchedulerKind::Timeslice,
        SchedulerKind::DisengagedTimeslice,
        SchedulerKind::DisengagedFairQueueing,
    ] {
        let r = cell(kind);
        assert!(
            (1.6..3.0).contains(&r.app_slowdown),
            "{}: app {:.2}",
            kind.label(),
            r.app_slowdown
        );
        assert!(
            (1.6..3.0).contains(&r.throttle_slowdown),
            "{}: throttle {:.2}",
            kind.label(),
            r.throttle_slowdown
        );
    }
}

#[test]
fn fig6_glxgears_anomaly_under_dfq() {
    // The paper's §5.3 anomaly: against a small-request Throttle,
    // glxgears suffers more than its co-runner under DFQ (the
    // round-robin estimate overcharges the graphics channel), while
    // Disengaged Timeslice — one task at a time — stays even.
    let cfg = fig6::Config {
        horizon: SimDuration::from_millis(1500),
        throttle_sizes: vec![SimDuration::from_micros(19)],
        apps: vec![fig6::AppFamily::Glxgears],
        schedulers: vec![
            SchedulerKind::DisengagedTimeslice,
            SchedulerKind::DisengagedFairQueueing,
        ],
        ..fig6::Config::default()
    };
    let rows = fig6::run(&cfg);
    let dts = &rows[0];
    let dfq = &rows[1];
    assert!(
        (dts.app_slowdown - dts.throttle_slowdown).abs() < 0.4,
        "disengaged-ts should be even: {:.2} vs {:.2}",
        dts.app_slowdown,
        dts.throttle_slowdown
    );
    assert!(
        dfq.app_slowdown > dfq.throttle_slowdown,
        "anomaly missing: gears {:.2} vs throttle {:.2}",
        dfq.app_slowdown,
        dfq.throttle_slowdown
    );
}

#[test]
fn fig8_four_way_sharing_lands_near_4x_to_5x() {
    let cfg = fig8::Config {
        horizon: SimDuration::from_millis(1500),
        schedulers: vec![
            SchedulerKind::DisengagedTimeslice,
            SchedulerKind::DisengagedFairQueueing,
        ],
        ..fig8::Config::default()
    };
    for row in fig8::run(&cfg) {
        for (name, s) in &row.slowdowns {
            assert!(
                (2.0..7.5).contains(s),
                "{} {name}: {s:.2}x",
                row.scheduler.label()
            );
        }
        assert!(
            row.efficiency > 0.75,
            "{}: eff {:.2}",
            row.scheduler.label(),
            row.efficiency
        );
    }
}

#[test]
fn fig9_fig10_dfq_is_nearly_work_conserving() {
    let cfg = fig9::Config {
        horizon: SimDuration::from_millis(1000),
        off_ratios: vec![0.8],
        schedulers: SchedulerKind::PAPER.to_vec(),
        ..fig9::Config::default()
    };
    let rows = fig9::run(&cfg);
    let eff = fig10::from_fig9(&rows);
    let loss = |kind: SchedulerKind| {
        eff.iter()
            .find(|r| r.scheduler == kind)
            .and_then(|r| r.loss_vs_direct)
            .unwrap()
    };
    let ts = loss(SchedulerKind::Timeslice);
    let dts = loss(SchedulerKind::DisengagedTimeslice);
    let dfq = loss(SchedulerKind::DisengagedFairQueueing);
    // Paper (80% off): 36%, 34%, ~0%. Shape: timeslice schedulers lose
    // heavily, DFQ little.
    assert!(ts > 0.30, "timeslice loss {ts:.2}");
    assert!(dts > 0.30, "disengaged-ts loss {dts:.2}");
    assert!(dfq < 0.18, "dfq loss {dfq:.2}");
    assert!(dfq < ts / 2.0 && dfq < dts / 2.0);
}

#[test]
fn sec63_policy_contains_the_channel_hog() {
    let outcomes = sec63::run(&sec63::Config::default());
    assert!(!outcomes[0].victim_admitted, "unprotected device must DoS");
    assert!(
        outcomes[1].victim_admitted,
        "policy must protect the victim"
    );
    assert!(outcomes[1].attacker_channels < outcomes[0].attacker_channels / 4);
}
