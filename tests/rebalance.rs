//! Rebalancing-subsystem integration tests.
//!
//! Four batteries, matching the cost-aware-rebalancing acceptance
//! criteria:
//!
//! 1. **Golden equivalence** — `RebalanceKind::CountDiff` on a flat
//!    free-interconnect world reproduces the pre-subsystem
//!    `rebalance = true` heuristic **byte for byte**: the trace hashes
//!    below were captured by running this exact scenario on the last
//!    commit before the `Rebalance` trait existed.
//! 2. **Migration stability** — under an alternating departure storm
//!    on a cross-NUMA topology, the charge-blind baseline shuttles
//!    tasks back and forth while `CostAware` bounds per-task
//!    migrations (cooldown + gain veto), and never migrates at all
//!    when the transfer cost exceeds the estimated gain.
//! 3. **Same-device guard** — a buggy policy returning the source
//!    device must not tear down and re-create the task's state.
//! 4. **Tenant counters** — the per-device live-tenant counters match
//!    a scan of the task table through churn, migrations and kills.

use disengaged_scheduling::core::cost::SchedParams;
use disengaged_scheduling::core::placement::{DeviceLoad, PlacementKind};
use disengaged_scheduling::core::rebalance::{
    Migration, MigrationCandidate, Rebalance, RebalanceKind,
};
use disengaged_scheduling::core::world::{World, WorldConfig};
use disengaged_scheduling::core::SchedulerKind;
use disengaged_scheduling::gpu::{DeviceSlotSpec, GpuConfig, InterconnectParams, Topology};
use disengaged_scheduling::workloads::Throttle;
use neon_core::workload::{FixedLoop, WithWorkingSet};
use neon_gpu::TaskId;
use neon_sim::{SimDuration, SimTime};

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}
fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The rebalance-heavy churn used for the legacy capture: four
/// residents spread over two devices, two early departures that leave
/// an imbalance, a pair of transient visitors, and a latecomer.
fn legacy_world(kind: SchedulerKind, placement: PlacementKind) -> World {
    let config = WorldConfig {
        devices: vec![GpuConfig::default(); 2],
        rebalance: RebalanceKind::CountDiff,
        seed: 0xCAFE,
        ..WorldConfig::default()
    };
    let mut world = World::with_devices(config, placement.build(), |_| {
        kind.build(SchedParams::default())
    });
    world.trace.set_enabled(true);
    for _ in 0..4 {
        world.add_task(Box::new(Throttle::new(us(150)))).unwrap();
    }
    world.depart_task_at(SimTime::ZERO + ms(5), TaskId::new(1));
    world.depart_task_at(SimTime::ZERO + ms(8), TaskId::new(3));
    world.spawn_task_for(
        SimTime::ZERO + ms(12),
        Box::new(Throttle::new(us(600))),
        ms(20),
    );
    world.spawn_task_for(
        SimTime::ZERO + ms(20),
        Box::new(Throttle::new(us(300))),
        ms(25),
    );
    world.spawn_task_at(SimTime::ZERO + ms(55), Box::new(Throttle::new(us(150))));
    world
}

/// The acceptance criterion: `CountDiff` on a flat free-interconnect
/// world is byte-identical — trace text included — to the retired
/// `rebalance = true` code path. Expected values captured on the
/// pre-subsystem commit.
#[test]
fn count_diff_reproduces_the_legacy_rebalance_path_exactly() {
    struct Golden {
        kind: SchedulerKind,
        placement: PlacementKind,
        trace_hash: u64,
        trace_len: usize,
        busy_ns: u64,
        migrations: u64,
    }
    let goldens = [
        Golden {
            kind: SchedulerKind::Direct,
            placement: PlacementKind::RoundRobin,
            trace_hash: 0x380c_0206_6fe0_caaa,
            trace_len: 8,
            busy_ns: 159_560_111,
            migrations: 1,
        },
        Golden {
            kind: SchedulerKind::Direct,
            placement: PlacementKind::LeastLoaded,
            trace_hash: 0xce40_2b51_43bb_0ad3,
            trace_len: 8,
            busy_ns: 159_580_982,
            migrations: 1,
        },
        Golden {
            kind: SchedulerKind::DisengagedFairQueueing,
            placement: PlacementKind::RoundRobin,
            trace_hash: 0x0339_ea3f_0d09_dca1,
            trace_len: 180,
            busy_ns: 157_720_056,
            migrations: 1,
        },
        Golden {
            kind: SchedulerKind::DisengagedFairQueueing,
            placement: PlacementKind::LeastLoaded,
            trace_hash: 0xfbcb_8edf_1d99_043d,
            trace_len: 144,
            busy_ns: 158_154_598,
            migrations: 1,
        },
    ];
    for g in goldens {
        let mut world = legacy_world(g.kind, g.placement);
        let report = world.run(ms(80));
        assert_eq!(
            report.compute_busy.as_nanos(),
            g.busy_ns,
            "{} {}",
            g.kind,
            g.placement
        );
        assert_eq!(
            report.migrations, g.migrations,
            "{} {}",
            g.kind, g.placement
        );
        let mut log = String::new();
        for e in world.trace.iter() {
            log.push_str(&format!("{e}\n"));
        }
        assert_eq!(world.trace.len(), g.trace_len, "{} {}", g.kind, g.placement);
        assert_eq!(
            fnv1a(log.as_bytes()),
            g.trace_hash,
            "{} {}: trace text drifted from the pre-subsystem capture",
            g.kind,
            g.placement
        );
    }
}

/// Two full-size devices a NUMA hop apart, PCIe-gen3 pricing.
fn cross_numa_pair() -> Topology {
    Topology::new(
        vec![
            DeviceSlotSpec {
                config: GpuConfig::default(),
                numa: 0,
                switch_id: 0,
            },
            DeviceSlotSpec {
                config: GpuConfig::default(),
                numa: 1,
                switch_id: 1,
            },
        ],
        InterconnectParams::pcie_gen3(),
    )
}

/// The departure storm: two unpinned residents per device, then waves
/// of short-lived visitors pinned alternately to each device. Every
/// visitor departure re-checks the populations with the imbalance
/// flipping sides, so a charge-blind policy shuttles the residents
/// across the NUMA link again and again.
fn departure_storm(
    rebalance: RebalanceKind,
    working_set: u64,
) -> disengaged_scheduling::core::RunReport {
    let config = WorldConfig {
        topology: Some(cross_numa_pair()),
        rebalance,
        seed: 0x57_02,
        ..WorldConfig::default()
    };
    let mut world = World::with_devices(config, PlacementKind::RoundRobin.build(), |_| {
        SchedulerKind::Direct.build(SchedParams::default())
    });
    for i in 0..4 {
        world
            .add_task(Box::new(WithWorkingSet::new(
                Box::new(FixedLoop::endless(format!("r{i}"), us(60), us(5))),
                working_set,
            )))
            .unwrap();
    }
    for wave in 0..6u64 {
        let device = neon_gpu::DeviceId::new((wave % 2) as u32);
        for slot in 0..3u64 {
            world.spawn_task_for_on(
                SimTime::ZERO + ms(5 + 15 * wave) + us(200 * slot),
                Box::new(WithWorkingSet::new(
                    Box::new(FixedLoop::endless(
                        format!("v{wave}-{slot}"),
                        us(40),
                        us(20),
                    )),
                    1 << 20,
                )),
                ms(8),
                device,
            );
        }
    }
    world.run(ms(110))
}

/// The migration-stability criterion: under the alternating storm the
/// baseline ping-pongs (some task moves again and again) while the
/// cost-aware policy bounds per-task migrations and total wire time.
#[test]
fn cost_aware_bounds_migrations_under_a_departure_storm() {
    let ws = 64 << 20;
    let baseline = departure_storm(RebalanceKind::CountDiff, ws);
    let aware = departure_storm(RebalanceKind::CostAware, ws);

    let max_moves = |r: &disengaged_scheduling::core::RunReport| {
        r.tasks.iter().map(|t| t.migrations).max().unwrap_or(0)
    };
    assert!(
        baseline.migrations >= 8 && max_moves(&baseline) >= 6,
        "the storm must actually ping-pong under the baseline \
         (total {}, worst task {})",
        baseline.migrations,
        max_moves(&baseline)
    );
    assert!(
        max_moves(&aware) <= 3 && max_moves(&aware) * 2 <= max_moves(&baseline),
        "cost-aware must bound per-task migrations: worst task moved {} \
         times vs the baseline's {}",
        max_moves(&aware),
        max_moves(&baseline)
    );
    assert!(
        aware.migrations <= baseline.migrations,
        "cost-aware migrated more ({}) than the baseline ({})",
        aware.migrations,
        baseline.migrations
    );
    assert!(
        aware.transfer_stall <= baseline.transfer_stall,
        "cost-aware moved more bytes ({}) than the baseline ({})",
        aware.transfer_stall,
        baseline.transfer_stall
    );
    // Residents keep making progress either way.
    for t in &aware.tasks[..4] {
        assert!(t.rounds_completed() > 100, "{} starved", t.name);
    }
}

/// `CostAware` never migrates when the transfer cost exceeds the
/// estimated gain: with working sets so large the cross-NUMA transfer
/// dwarfs any observable queueing delta, the same storm that drives
/// the baseline to migrate produces exactly zero cost-aware moves.
#[test]
fn cost_aware_never_migrates_when_cost_exceeds_gain() {
    let ws = 8u64 << 30; // ~1.4 s across the NUMA hop
    let baseline = departure_storm(RebalanceKind::CountDiff, ws);
    let aware = departure_storm(RebalanceKind::CostAware, ws);
    assert!(
        baseline.migrations >= 1,
        "the charge-blind baseline must still move tasks"
    );
    assert_eq!(
        aware.migrations, 0,
        "no observable gain can amortize a 1.4 s transfer"
    );
    assert_eq!(
        aware.tasks.iter().map(|t| t.migrations).sum::<u32>(),
        0,
        "per-task counters must agree"
    );
}

/// A buggy policy that always "migrates" the first candidate to the
/// device it already lives on.
struct SameDevice;

impl Rebalance for SameDevice {
    fn name(&self) -> &'static str {
        "same-device"
    }

    fn plan(
        &mut self,
        _now: SimTime,
        _topology: &Topology,
        _loads: &[DeviceLoad],
        candidates: &[MigrationCandidate],
    ) -> Option<Migration> {
        candidates.first().map(|c| Migration {
            task: c.task,
            to: c.from,
        })
    }
}

/// The same-device guard: a policy naming the source device as the
/// target must be refused outright — no teardown, no re-admission, no
/// migration charged — and the run keeps going.
#[test]
fn migration_to_the_same_device_is_refused_not_replayed() {
    let config = WorldConfig {
        devices: vec![GpuConfig::default(); 2],
        seed: 0xD0_0D,
        ..WorldConfig::default()
    };
    let mut world = World::with_devices(config, PlacementKind::RoundRobin.build(), |_| {
        SchedulerKind::Direct.build(SchedParams::default())
    });
    world.set_rebalance_policy(Box::new(SameDevice));
    world.trace.set_enabled(true);
    for i in 0..2 {
        world
            .add_task(Box::new(FixedLoop::endless(format!("t{i}"), us(80), us(5))))
            .unwrap();
    }
    // Three departures, each consulting the buggy policy.
    for i in 0..3u64 {
        world.spawn_task_for(
            SimTime::ZERO + ms(2 + 4 * i),
            Box::new(FixedLoop::endless(format!("v{i}"), us(80), us(5))),
            ms(2),
        );
    }
    let report = world.run(ms(40));
    assert_eq!(report.migrations, 0, "a same-device move is not a move");
    assert_eq!(report.tasks.iter().map(|t| t.migrations).sum::<u32>(), 0);
    let noop_lines = world
        .trace
        .iter()
        .filter(|e| format!("{e}").contains("migrate-noop"))
        .count();
    assert_eq!(noop_lines, 3, "each refusal is traced, nothing torn down");
    // The victim task never lost queued work to a teardown: it kept
    // completing rounds at full rate throughout.
    assert!(
        report.tasks[0].rounds_completed() > 200,
        "task lost progress to a same-device replay: {} rounds",
        report.tasks[0].rounds_completed()
    );
}

/// A policy that cycles through every kind of unsound plan: a dead
/// task, an out-of-range target device, and a full target.
struct Unsound {
    calls: u32,
}

impl Rebalance for Unsound {
    fn name(&self) -> &'static str {
        "unsound"
    }

    fn plan(
        &mut self,
        _now: SimTime,
        _topology: &Topology,
        _loads: &[DeviceLoad],
        candidates: &[MigrationCandidate],
    ) -> Option<Migration> {
        self.calls += 1;
        match self.calls % 3 {
            0 => Some(Migration {
                // Task ids are dense; this run admits far fewer.
                task: TaskId::new(1_000),
                to: neon_gpu::DeviceId::new(1),
            }),
            1 => candidates.first().map(|c| Migration {
                task: c.task,
                to: neon_gpu::DeviceId::new(99),
            }),
            _ => candidates.first().map(|c| Migration {
                task: c.task,
                // Device 1 has a single context, already occupied.
                to: neon_gpu::DeviceId::new(1),
            }),
        }
    }
}

/// An arbitrary policy installed through `set_rebalance_policy` may
/// return plans the built-in kinds never produce: unknown tasks,
/// out-of-range devices, targets with no room. Each must be refused
/// with a traced no-op — never a panic or a teardown.
#[test]
fn unsound_migration_plans_are_refused_not_executed() {
    let config = WorldConfig {
        devices: vec![
            GpuConfig::default(),
            GpuConfig {
                total_contexts: 1,
                ..GpuConfig::default()
            },
        ],
        seed: 0xBAD0,
        ..WorldConfig::default()
    };
    let mut world = World::with_devices(config, PlacementKind::RoundRobin.build(), |_| {
        SchedulerKind::Direct.build(SchedParams::default())
    });
    world.set_rebalance_policy(Box::new(Unsound { calls: 0 }));
    world.trace.set_enabled(true);
    for i in 0..2 {
        world
            .add_task(Box::new(FixedLoop::endless(format!("t{i}"), us(80), us(5))))
            .unwrap();
    }
    for i in 0..3u64 {
        world.spawn_task_for(
            SimTime::ZERO + ms(2 + 4 * i),
            Box::new(FixedLoop::endless(format!("v{i}"), us(80), us(5))),
            ms(2),
        );
    }
    let report = world.run(ms(40));
    assert_eq!(report.migrations, 0, "no unsound plan may execute");
    let refusals = world
        .trace
        .iter()
        .filter(|e| format!("{e}").contains("migrate-refused"))
        .count();
    assert_eq!(refusals, 3, "every unsound plan is traced as refused");
    for t in &report.tasks[..2] {
        assert!(t.rounds_completed() > 200, "{} lost progress", t.name);
    }
}

/// The live-tenant counters behind `DeviceLoad::tenants` and
/// `DeviceReport::tenants` stay consistent with a scan of the task
/// table through churn, migrations, and scheduler kills. (The world
/// also `debug_assert`s counter == scan on every load snapshot, so
/// any in-run drift would abort these debug-build tests.)
#[test]
fn live_tenant_counters_match_the_task_table_scan() {
    // Churn + migrations (count-diff keeps both devices busy moving).
    let config = WorldConfig {
        devices: vec![GpuConfig::default(); 3],
        rebalance: RebalanceKind::CountDiff,
        seed: 0x7E_AA,
        ..WorldConfig::default()
    };
    let mut world = World::with_devices(config, PlacementKind::RoundRobin.build(), |_| {
        SchedulerKind::DisengagedFairQueueing.build(SchedParams::default())
    });
    for i in 0..5 {
        world
            .add_task(Box::new(Throttle::new(us(100 + 50 * i))))
            .unwrap();
    }
    for i in 0..6u64 {
        world.spawn_task_for(
            SimTime::ZERO + ms(3 * (i + 1)),
            Box::new(Throttle::new(us(400))),
            ms(7),
        );
    }
    let report = world.run(ms(60));
    for d in &report.devices {
        let scanned = report
            .tasks
            .iter()
            .filter(|t| t.finished_at.is_none() && t.device == d.device)
            .count();
        assert_eq!(
            d.tenants, scanned,
            "{}: counter diverged from the task table",
            d.device
        );
    }

    // Kills decrement too: an infinite-loop adversary under engaged
    // Timeslice gets killed, and the counters still reconcile.
    let params = SchedParams {
        overlong_limit: ms(5),
        ..SchedParams::default()
    };
    let config = WorldConfig {
        devices: vec![GpuConfig::default(); 2],
        params: params.clone(),
        seed: 0x7E_AB,
        ..WorldConfig::default()
    };
    let mut world = World::with_devices(config, PlacementKind::RoundRobin.build(), move |_| {
        SchedulerKind::Timeslice.build(params.clone())
    });
    world.add_task(Box::new(Throttle::new(us(150)))).unwrap();
    world
        .add_task(Box::new(
            disengaged_scheduling::workloads::adversary::InfiniteLoop::new(3, us(100)),
        ))
        .unwrap();
    let report = world.run(ms(120));
    assert_eq!(
        report.tasks.iter().filter(|t| t.killed).count(),
        1,
        "the adversary must be killed for this battery to mean anything"
    );
    for d in &report.devices {
        let scanned = report
            .tasks
            .iter()
            .filter(|t| t.finished_at.is_none() && t.device == d.device)
            .count();
        assert_eq!(
            d.tenants, scanned,
            "{}: kill path missed the counter",
            d.device
        );
    }
}
