//! Topology-layer integration tests.
//!
//! Three batteries, matching the heterogeneous-topology acceptance
//! criteria:
//!
//! 1. **Golden equivalence** — a world built from an explicit
//!    *symmetric* [`Topology`] (identical devices, free interconnect)
//!    must be byte-identical — trace hashes included — to one built
//!    from the flat pre-topology `WorldConfig::devices` path, whose
//!    own behavior is pinned bit-for-bit to the PR 2 captures by
//!    `tests/multi_device.rs`.
//! 2. **Placement properties** — `locality-first` and `cost-min` never
//!    reject an arrival while any device fits it (randomized
//!    capacities, coordinates and working sets), and migration charges
//!    are monotone in both link distance and working-set size.
//! 3. **Heterogeneous churn** — every scheduler survives
//!    arrival/departure churn on a heterogeneous cost-bearing
//!    topology under the topology-aware policies, deterministically.

use disengaged_scheduling::core::cost::SchedParams;
use disengaged_scheduling::core::placement::PlacementKind;
use disengaged_scheduling::core::rebalance::RebalanceKind;
use disengaged_scheduling::core::workload::WithWorkingSet;
use disengaged_scheduling::core::world::{World, WorldConfig};
use disengaged_scheduling::core::SchedulerKind;
use disengaged_scheduling::gpu::{
    DeviceSlotSpec, GpuConfig, InterconnectParams, LinkTier, Topology,
};
use disengaged_scheduling::workloads::Throttle;
use neon_core::workload::FixedLoop;
use neon_gpu::TaskId;
use neon_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}
fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The churny scenario of `tests/multi_device.rs`, staged on a world
/// built by `make_config`.
fn run_churny(
    config: WorldConfig,
    kind: SchedulerKind,
    placement: PlacementKind,
) -> (u64, SimDuration, Vec<Vec<SimDuration>>, Vec<u32>) {
    let mut world = World::with_devices(config, placement.build(), |_| {
        kind.build(SchedParams::default())
    });
    world.trace.set_enabled(true);
    for _ in 0..4 {
        world.add_task(Box::new(Throttle::new(us(150)))).unwrap();
    }
    world.spawn_task_for(
        SimTime::ZERO + ms(10),
        Box::new(Throttle::new(us(900))),
        ms(30),
    );
    world.spawn_task_for(
        SimTime::ZERO + ms(15),
        Box::new(Throttle::new(us(400))),
        ms(40),
    );
    world.spawn_task_at(SimTime::ZERO + ms(60), Box::new(Throttle::new(us(150))));
    let report = world.run(ms(100));
    let mut log = String::new();
    for e in world.trace.iter() {
        log.push_str(&format!("{e}\n"));
    }
    (
        fnv1a(log.as_bytes()),
        report.compute_busy,
        report.tasks.iter().map(|t| t.rounds.clone()).collect(),
        report.tasks.iter().map(|t| t.device.raw()).collect(),
    )
}

/// The acceptance criterion: an explicit symmetric topology (identical
/// devices, free interconnect) reproduces the flat
/// `WorldConfig::devices` path — itself pinned bit-for-bit to the PR 2
/// captures by `tests/multi_device.rs` — exactly, trace text included,
/// for every device count, placement policy, and a
/// protection-exercising scheduler.
#[test]
fn symmetric_topology_worlds_match_the_flat_path_byte_for_byte() {
    for devices in [1usize, 2, 4] {
        for placement in PlacementKind::ALL {
            for kind in [SchedulerKind::Direct, SchedulerKind::DisengagedFairQueueing] {
                let flat = WorldConfig {
                    devices: vec![GpuConfig::default(); devices],
                    seed: 0xD15C,
                    rebalance: RebalanceKind::CountDiff,
                    ..WorldConfig::default()
                };
                let topo = WorldConfig {
                    topology: Some(Topology::symmetric(devices, GpuConfig::default())),
                    seed: 0xD15C,
                    rebalance: RebalanceKind::CountDiff,
                    ..WorldConfig::default()
                };
                assert_eq!(
                    run_churny(flat, kind, placement),
                    run_churny(topo, kind, placement),
                    "{devices} devices, {placement}, {kind}: symmetric topology \
                     diverged from the flat path"
                );
            }
        }
    }
}

/// A topology whose transfer costs are *nonzero* must still leave the
/// no-migration, single-device world untouched except for admission
/// staging — and staging must show up in the report.
#[test]
fn staging_is_charged_once_per_admission_and_reported() {
    let topology = Topology::new(
        vec![DeviceSlotSpec {
            config: GpuConfig::default(),
            numa: 1,
            switch_id: 3,
        }],
        InterconnectParams::pcie_gen3(),
    );
    let expected = topology.staging_cost(0, 64 << 20);
    assert!(expected > SimDuration::ZERO);
    let config = WorldConfig {
        topology: Some(topology),
        ..WorldConfig::default()
    };
    let mut world = World::new(config, SchedulerKind::Direct.build(SchedParams::default()));
    world.add_task(Box::new(Throttle::new(us(200)))).unwrap();
    world.spawn_task_at(SimTime::ZERO + ms(5), Box::new(Throttle::new(us(200))));
    let report = world.run(ms(30));
    assert_eq!(report.tasks[0].transfer_stall, expected);
    assert_eq!(report.tasks[1].transfer_stall, expected);
    assert_eq!(report.transfer_stall, expected * 2);
    // The staged tasks still run: presence minus staging is productive.
    for t in &report.tasks {
        assert!(t.rounds_completed() > 0, "{} never ran", t.name);
    }
}

/// Builds a two-device topology whose devices sit `tier` apart while
/// both stay cross-NUMA from the host (so admission staging is
/// constant across tiers and only the migration leg varies).
fn two_device_topology(tier: LinkTier) -> Topology {
    let (numa, switches) = match tier {
        LinkTier::SameSwitch => ((1, 1), (5, 5)),
        LinkTier::CrossPcie => ((1, 1), (5, 6)),
        LinkTier::CrossNuma => ((1, 2), (5, 6)),
        LinkTier::Local => panic!("two devices cannot be local"),
    };
    Topology::new(
        vec![
            DeviceSlotSpec {
                config: GpuConfig::default(),
                numa: numa.0,
                switch_id: switches.0,
            },
            DeviceSlotSpec {
                config: GpuConfig::default(),
                numa: numa.1,
                switch_id: switches.1,
            },
        ],
        InterconnectParams::pcie_gen3(),
    )
}

/// Runs the deterministic one-migration scenario (round-robin spread,
/// then both of device 1's tenants depart) and returns the migrated
/// task's transfer stall beyond its staging share.
fn migration_stall_at(tier: LinkTier, working_set: u64) -> SimDuration {
    let topology = two_device_topology(tier);
    let staging = topology.staging_cost(0, working_set);
    let config = WorldConfig {
        topology: Some(topology),
        rebalance: RebalanceKind::CountDiff,
        ..WorldConfig::default()
    };
    let mut world = World::with_devices(config, PlacementKind::RoundRobin.build(), |_| {
        SchedulerKind::Direct.build(SchedParams::default())
    });
    for i in 0..4 {
        world
            .add_task(Box::new(WithWorkingSet::new(
                Box::new(FixedLoop::endless(format!("t{i}"), us(60), us(5))),
                working_set,
            )))
            .unwrap();
    }
    world.depart_task_at(SimTime::ZERO + ms(5), TaskId::new(1));
    world.depart_task_at(SimTime::ZERO + ms(6), TaskId::new(3));
    let report = world.run(ms(40));
    assert_eq!(
        report.migrations, 1,
        "{tier}: exactly one migration expected"
    );
    let migrated = report.tasks.iter().find(|t| t.migrations > 0).unwrap();
    assert_eq!(
        report.devices[1].migrations_in, 1,
        "{tier}: the migration must land on the drained device"
    );
    migrated.transfer_stall.saturating_sub(staging)
}

#[test]
fn migration_charges_are_monotone_in_link_distance() {
    let ws = 64u64 << 20;
    let same = migration_stall_at(LinkTier::SameSwitch, ws);
    let pcie = migration_stall_at(LinkTier::CrossPcie, ws);
    let numa = migration_stall_at(LinkTier::CrossNuma, ws);
    assert!(
        same < pcie && pcie < numa,
        "migration stall must grow with link distance: {same} / {pcie} / {numa}"
    );
    // And with the working set, at a fixed tier.
    let small = migration_stall_at(LinkTier::CrossPcie, 1 << 20);
    assert!(
        small < pcie,
        "1 MiB must move faster than 64 MiB: {small} vs {pcie}"
    );
}

/// Every scheduler survives churn on a heterogeneous, cost-bearing
/// topology under both topology-aware placement policies, and the
/// whole dance is deterministic.
#[test]
fn heterogeneous_churn_runs_every_scheduler_deterministically() {
    let hetero = || {
        Topology::new(
            vec![
                DeviceSlotSpec {
                    config: GpuConfig::default(),
                    numa: 0,
                    switch_id: 0,
                },
                DeviceSlotSpec {
                    config: GpuConfig {
                        total_channels: 48,
                        total_contexts: 24,
                        ..GpuConfig::default()
                    },
                    numa: 1,
                    switch_id: 1,
                },
            ],
            InterconnectParams::pcie_gen3(),
        )
    };
    for kind in SchedulerKind::ALL {
        for placement in [PlacementKind::LocalityFirst, PlacementKind::CostMin] {
            let run = || {
                let config = WorldConfig {
                    topology: Some(hetero()),
                    rebalance: RebalanceKind::CountDiff,
                    seed: 0xBEEF,
                    ..WorldConfig::default()
                };
                let mut world = World::with_devices(config, placement.build(), |_| {
                    kind.build(SchedParams::default())
                });
                for _ in 0..3 {
                    world.add_task(Box::new(Throttle::new(us(150)))).unwrap();
                }
                for wave in 0..3u64 {
                    world.spawn_task_for(
                        SimTime::ZERO + ms(10 + 25 * wave),
                        Box::new(WithWorkingSet::new(
                            Box::new(Throttle::new(us(700))),
                            8 << 20,
                        )),
                        ms(20),
                    );
                }
                let report = world.run(ms(150));
                (
                    report.compute_busy,
                    report
                        .tasks
                        .iter()
                        .map(|t| (t.rounds.len(), t.device.raw()))
                        .collect::<Vec<_>>(),
                )
            };
            let (busy, tasks) = run();
            assert!(
                tasks.iter().filter(|(rounds, _)| *rounds > 0).count() >= 3,
                "{kind}/{placement}: residents starved: {tasks:?}"
            );
            assert!(busy > SimDuration::ZERO, "{kind}/{placement}: idle run");
            assert_eq!((busy, tasks), run(), "{kind}/{placement}: nondeterministic");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// The issue's placement property for the topology-aware policies:
    /// neither `cost-min` nor `locality-first` ever rejects an arrival
    /// while any device still fits it, whatever the capacities,
    /// coordinates, or working-set sizes.
    #[test]
    fn topology_aware_policies_never_waste_capacity(
        caps in proptest::collection::vec(1usize..4, 2..5),
        numas in proptest::collection::vec(0u32..3, 4..5),
        switches in proptest::collection::vec(0u32..3, 4..5),
        arrivals in 1usize..12,
        ws_mb in 1u64..256,
        cost_min in 0usize..2,
        seed in 0u64..500,
    ) {
        let total: usize = caps.iter().sum();
        let slots: Vec<DeviceSlotSpec> = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let numa = numas[i % numas.len()];
                let sw = switches[i % switches.len()];
                DeviceSlotSpec {
                    config: GpuConfig {
                        total_contexts: c,
                        total_channels: c,
                        ..GpuConfig::default()
                    },
                    numa,
                    // Keep switch ids NUMA-local so the layout is
                    // physically possible.
                    switch_id: numa * 10 + sw,
                }
            })
            .collect();
        let config = WorldConfig {
            topology: Some(Topology::new(slots, InterconnectParams::pcie_gen3())),
            seed,
            ..WorldConfig::default()
        };
        let placement = if cost_min == 1 {
            PlacementKind::CostMin
        } else {
            PlacementKind::LocalityFirst
        };
        let mut world = World::with_devices(
            config,
            placement.build(),
            |_| SchedulerKind::Direct.build(SchedParams::default()),
        );
        // Tasks never depart, so occupancy is monotone: exactly the
        // first `total` arrivals must be admitted, the rest rejected.
        for i in 0..arrivals {
            world.spawn_task_at(
                SimTime::ZERO + SimDuration::from_micros(100 * (i as u64 + 1)),
                Box::new(WithWorkingSet::new(
                    Box::new(Throttle::new(us(120))),
                    ws_mb << 20,
                )),
            );
        }
        let report = world.run(ms(30));
        let expected_admitted = arrivals.min(total);
        prop_assert_eq!(
            report.tasks.len(),
            expected_admitted,
            "{} admitted {} of {} arrivals with total capacity {}",
            placement, report.tasks.len(), arrivals, total
        );
        prop_assert_eq!(
            report.rejected_admissions,
            (arrivals - expected_admitted) as u64
        );
        // If anything was rejected, every device must be full.
        if arrivals >= total {
            for (d, &cap) in report.devices.iter().zip(&caps) {
                prop_assert_eq!(d.tenants, cap, "device {} not full", d.device);
            }
        }
    }
}
