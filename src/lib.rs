//! # disengaged-scheduling
//!
//! A reproduction of *"Disengaged Scheduling for Fair, Protected Access
//! to Fast Computational Accelerators"* (Menychtas, Shen, Scott —
//! ASPLOS 2014) as a Rust workspace.
//!
//! The paper's artifact (NEON) is a Linux kernel module that schedules
//! real Nvidia GPUs by intercepting their direct-mapped, user-space
//! submission interface. This reproduction replaces the hardware and
//! kernel substrate with a deterministic discrete-event simulation and
//! rebuilds the full system on top of it:
//!
//! - [`gpu`] — the accelerator device model (channels, ring buffers,
//!   reference counters, weighted round-robin arbitration, DMA engine).
//! - [`core`] — the kernel interposition layer and the schedulers:
//!   (engaged) Timeslice with overuse control, Disengaged Timeslice,
//!   Disengaged Fair Queueing, plus engaged SFQ and DRR baselines.
//! - [`workloads`] — generative models of the paper's Table 1
//!   benchmarks plus the Throttle microbenchmark and adversaries.
//! - [`metrics`] — slowdown, concurrency efficiency, CDFs.
//! - [`experiments`] — one harness per table/figure of the evaluation.
//! - [`scenario`] — the dynamic-churn scenario engine: declarative
//!   specs (builder or TOML), mid-run task arrivals and departures
//!   driven through [`core::World`]'s dynamic admission, and a
//!   multi-threaded sweep runner over scenario × scheduler × seed
//!   matrices (the `neon` CLI binary).
//! - [`sim`] — the discrete-event engine underneath it all.
//!
//! # Quickstart
//!
//! ```no_run
//! use disengaged_scheduling::experiments::pairwise::{self, PairwiseConfig};
//! use disengaged_scheduling::core::SchedulerKind;
//! use disengaged_scheduling::workloads::{app, throttle};
//! use neon_sim::SimDuration;
//!
//! // DCT vs a large-request Throttle under Disengaged Fair Queueing.
//! let result = pairwise::run(&PairwiseConfig {
//!     scheduler: SchedulerKind::DisengagedFairQueueing,
//!     workloads: vec![
//!         Box::new(app::dct()),
//!         Box::new(throttle::saturating(SimDuration::from_micros(430))),
//!     ],
//!     horizon: SimDuration::from_secs(2),
//!     seed: 1,
//!     cost: None,
//!     params: None,
//! });
//! for task in &result.tasks {
//!     println!("{}: slowdown {:.2}x", task.name, task.slowdown);
//! }
//! ```

pub use neon_core as core;
pub use neon_experiments as experiments;
pub use neon_gpu as gpu;
pub use neon_metrics as metrics;
pub use neon_scenario as scenario;
pub use neon_sim as sim;
pub use neon_workloads as workloads;
