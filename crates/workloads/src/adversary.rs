//! Misbehaving applications from the paper's motivation (§1) and
//! protection discussion (§3.1, §6.3).

use neon_core::workload::{TaskAction, Workload};
use neon_gpu::{RequestKind, SubmitSpec};
use neon_sim::{DetRng, SimDuration};

/// The greedy batcher: intentionally merges its work into very large
/// requests to hog a work-conserving device (§1: "a greedy application
/// may intentionally batch its work into larger requests").
#[derive(Debug, Clone)]
pub struct Batcher {
    batch: SimDuration,
    phase: u8,
}

impl Batcher {
    /// A batcher issuing `batch`-sized requests back to back (default
    /// suggestion: 10 ms+).
    pub fn new(batch: SimDuration) -> Self {
        assert!(!batch.is_zero(), "batch must be positive");
        Batcher { batch, phase: 0 }
    }
}

impl Workload for Batcher {
    fn box_clone(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "Batcher"
    }

    fn queues(&self) -> Vec<RequestKind> {
        vec![RequestKind::Compute]
    }

    fn max_outstanding(&self) -> usize {
        2 // keeps the device saturated across completions
    }

    fn next_action(&mut self, rng: &mut DetRng) -> TaskAction {
        match self.phase {
            0 => {
                self.phase = 1;
                TaskAction::Submit {
                    queue: 0,
                    spec: SubmitSpec::compute(rng.jittered(self.batch, 0.02)).nonblocking(),
                }
            }
            _ => {
                self.phase = 0;
                TaskAction::EndRound
            }
        }
    }
}

/// The denial-of-service application: behaves normally for a while,
/// then submits a request that never completes (§1: "a malicious
/// application may launch a denial-of-service attack by submitting a
/// request with an infinite loop").
#[derive(Debug, Clone)]
pub struct InfiniteLoop {
    warmup_rounds: u32,
    request: SimDuration,
    rounds_done: u32,
    phase: u8,
    fired: bool,
}

impl InfiniteLoop {
    /// Issues `warmup_rounds` normal rounds of `request`-sized work,
    /// then the infinite request.
    pub fn new(warmup_rounds: u32, request: SimDuration) -> Self {
        InfiniteLoop {
            warmup_rounds,
            request,
            rounds_done: 0,
            phase: 0,
            fired: false,
        }
    }

    /// `true` once the poisoned request has been submitted.
    pub fn has_fired(&self) -> bool {
        self.fired
    }
}

impl Workload for InfiniteLoop {
    fn box_clone(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "InfiniteLoop"
    }

    fn queues(&self) -> Vec<RequestKind> {
        vec![RequestKind::Compute]
    }

    fn max_outstanding(&self) -> usize {
        1
    }

    fn next_action(&mut self, rng: &mut DetRng) -> TaskAction {
        if self.rounds_done >= self.warmup_rounds && !self.fired {
            self.fired = true;
            return TaskAction::Submit {
                queue: 0,
                spec: SubmitSpec::infinite_loop(),
            };
        }
        match self.phase {
            0 => {
                self.phase = 1;
                TaskAction::Submit {
                    queue: 0,
                    spec: SubmitSpec::compute(rng.jittered(self.request, 0.02)),
                }
            }
            _ => {
                self.phase = 0;
                self.rounds_done += 1;
                TaskAction::EndRound
            }
        }
    }
}

/// The hoarder: idles for a long stretch, then bursts — the scenario
/// fair queueing's system virtual time exists to defuse (§3.3: an
/// inactive task must not "build up its resource credit without bound
/// and then reclaim it in a sudden burst").
#[derive(Debug, Clone)]
pub struct IdleBurst {
    idle: SimDuration,
    burst_requests: u32,
    request: SimDuration,
    phase: u8,
    emitted: u32,
}

impl IdleBurst {
    /// Sleeps `idle`, then issues `burst_requests` non-blocking
    /// requests of `request` size, then repeats.
    pub fn new(idle: SimDuration, burst_requests: u32, request: SimDuration) -> Self {
        assert!(burst_requests > 0, "burst must contain requests");
        IdleBurst {
            idle,
            burst_requests,
            request,
            phase: 0,
            emitted: 0,
        }
    }
}

impl Workload for IdleBurst {
    fn box_clone(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "IdleBurst"
    }

    fn queues(&self) -> Vec<RequestKind> {
        vec![RequestKind::Compute]
    }

    fn max_outstanding(&self) -> usize {
        64
    }

    fn next_action(&mut self, rng: &mut DetRng) -> TaskAction {
        match self.phase {
            0 => {
                self.phase = 1;
                self.emitted = 0;
                TaskAction::CpuWork(rng.jittered(self.idle, 0.02))
            }
            1 => {
                if self.emitted < self.burst_requests {
                    self.emitted += 1;
                    TaskAction::Submit {
                        queue: 0,
                        spec: SubmitSpec::compute(rng.jittered(self.request, 0.02)).nonblocking(),
                    }
                } else {
                    self.phase = 2;
                    TaskAction::WaitAll
                }
            }
            _ => {
                self.phase = 0;
                TaskAction::EndRound
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batcher_emits_large_nonblocking_requests() {
        let mut b = Batcher::new(SimDuration::from_millis(10));
        let mut rng = DetRng::seed_from(0);
        match b.next_action(&mut rng) {
            TaskAction::Submit { spec, .. } => {
                assert!(!spec.blocking);
                assert!(spec.service >= SimDuration::from_millis(9));
            }
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn infinite_loop_fires_after_warmup() {
        let mut a = InfiniteLoop::new(2, SimDuration::from_micros(100));
        let mut rng = DetRng::seed_from(0);
        let mut poisoned = None;
        for i in 0..10 {
            if let TaskAction::Submit { spec, .. } = a.next_action(&mut rng) {
                if spec.service == SimDuration::MAX {
                    poisoned = Some(i);
                    break;
                }
            }
        }
        // 2 warmup rounds = submit, round, submit, round, then poison.
        assert_eq!(poisoned, Some(4));
        assert!(a.has_fired());
    }

    #[test]
    fn idle_burst_cycles_through_phases() {
        let mut a = IdleBurst::new(SimDuration::from_millis(5), 3, SimDuration::from_micros(50));
        let mut rng = DetRng::seed_from(0);
        assert!(matches!(a.next_action(&mut rng), TaskAction::CpuWork(_)));
        for _ in 0..3 {
            assert!(matches!(a.next_action(&mut rng), TaskAction::Submit { .. }));
        }
        assert_eq!(a.next_action(&mut rng), TaskAction::WaitAll);
        assert_eq!(a.next_action(&mut rng), TaskAction::EndRound);
        assert!(matches!(a.next_action(&mut rng), TaskAction::CpuWork(_)));
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_rejected() {
        let _ = Batcher::new(SimDuration::ZERO);
    }
}
