//! Models of the paper's Table 1 applications.
//!
//! Each application is characterised by the paper's measured per-round
//! and per-request times, plus modeling parameters derived from them:
//! how many *main* requests a round issues (round ÷ request, roughly),
//! how many *trivial* auxiliary requests accompany them (mode/state
//! changes, never checked for completion — see the crate docs), and the
//! CPU think time that makes the standalone round time match Table 1.
//!
//! The aux counts for BitonicSort, FastWalshTransform and
//! FloydWarshall are calibrated against the engaged-Timeslice
//! slowdowns the paper reports for them (38 %, 30 %, 40 %); the other
//! applications carry small counts in proportion to their request
//! frequency.

use neon_core::workload::{TaskAction, Workload};
use neon_gpu::{RequestKind, SubmitSpec};
use neon_sim::{DetRng, SimDuration};

/// Ground-truth device time of a trivial (mode/state) request.
const AUX_SERVICE: SimDuration = SimDuration::from_nanos(500);
/// CPU time between consecutive main-request submissions.
const SUBMIT_GAP: SimDuration = SimDuration::from_micros(1);
/// Relative jitter applied to main request sizes.
const SIZE_JITTER: f64 = 0.05;

/// Static description of one Table 1 application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSpec {
    /// Application name as in Table 1.
    pub name: &'static str,
    /// Problem area as in Table 1.
    pub area: &'static str,
    /// Paper-reported µs per round.
    pub paper_round_us: f64,
    /// Paper-reported µs per (compute) request.
    pub paper_request_us: f64,
    /// Paper-reported µs per graphics request (combined apps only).
    pub paper_graphics_us: Option<f64>,
    /// Main compute requests per round.
    pub compute_per_round: u32,
    /// Main graphics requests per round (combined / graphics apps).
    pub graphics_per_round: u32,
    /// Trivial auxiliary requests per round.
    pub aux_per_round: u32,
    /// Whether main compute requests block (OpenCL apps synchronise per
    /// kernel; graphics pipelines do not).
    pub blocking_compute: bool,
}

impl AppSpec {
    /// CPU think time per round that makes the standalone round match
    /// the paper's value under direct access.
    pub fn think_time(&self) -> SimDuration {
        let gpu_main = self.compute_per_round as f64 * self.paper_request_us
            + self.graphics_per_round as f64 * self.paper_graphics_us.unwrap_or(0.0);
        let gpu_aux = self.aux_per_round as f64 * (AUX_SERVICE.as_micros_f64() + 0.2);
        let gaps =
            (self.compute_per_round + self.graphics_per_round) as f64 * SUBMIT_GAP.as_micros_f64();
        let think = self.paper_round_us - gpu_main - gpu_aux - gaps;
        SimDuration::from_micros_f64(think.max(0.0))
    }

    /// Total requests a round submits (main + trivial).
    pub fn requests_per_round(&self) -> u32 {
        self.compute_per_round + self.graphics_per_round + self.aux_per_round
    }

    /// Builds the runnable model.
    pub fn build(&self) -> AppModel {
        AppModel::new(*self)
    }
}

/// All eighteen Table 1 applications.
pub fn all_apps() -> Vec<AppSpec> {
    vec![
        spec("BinarySearch", "Searching", 161.0, 57.0, 3, 1),
        spec("BitonicSort", "Sorting", 1292.0, 202.0, 6, 36),
        spec("DCT", "Compression", 197.0, 66.0, 3, 1),
        spec("EigenValue", "Algebra", 163.0, 56.0, 3, 1),
        spec("FastWalshTransform", "Encryption", 310.0, 119.0, 2, 6),
        spec("FFT", "Signal Processing", 268.0, 48.0, 6, 1),
        spec("FloydWarshall", "Graph Analysis", 5631.0, 141.0, 39, 154),
        spec("LUDecomposition", "Algebra", 1490.0, 308.0, 5, 4),
        spec("MatrixMulDouble", "Algebra", 12628.0, 637.0, 20, 10),
        spec("MatrixMultiplication", "Algebra", 3788.0, 436.0, 9, 6),
        spec("MatrixTranspose", "Algebra", 1153.0, 284.0, 4, 2),
        spec("PrefixSum", "Data Processing", 157.0, 55.0, 3, 1),
        spec("RadixSort", "Sorting", 8082.0, 210.0, 38, 24),
        spec("Reduction", "Data Processing", 1147.0, 282.0, 4, 2),
        spec("ScanLargeArrays", "Data Processing", 197.0, 72.0, 3, 1),
        glxgears(),
        ocl_particles(),
        simple_texture_3d(),
    ]
}

fn spec(
    name: &'static str,
    area: &'static str,
    round: f64,
    request: f64,
    compute: u32,
    aux: u32,
) -> AppSpec {
    AppSpec {
        name,
        area,
        paper_round_us: round,
        paper_request_us: request,
        paper_graphics_us: None,
        compute_per_round: compute,
        graphics_per_round: 0,
        aux_per_round: aux,
        blocking_compute: true,
    }
}

/// The standard OpenGL microbenchmark: one short graphics request per
/// frame, pipelined.
pub fn glxgears() -> AppSpec {
    AppSpec {
        name: "glxgears",
        area: "Graphics",
        paper_round_us: 72.0,
        paper_request_us: 37.0,
        paper_graphics_us: Some(37.0),
        compute_per_round: 0,
        graphics_per_round: 2,
        aux_per_round: 0,
        blocking_compute: false,
    }
}

/// The combined OpenCL+OpenGL particle-collision simulation: two
/// channels, small physics kernels plus large rendering requests.
pub fn ocl_particles() -> AppSpec {
    AppSpec {
        name: "oclParticles",
        area: "Physics/Graphics",
        paper_round_us: 2006.0,
        paper_request_us: 12.0,
        paper_graphics_us: Some(302.0),
        compute_per_round: 8,
        graphics_per_round: 5,
        aux_per_round: 2,
        blocking_compute: false,
    }
}

/// The combined OpenCL+OpenGL 3-D texturing demo.
pub fn simple_texture_3d() -> AppSpec {
    AppSpec {
        name: "simpleTexture3D",
        area: "Texturing/Graphics",
        paper_round_us: 2472.0,
        paper_request_us: 108.0,
        paper_graphics_us: Some(171.0),
        compute_per_round: 6,
        graphics_per_round: 9,
        aux_per_round: 2,
        blocking_compute: false,
    }
}

/// A Table 1 application by name (case-insensitive).
pub fn app_by_name(name: &str) -> Option<AppSpec> {
    all_apps()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

/// Convenience constructors for the apps used in the paper's
/// multiprogrammed figures.
pub fn dct() -> AppModel {
    // lint: allow(unchecked-unwrap) — DCT is a row of the static app table
    app_by_name("DCT").expect("DCT in table").build()
}

/// FFT (Figure 6/7/8 co-runner).
pub fn fft() -> AppModel {
    // lint: allow(unchecked-unwrap) — FFT is a row of the static app table
    app_by_name("FFT").expect("FFT in table").build()
}

/// BinarySearch (Figure 8 co-runner).
pub fn binary_search() -> AppModel {
    app_by_name("BinarySearch")
        // lint: allow(unchecked-unwrap) — BinarySearch is a row of the static
        // app table
        .expect("BinarySearch in table")
        .build()
}

/// glxgears as a runnable model (Figure 6/7 co-runner).
pub fn glxgears_model() -> AppModel {
    glxgears().build()
}

/// oclParticles as a runnable model (Figure 6/7 co-runner).
pub fn ocl_particles_model() -> AppModel {
    ocl_particles().build()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Aux burst before main request `i`.
    Aux(u32),
    /// Submit main request `i`.
    Main(u32),
    /// Round barrier.
    Barrier,
    /// Round accounting.
    Round,
    /// Think/setup time.
    Think,
}

/// A runnable Table 1 application model.
#[derive(Debug, Clone)]
pub struct AppModel {
    spec: AppSpec,
    think: SimDuration,
    step: Step,
    aux_left: u32,
}

impl AppModel {
    /// Builds the model from its spec.
    pub fn new(spec: AppSpec) -> Self {
        let main_total = spec.compute_per_round + spec.graphics_per_round;
        assert!(main_total > 0, "{} has no main requests", spec.name);
        AppModel {
            spec,
            think: spec.think_time(),
            step: Step::Aux(0),
            aux_left: 0,
        }
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    fn main_total(&self) -> u32 {
        self.spec.compute_per_round + self.spec.graphics_per_round
    }

    /// Aux requests to emit before main request `i` (spread evenly).
    fn aux_quota(&self, i: u32) -> u32 {
        let n = self.main_total();
        let per = self.spec.aux_per_round / n;
        let extra = u32::from(i < self.spec.aux_per_round % n);
        per + extra
    }

    fn main_spec(&self, i: u32, rng: &mut DetRng) -> SubmitSpec {
        if i < self.spec.compute_per_round {
            let mean = SimDuration::from_micros_f64(self.spec.paper_request_us);
            let service = rng.jittered(mean, SIZE_JITTER);
            if self.spec.blocking_compute {
                SubmitSpec::compute(service)
            } else {
                SubmitSpec::compute(service).nonblocking()
            }
        } else {
            let mean = SimDuration::from_micros_f64(
                // lint: allow(unchecked-unwrap) — the builder sets
                // paper_graphics_us for every app that reaches this arm
                self.spec.paper_graphics_us.expect("graphics size present"),
            );
            SubmitSpec::graphics(rng.jittered(mean, SIZE_JITTER))
        }
    }

    /// Queue index for main request `i`: compute on queue 0; graphics
    /// on the last queue (its own channel for combined apps).
    fn main_queue(&self, i: u32) -> usize {
        if i < self.spec.compute_per_round {
            0
        } else if self.spec.compute_per_round > 0 {
            1
        } else {
            0
        }
    }

    /// Queue carrying aux (state-change) requests.
    fn aux_queue(&self) -> usize {
        0
    }
}

impl Workload for AppModel {
    fn name(&self) -> &str {
        self.spec.name
    }

    fn box_clone(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn queues(&self) -> Vec<RequestKind> {
        let mut queues = Vec::new();
        if self.spec.compute_per_round > 0 || self.spec.graphics_per_round == 0 {
            queues.push(RequestKind::Compute);
        }
        if self.spec.graphics_per_round > 0 {
            queues.push(RequestKind::Graphics);
        }
        queues
    }

    fn max_outstanding(&self) -> usize {
        16
    }

    fn next_action(&mut self, rng: &mut DetRng) -> TaskAction {
        loop {
            match self.step {
                Step::Aux(i) => {
                    if i >= self.main_total() {
                        self.step = Step::Barrier;
                        continue;
                    }
                    if self.aux_left == 0 {
                        self.aux_left = self.aux_quota(i);
                    }
                    if self.aux_left > 0 {
                        self.aux_left -= 1;
                        if self.aux_left == 0 {
                            self.step = Step::Main(i);
                        }
                        return TaskAction::Submit {
                            queue: self.aux_queue(),
                            spec: SubmitSpec::compute(AUX_SERVICE).nonblocking(),
                        };
                    }
                    self.step = Step::Main(i);
                }
                Step::Main(i) => {
                    let spec = self.main_spec(i, rng);
                    self.step = if i + 1 < self.main_total() {
                        Step::Aux(i + 1)
                    } else {
                        Step::Barrier
                    };
                    let queue = self.main_queue(i);
                    return TaskAction::Submit { queue, spec };
                }
                Step::Barrier => {
                    self.step = Step::Round;
                    return TaskAction::WaitAll;
                }
                Step::Round => {
                    self.step = Step::Think;
                    return TaskAction::EndRound;
                }
                Step::Think => {
                    self.step = Step::Aux(0);
                    if self.think.is_zero() {
                        continue;
                    }
                    return TaskAction::CpuWork(rng.jittered(self.think, SIZE_JITTER));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_eighteen_apps() {
        let apps = all_apps();
        assert_eq!(apps.len(), 18);
        let names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        assert!(names.contains(&"BitonicSort"));
        assert!(names.contains(&"glxgears"));
        assert!(names.contains(&"simpleTexture3D"));
    }

    #[test]
    fn think_time_balances_round_budget() {
        for app in all_apps() {
            let think = app.think_time().as_micros_f64();
            let gpu = app.compute_per_round as f64 * app.paper_request_us
                + app.graphics_per_round as f64 * app.paper_graphics_us.unwrap_or(0.0);
            // Saturated models round the request count up, so the GPU
            // budget may overshoot the paper round slightly (<10%);
            // Table 1 reproduction asserts the measured round instead.
            assert!(
                gpu + think <= app.paper_round_us * 1.10,
                "{}: gpu {gpu} + think {think} exceeds round {}",
                app.name,
                app.paper_round_us
            );
        }
    }

    #[test]
    fn combined_apps_have_two_queues() {
        let p = ocl_particles().build();
        assert_eq!(
            p.queues(),
            vec![RequestKind::Compute, RequestKind::Graphics]
        );
        let g = glxgears().build();
        assert_eq!(g.queues(), vec![RequestKind::Graphics]);
        let d = dct();
        assert_eq!(d.queues(), vec![RequestKind::Compute]);
    }

    #[test]
    fn round_emits_expected_request_count() {
        let spec = app_by_name("DCT").unwrap();
        let mut model = spec.build();
        let mut rng = DetRng::seed_from(1);
        let mut submits = 0;
        let mut rounds = 0;
        for _ in 0..200 {
            match model.next_action(&mut rng) {
                TaskAction::Submit { .. } => submits += 1,
                TaskAction::EndRound => {
                    rounds += 1;
                    if rounds == 10 {
                        break;
                    }
                }
                _ => {}
            }
        }
        assert_eq!(rounds, 10);
        assert_eq!(submits, 10 * spec.requests_per_round());
    }

    #[test]
    fn aux_quota_sums_to_total() {
        for app in all_apps() {
            let model = app.build();
            let total: u32 = (0..model.main_total()).map(|i| model.aux_quota(i)).sum();
            assert_eq!(total, app.aux_per_round, "{}", app.name);
        }
    }

    #[test]
    fn app_lookup_is_case_insensitive() {
        assert!(app_by_name("dct").is_some());
        assert!(app_by_name("GLXGEARS").is_some());
        assert!(app_by_name("nope").is_none());
    }

    #[test]
    fn graphics_requests_target_graphics_queue() {
        let p = ocl_particles().build();
        // Compute request index range maps to queue 0, graphics to 1.
        assert_eq!(p.main_queue(0), 0);
        assert_eq!(p.main_queue(p.spec.compute_per_round), 1);
        let g = glxgears().build();
        assert_eq!(g.main_queue(0), 0, "graphics-only app uses queue 0");
    }
}
