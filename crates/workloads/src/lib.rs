//! # neon-workloads
//!
//! Generative models of the paper's evaluation workloads (§5.1):
//!
//! - [`app`] — the eighteen Table 1 benchmarks (fifteen AMD APP SDK
//!   OpenCL applications, glxgears, and the two combined
//!   compute+graphics applications), parameterised by their published
//!   per-round and per-request times.
//! - [`throttle`] — the paper's Throttle microbenchmark: repetitive
//!   blocking compute requests of a controlled size, with optional
//!   "off" (sleep) periods for the nonsaturating experiments.
//! - [`adversary`] — misbehaving applications: the greedy batcher, the
//!   infinite-loop request, and the idle-then-burst hoarder.
//!
//! Each model implements [`neon_core::workload::Workload`], emitting
//! request submissions, CPU gaps, round barriers and think time. Models
//! include the *trivial* requests the paper observed ("requests,
//! perhaps to change mode/state, that arrive at the GPU and are never
//! checked for completion"): they carry negligible device time but are
//! intercepted like any other submission, and are exactly what makes
//! per-request engagement expensive for the small-request applications
//! (38 % BitonicSort, 30 % FastWalshTransform, 40 % FloydWarshall in
//! Figure 4).

pub mod adversary;
pub mod app;
pub mod throttle;

pub use app::{all_apps, AppModel, AppSpec};
pub use throttle::Throttle;
