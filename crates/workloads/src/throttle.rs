//! The Throttle microbenchmark (§5.1).
//!
//! Throttle issues repetitive blocking compute requests that occupy the
//! device for a user-specified amount of time, with optional idle
//! (sleep/think) time between requests to model nonsaturating
//! workloads. No data transfers occur during execution; one round is
//! one request.

use neon_core::workload::{TaskAction, Workload};
use neon_gpu::{RequestKind, SubmitSpec};
use neon_sim::{DetRng, SimDuration};

/// The Throttle microbenchmark.
///
/// # Example
///
/// ```
/// use neon_workloads::Throttle;
/// use neon_sim::SimDuration;
///
/// // A saturating Throttle with 430µs requests:
/// let t = Throttle::new(SimDuration::from_micros(430));
/// // A nonsaturating variant idle 80% of the time:
/// let nt = Throttle::new(SimDuration::from_micros(430)).with_off_ratio(0.8);
/// # let _ = (t, nt);
/// ```
#[derive(Debug, Clone)]
pub struct Throttle {
    name: String,
    request: SimDuration,
    off_ratio: f64,
    jitter: f64,
    phase: u8,
}

impl Throttle {
    /// A saturating Throttle: back-to-back blocking requests of
    /// `request` device time.
    pub fn new(request: SimDuration) -> Self {
        assert!(!request.is_zero(), "throttle request must be positive");
        Throttle {
            name: format!("Throttle({request})"),
            request,
            off_ratio: 0.0,
            jitter: 0.02,
            phase: 0,
        }
    }

    /// Sets the "off" (sleep) proportion of standalone execution:
    /// `0.8` means the task would keep the device idle 80 % of the time
    /// when running alone (Figure 9/10's sweep axis).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= ratio < 1.0`.
    pub fn with_off_ratio(mut self, ratio: f64) -> Self {
        assert!((0.0..1.0).contains(&ratio), "off ratio must be in [0,1)");
        self.off_ratio = ratio;
        if ratio > 0.0 {
            self.name = format!("Throttle({}, {:.0}% off)", self.request, ratio * 100.0);
        }
        self
    }

    /// Sets the relative jitter on request sizes (default 2 %).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// The per-request sleep that realises the off ratio.
    pub fn sleep_per_request(&self) -> SimDuration {
        if self.off_ratio == 0.0 {
            SimDuration::ZERO
        } else {
            self.request
                .mul_f64(self.off_ratio / (1.0 - self.off_ratio))
        }
    }

    /// The configured request size.
    pub fn request_size(&self) -> SimDuration {
        self.request
    }

    /// Expected standalone round time (request + sleep), ignoring
    /// submission costs.
    pub fn expected_round(&self) -> SimDuration {
        self.request + self.sleep_per_request()
    }
}

impl Workload for Throttle {
    fn name(&self) -> &str {
        &self.name
    }

    fn box_clone(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn queues(&self) -> Vec<RequestKind> {
        vec![RequestKind::Compute]
    }

    fn max_outstanding(&self) -> usize {
        1 // strictly blocking, one request at a time
    }

    fn next_action(&mut self, rng: &mut DetRng) -> TaskAction {
        match self.phase {
            0 => {
                self.phase = 1;
                TaskAction::Submit {
                    queue: 0,
                    spec: SubmitSpec::compute(rng.jittered(self.request, self.jitter)),
                }
            }
            1 => {
                self.phase = 2;
                TaskAction::EndRound
            }
            _ => {
                self.phase = 0;
                let sleep = self.sleep_per_request();
                if sleep.is_zero() {
                    self.next_action(rng)
                } else {
                    TaskAction::CpuWork(rng.jittered(sleep, self.jitter))
                }
            }
        }
    }
}

/// A saturating Throttle (paper's default competitor).
pub fn saturating(request: SimDuration) -> Throttle {
    Throttle::new(request)
}

/// A nonsaturating Throttle with the given off ratio (Figure 9/10).
pub fn nonsaturating(request: SimDuration, off_ratio: f64) -> Throttle {
    Throttle::new(request).with_off_ratio(off_ratio)
}

/// The request sizes used across Figure 6/7 (19 µs – 1.7 ms).
pub fn figure6_sizes() -> Vec<SimDuration> {
    vec![
        SimDuration::from_micros(19),
        SimDuration::from_micros(110),
        SimDuration::from_micros(430),
        SimDuration::from_micros(1700),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_cycle_has_no_sleep() {
        let mut t = Throttle::new(SimDuration::from_micros(100));
        let mut rng = DetRng::seed_from(0);
        assert!(matches!(t.next_action(&mut rng), TaskAction::Submit { .. }));
        assert_eq!(t.next_action(&mut rng), TaskAction::EndRound);
        assert!(matches!(t.next_action(&mut rng), TaskAction::Submit { .. }));
    }

    #[test]
    fn off_ratio_sleep_matches_maths() {
        let t = Throttle::new(SimDuration::from_micros(100)).with_off_ratio(0.8);
        // 80% off: sleep = 4x the request.
        assert_eq!(t.sleep_per_request(), SimDuration::from_micros(400));
        assert_eq!(t.expected_round(), SimDuration::from_micros(500));
    }

    #[test]
    fn nonsaturating_cycle_sleeps() {
        let mut t = nonsaturating(SimDuration::from_micros(100), 0.5).with_jitter(0.0);
        let mut rng = DetRng::seed_from(0);
        t.next_action(&mut rng); // submit
        t.next_action(&mut rng); // round
        assert_eq!(
            t.next_action(&mut rng),
            TaskAction::CpuWork(SimDuration::from_micros(100))
        );
    }

    #[test]
    fn blocking_with_depth_one() {
        let t = Throttle::new(SimDuration::from_micros(10));
        assert_eq!(t.max_outstanding(), 1);
        assert_eq!(t.queues(), vec![RequestKind::Compute]);
    }

    #[test]
    #[should_panic(expected = "off ratio")]
    fn off_ratio_one_rejected() {
        let _ = Throttle::new(SimDuration::from_micros(10)).with_off_ratio(1.0);
    }

    #[test]
    fn figure6_sweep_covers_paper_range() {
        let sizes = figure6_sizes();
        assert_eq!(sizes.first().copied(), Some(SimDuration::from_micros(19)));
        assert_eq!(sizes.last().copied(), Some(SimDuration::from_micros(1700)));
    }
}
