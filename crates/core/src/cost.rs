//! The calibrated cost model.
//!
//! Every timing constant of the modeled software stack lives here, with
//! the paper-derived default documented next to it (see also DESIGN.md
//! §3). Experiments that sweep a constant (ablations) construct a
//! modified [`CostModel`] rather than reaching into the schedulers.

use neon_sim::SimDuration;

/// Timing constants of the modeled OS/driver/device software stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// CPU cost of a direct, user-space request submission: a write to
    /// the memory-mapped channel register. The paper measures 305
    /// cycles on a 2.27 GHz Xeon E5520 ≈ 134 ns.
    pub direct_submit: SimDuration,
    /// CPU cost of an intercepted submission: page fault, handler,
    /// command-buffer scan to locate the request's reference counter,
    /// temporary kernel mapping, single-step, re-protect — plus the
    /// cache/TLB pollution these leave behind. Calibrated (12 µs) so
    /// that the engaged Timeslice slowdowns of the small-request
    /// applications land on the paper's reported values (38 %
    /// BitonicSort, 30 % FastWalshTransform, 40 % FloydWarshall) and a
    /// concurrent small-request Throttle sees the 2–3× range of §5.3.
    pub fault_intercept: SimDuration,
    /// CPU cost of a syscall-based submission (the AMD-style stack of
    /// the §3 throughput comparison).
    pub syscall_submit: SimDuration,
    /// Additional kernel-side driver work per request for the "heavy"
    /// variant of the §3 comparison (48–170 % band).
    pub driver_processing: SimDuration,
    /// Latency for a user-space spin loop to notice a completed request
    /// (reference-counter read granularity).
    pub completion_detect: SimDuration,
    /// Period of the kernel polling-thread service (§5.2: 1 ms).
    pub polling_period: SimDuration,
    /// CPU cost of one polling-thread scan over active channels.
    pub poll_scan: SimDuration,
    /// Cost of tearing down a killed task's device state.
    pub kill_cleanup: SimDuration,
}

impl CostModel {
    /// The submission cost under the given interposition state.
    pub fn submit_cost(&self, intercepted: bool) -> SimDuration {
        if intercepted {
            self.fault_intercept
        } else {
            self.direct_submit
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            direct_submit: SimDuration::from_nanos(134),
            fault_intercept: SimDuration::from_micros(12),
            syscall_submit: SimDuration::from_micros_f64(3.5),
            driver_processing: SimDuration::from_micros(12),
            completion_detect: SimDuration::from_nanos(200),
            polling_period: SimDuration::from_millis(1),
            poll_scan: SimDuration::from_micros(2),
            kill_cleanup: SimDuration::from_micros(50),
        }
    }
}

/// Scheduler policy parameters (§5.2 configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedParams {
    /// Timeslice length for the token-based schedulers (30 ms).
    pub timeslice: SimDuration,
    /// Maximum sampling duration per task in Disengaged Fair Queueing
    /// (5 ms).
    pub sampling_max: SimDuration,
    /// Request-count cut-off for a sampling run (32; the paper raises
    /// it to 96 for combined compute+graphics applications).
    pub sampling_requests: u64,
    /// Free-run period length as a multiple of the preceding engagement
    /// duration (5×).
    pub freerun_multiplier: u32,
    /// Floor for the free-run period, so a near-instant engagement does
    /// not lead to continuous re-engagement.
    pub freerun_min: SimDuration,
    /// Cap on the free-run period. Engagement length is partly under
    /// tenant control (barrier drains and sampling windows stretch with
    /// request size), so without a cap a large-request tenant — e.g. a
    /// 20 ms batcher against the 5 ms sampling window — inflates each
    /// engagement and with it the 5× free-run *and* the denial
    /// threshold (which equals the upcoming interval), outrunning
    /// denial forever. The cap only binds when engagements exceed
    /// `freerun_max / freerun_multiplier` (20 ms at the defaults);
    /// well-behaved mixes never notice it.
    pub freerun_max: SimDuration,
    /// Documented limit on any single request's run time; tasks whose
    /// request exceeds it are killed (§3.1) — or, when
    /// [`SchedParams::hardware_preemption`] is available, preempted.
    pub overlong_limit: SimDuration,
    /// Whether the device supports true hardware preemption (§6.2
    /// future work). When enabled, Disengaged Fair Queueing suspends
    /// over-long requests (preempt + channel mask until the next
    /// engagement) instead of killing the offending task, tolerating
    /// requests of arbitrary length without sacrificing interactivity.
    pub hardware_preemption: bool,
}

impl Default for SchedParams {
    fn default() -> Self {
        SchedParams {
            timeslice: SimDuration::from_millis(30),
            sampling_max: SimDuration::from_millis(5),
            sampling_requests: 32,
            freerun_multiplier: 5,
            freerun_min: SimDuration::from_millis(5),
            freerun_max: SimDuration::from_millis(100),
            overlong_limit: SimDuration::from_secs(1),
            hardware_preemption: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let p = SchedParams::default();
        assert_eq!(p.timeslice, SimDuration::from_millis(30));
        assert_eq!(p.sampling_max, SimDuration::from_millis(5));
        assert_eq!(p.sampling_requests, 32);
        assert_eq!(p.freerun_multiplier, 5);

        let c = CostModel::default();
        assert_eq!(c.polling_period, SimDuration::from_millis(1));
        assert_eq!(c.direct_submit, SimDuration::from_nanos(134));
    }

    #[test]
    fn interception_is_much_dearer_than_direct() {
        let c = CostModel::default();
        assert!(c.submit_cost(true).as_nanos() > 10 * c.submit_cost(false).as_nanos());
        assert_eq!(c.submit_cost(false), c.direct_submit);
    }
}
