//! Streaming telemetry: structured run stats, metrics modes, and the
//! bounded device-timeline sampler.
//!
//! Three pieces live here, all bounded-memory by construction:
//!
//! - [`SimStats`] — a typed [`Counters`] block over [`StatKey`]: every
//!   structured counter a run produces (events, faults, preemptions,
//!   denials, sampling windows, rebalance decisions, migrations...),
//!   surfaced in [`RunReport`](crate::report::RunReport) and every
//!   [`DeviceReport`](crate::report::DeviceReport). Incrementing is a
//!   plain integer bump, so keeping them always-on does not move the
//!   simulator's events/second.
//! - [`MetricsMode`] — how per-task latency samples are retained:
//!   [`MetricsMode::Exact`] keeps every sample in a `Vec` (the oracle,
//!   and the default), [`MetricsMode::Streaming`] routes them into
//!   per-task and per-group
//!   [`StreamingHistogram`](neon_metrics::StreamingHistogram)s so
//!   memory stays constant over arbitrarily long runs.
//! - [`Timeline`] — a bounded ring of periodic [`TimelineSample`]
//!   snapshots (per-device utilization, queue depth, tenants, engine
//!   occupancy, migrations) taken by the world's sampler event. Off by
//!   default ([`WorldConfig::sample_every`](crate::world::WorldConfig)
//!   is `None`), so default-config traces and golden hashes are
//!   untouched.

use std::collections::VecDeque;

use neon_gpu::DeviceId;
use neon_metrics::{CounterKey, Counters};
use neon_sim::SimTime;

/// How the world retains per-task latency samples (rounds, service
/// times, submit gaps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum MetricsMode {
    /// Keep every sample in per-task `Vec`s — exact percentiles,
    /// memory linear in tenant-rounds. The default, and the oracle the
    /// streaming mode is tested against.
    #[default]
    Exact,
    /// Route samples into per-task and per-group
    /// [`StreamingHistogram`](neon_metrics::StreamingHistogram)s:
    /// fixed memory per task, quantiles within
    /// [`StreamingHistogram::RELATIVE_ERROR_BOUND`](neon_metrics::StreamingHistogram::RELATIVE_ERROR_BOUND)
    /// of exact. Service and inter-submission histograms are always
    /// recorded in this mode (they are bounded), regardless of
    /// `record_requests`.
    Streaming,
}

impl MetricsMode {
    /// Parses the CLI/TOML label (`"exact"` or `"streaming"`).
    pub fn from_label(label: &str) -> Option<MetricsMode> {
        match label {
            "exact" => Some(MetricsMode::Exact),
            "streaming" => Some(MetricsMode::Streaming),
            _ => None,
        }
    }

    /// The CLI/TOML label.
    pub fn label(self) -> &'static str {
        match self {
            MetricsMode::Exact => "exact",
            MetricsMode::Streaming => "streaming",
        }
    }
}

/// Every structured counter a run maintains. Keys index a dense
/// [`Counters`] block ([`SimStats`]); labels are the stable names used
/// by JSON/CSV emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatKey {
    /// Discrete events the simulation loop processed.
    Events,
    /// Page faults (protected-page interceptions) taken.
    Faults,
    /// Polling-thread wakeups.
    Polls,
    /// Direct (unintercepted) submissions.
    DirectSubmits,
    /// Admissions refused because no device could host the arrival.
    RejectedAdmissions,
    /// Hardware preemptions (channel suspensions) issued by policies.
    Preemptions,
    /// Tasks killed by a scheduler.
    Kills,
    /// Submission-admission denials during fair-queueing free-run.
    Denials,
    /// Exclusive sampling windows opened by disengaged policies.
    SamplingWindowsOpened,
    /// Sampling windows that ran to completion and were charged.
    SamplingWindowsClosed,
    /// Rebalance plans executed (a task actually moved).
    RebalanceAccepted,
    /// Candidate moves a cost-aware policy rejected on cost grounds.
    RebalanceVetoed,
    /// Candidate moves skipped because the task migrated too recently.
    RebalanceCooledDown,
    /// Tasks migrated onto a device (equals total migrations run-wide).
    MigrationsIn,
    /// Tasks migrated off a device (equals total migrations run-wide).
    MigrationsOut,
    /// Fault events injected from a [`FaultPlan`](crate::fault::FaultPlan).
    InjectedFaults,
    /// Tasks killed by the per-device watchdog (stagnant running
    /// request past the configured timeout).
    WatchdogKills,
    /// Fault-recovery retries: watchdog requeues, transient-submit
    /// retries, and park re-admission attempts that found no room yet.
    FaultRetries,
    /// Tasks that survived a device hot-remove (drain-migrated at the
    /// removal instant, or re-staged later from parking).
    RecoveredTasks,
    /// Tasks permanently lost to faults: crashes, exhausted watchdog
    /// retry budgets, and exhausted park retries.
    LostTasks,
    /// Device hot-remove events executed.
    HotRemoves,
    /// Device hot-add events executed.
    HotAdds,
}

impl CounterKey for StatKey {
    const ALL: &'static [StatKey] = &[
        StatKey::Events,
        StatKey::Faults,
        StatKey::Polls,
        StatKey::DirectSubmits,
        StatKey::RejectedAdmissions,
        StatKey::Preemptions,
        StatKey::Kills,
        StatKey::Denials,
        StatKey::SamplingWindowsOpened,
        StatKey::SamplingWindowsClosed,
        StatKey::RebalanceAccepted,
        StatKey::RebalanceVetoed,
        StatKey::RebalanceCooledDown,
        StatKey::MigrationsIn,
        StatKey::MigrationsOut,
        StatKey::InjectedFaults,
        StatKey::WatchdogKills,
        StatKey::FaultRetries,
        StatKey::RecoveredTasks,
        StatKey::LostTasks,
        StatKey::HotRemoves,
        StatKey::HotAdds,
    ];

    fn index(self) -> usize {
        self as usize
    }

    fn label(self) -> &'static str {
        match self {
            StatKey::Events => "events",
            StatKey::Faults => "faults",
            StatKey::Polls => "polls",
            StatKey::DirectSubmits => "direct_submits",
            StatKey::RejectedAdmissions => "rejected_admissions",
            StatKey::Preemptions => "preemptions",
            StatKey::Kills => "kills",
            StatKey::Denials => "denials",
            StatKey::SamplingWindowsOpened => "sampling_windows_opened",
            StatKey::SamplingWindowsClosed => "sampling_windows_closed",
            StatKey::RebalanceAccepted => "rebalance_accepted",
            StatKey::RebalanceVetoed => "rebalance_vetoed",
            StatKey::RebalanceCooledDown => "rebalance_cooled_down",
            StatKey::MigrationsIn => "migrations_in",
            StatKey::MigrationsOut => "migrations_out",
            StatKey::InjectedFaults => "injected_faults",
            StatKey::WatchdogKills => "watchdog_kills",
            StatKey::FaultRetries => "fault_retries",
            StatKey::RecoveredTasks => "recovered_tasks",
            StatKey::LostTasks => "lost_tasks",
            StatKey::HotRemoves => "hot_removes",
            StatKey::HotAdds => "hot_adds",
        }
    }
}

/// The structured stats block of a run (or of one device).
pub type SimStats = Counters<StatKey>;

/// One device's slice of a [`TimelineSample`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSample {
    /// The device.
    pub device: DeviceId,
    /// Compute-engine utilization over the window since the previous
    /// sample (fraction in `[0, 1]`).
    pub utilization: f64,
    /// Requests queued on channels plus requests running on engines.
    pub queue_depth: usize,
    /// Live tenants holding a context on the device.
    pub tenants: usize,
    /// Engines currently running a request.
    pub engines_busy: usize,
    /// Cumulative tasks migrated onto the device so far.
    pub migrations_in: u64,
    /// Cumulative tasks migrated off the device so far.
    pub migrations_out: u64,
}

/// One periodic snapshot taken by the world's sampler event.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSample {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Cumulative events processed by the run loop so far.
    pub events: u64,
    /// Live tasks across all devices.
    pub live_tasks: usize,
    /// Tasks still stalled on a migration transfer at this instant.
    pub inflight_migrations: usize,
    /// Per-device slices, in device-id order.
    pub devices: Vec<DeviceSample>,
}

/// A bounded ring of [`TimelineSample`]s: at capacity the oldest
/// sample is discarded (and counted), so the sampler can run forever
/// on a fixed budget — the same discipline as
/// [`Trace`](neon_sim::Trace).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    samples: VecDeque<TimelineSample>,
    capacity: usize,
    dropped: u64,
}

impl Timeline {
    /// Default ring capacity used by the world when none is configured.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates an empty timeline keeping at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "timeline capacity must be positive");
        Timeline {
            samples: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a sample, evicting the oldest at capacity.
    pub fn push(&mut self, sample: TimelineSample) {
        if self.capacity == 0 {
            // A `Default`-constructed timeline (capacity 0) is the
            // world's "sampler off" placeholder; pushing into it would
            // be a bug upstream.
            // lint: allow(panic-path) — harness misuse guard; the world
            // only pushes when sample_every sized a real ring
            panic!("push into a zero-capacity timeline");
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }

    /// Retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TimelineSample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples discarded due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity (zero for the sampler-off placeholder).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The canonical trace-label taxonomy.
///
/// Every label the world and the built-in schedulers record is listed
/// here, so tests and tools can query [`Trace::with_label`] /
/// [`Trace::labels`](neon_sim::Trace::labels) against named constants
/// instead of grepping free-form strings. The world's own events use
/// these constants directly; scheduler modules keep their literals but
/// are pinned to this list by a test.
pub mod labels {
    /// A task was admitted (at start or mid-run).
    pub const ARRIVE: &str = "arrive";
    /// A newly admitted task's working set was staged onto its device.
    pub const STAGE: &str = "stage";
    /// An open-loop arrival was turned away (no device could host it).
    pub const REJECT: &str = "reject";
    /// A scheduled departure retired a task.
    pub const DEPART: &str = "depart";
    /// A protected-page submission faulted into the kernel.
    pub const FAULT: &str = "fault";
    /// A scheduler killed a task.
    pub const KILL: &str = "kill";
    /// Rebalancing moved a task between devices.
    pub const MIGRATE: &str = "migrate";
    /// An unsound migration plan was refused by the world.
    pub const MIGRATE_REFUSED: &str = "migrate-refused";
    /// A policy planned a migration to the task's current device.
    pub const MIGRATE_NOOP: &str = "migrate-noop";
    /// A task's running request was preempted (channels suspended).
    pub const PREEMPT: &str = "preempt";
    /// Disengaged fair queueing entered an engagement barrier.
    pub const ENGAGE: &str = "engage";
    /// Sampling-window activity of a disengaged policy.
    pub const SAMPLE: &str = "sample";
    /// Fair queueing denied a task admission for the next free-run.
    pub const DENY: &str = "deny";
    /// Fair queueing re-entered free-run.
    pub const FREERUN: &str = "freerun";
    /// An overlong request was preempted or its owner killed.
    pub const OVERLONG: &str = "overlong";
    /// The timeslice token moved to a task.
    pub const TOKEN: &str = "token";
    /// The timeslice scheduler skipped an indebted candidate.
    pub const SKIP: &str = "skip";
    /// A timeslice holder was drained and charged overuse.
    pub const DRAIN: &str = "drain";
    /// An injected hang wedged a running request / armed a victim.
    pub const HANG: &str = "hang";
    /// The per-device watchdog killed a stagnant task.
    pub const WATCHDOG: &str = "watchdog";
    /// An injected crash killed a task outright.
    pub const CRASH: &str = "crash";
    /// An injected transient submission error (armed or retried).
    pub const SUBMIT_ERR: &str = "submit-error";
    /// A device was hot-removed; residents drain or park.
    pub const HOT_REMOVE: &str = "hot-remove";
    /// A removed device returned to service.
    pub const HOT_ADD: &str = "hot-add";
    /// A displaced task parked off-device awaiting capacity.
    pub const PARK: &str = "park";
    /// A watchdog-killed task was requeued for a fresh admission.
    pub const REQUEUE: &str = "requeue";
    /// A displaced task was re-staged onto a surviving device.
    pub const RECOVER: &str = "recover";
    /// A task was permanently lost to a fault.
    pub const LOST: &str = "lost";

    /// Every canonical label, for exhaustive queries.
    pub const ALL: &[&str] = &[
        ARRIVE,
        STAGE,
        REJECT,
        DEPART,
        FAULT,
        KILL,
        MIGRATE,
        MIGRATE_REFUSED,
        MIGRATE_NOOP,
        PREEMPT,
        ENGAGE,
        SAMPLE,
        DENY,
        FREERUN,
        OVERLONG,
        TOKEN,
        SKIP,
        DRAIN,
        HANG,
        WATCHDOG,
        CRASH,
        SUBMIT_ERR,
        HOT_REMOVE,
        HOT_ADD,
        PARK,
        REQUEUE,
        RECOVER,
        LOST,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_us: u64) -> TimelineSample {
        TimelineSample {
            at: SimTime::from_micros(at_us),
            events: at_us,
            live_tasks: 1,
            inflight_migrations: 0,
            devices: Vec::new(),
        }
    }

    #[test]
    fn metrics_mode_labels_round_trip() {
        for mode in [MetricsMode::Exact, MetricsMode::Streaming] {
            assert_eq!(MetricsMode::from_label(mode.label()), Some(mode));
        }
        assert_eq!(MetricsMode::from_label("bogus"), None);
        assert_eq!(MetricsMode::default(), MetricsMode::Exact);
    }

    #[test]
    fn stat_key_indices_are_dense_and_labels_unique() {
        let mut labels = std::collections::HashSet::new();
        for (i, &k) in StatKey::ALL.iter().enumerate() {
            assert_eq!(k.index(), i, "{k:?} index not dense");
            assert!(labels.insert(k.label()), "duplicate label {}", k.label());
        }
    }

    #[test]
    fn timeline_ring_drops_oldest() {
        let mut tl = Timeline::with_capacity(3);
        for i in 0..5 {
            tl.push(sample(i));
        }
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.dropped(), 2);
        assert_eq!(tl.iter().next().unwrap().at, SimTime::from_micros(2));
        assert_eq!(tl.capacity(), 3);
    }

    #[test]
    fn default_timeline_is_the_off_placeholder() {
        let tl = Timeline::default();
        assert!(tl.is_empty());
        assert_eq!(tl.capacity(), 0);
        assert_eq!(tl.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_timeline_panics() {
        let _ = Timeline::with_capacity(0);
    }

    #[test]
    fn canonical_labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &l in labels::ALL {
            assert!(seen.insert(l), "duplicate canonical label {l}");
        }
    }
}
