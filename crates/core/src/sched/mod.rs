//! The scheduler interface and the policy implementations.
//!
//! A [`Scheduler`] is a passive policy object driven by the simulation
//! [`World`](crate::world::World) through a small set of events — page
//! faults on protected channel registers, polling-thread ticks, policy
//! timers, and (when the policy is entitled to synchronous knowledge,
//! i.e. during engaged operation) request completions. The policy acts
//! on the system exclusively through [`SchedCtx`](crate::world::SchedCtx):
//! protecting/unprotecting channel-register pages, waking parked tasks,
//! arming timers, and killing misbehaving tasks.
//!
//! This is precisely the interface the paper argues vendors should
//! document (§6.1): scheduling events plus per-channel reference
//! counters, with no visibility into request payloads.

mod dfq;
mod direct;
mod drr;
mod sfq;
mod timeslice;

pub use dfq::DisengagedFairQueueing;
pub use direct::DirectAccess;
pub use drr::EngagedDrr;
pub use sfq::EngagedSfq;
pub use timeslice::Timeslice;

use neon_gpu::{ChannelId, CompletedRequest, TaskId};

use crate::cost::SchedParams;
use crate::world::SchedCtx;

/// What to do with an intercepted submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Let the submission proceed (the faulting instruction is
    /// single-stepped; the page stays protected unless the policy
    /// unprotects it).
    Allow,
    /// Park the task; the submission is retried when the policy wakes
    /// the task via [`SchedCtx::wake_task`].
    Park,
}

/// A scheduling policy.
///
/// All methods receive a [`SchedCtx`] giving controlled access to the
/// kernel-observable system state.
pub trait Scheduler {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Called once before the simulation starts, after all initial
    /// tasks are admitted.
    fn init(&mut self, ctx: &mut SchedCtx<'_>);

    /// A task joined (its context and channels exist).
    fn on_task_admitted(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId);

    /// A task exited gracefully.
    fn on_task_exit(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId);

    /// A submission faulted on a protected channel register.
    fn on_fault(
        &mut self,
        ctx: &mut SchedCtx<'_>,
        task: TaskId,
        channel: ChannelId,
    ) -> FaultDecision;

    /// Periodic polling-thread tick (reference-counter scan).
    fn on_poll(&mut self, ctx: &mut SchedCtx<'_>);

    /// A policy timer armed via [`SchedCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut SchedCtx<'_>, tag: u64);

    /// A request completed. Policies must only act on this during
    /// engaged operation (per-request interception or sampling), when
    /// the real system would learn of completions through prompted
    /// polling; disengaged accounting must rely on reference counters
    /// read at polls.
    fn on_completion(&mut self, ctx: &mut SchedCtx<'_>, done: &CompletedRequest);
}

/// The scheduling policies available to experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// No OS involvement: the vendor's direct-access baseline.
    Direct,
    /// Token-based timeslice with overuse control; every request
    /// intercepted (§3.1).
    Timeslice,
    /// Disengaged Timeslice: the token holder runs unintercepted (§3.2).
    DisengagedTimeslice,
    /// Disengaged Fair Queueing (§3.3).
    DisengagedFairQueueing,
    /// Disengaged Fair Queueing with vendor-provided hardware usage
    /// statistics — the §6.1 production mode the paper anticipates:
    /// exact accounting, no sampling, no barrier.
    DisengagedFairQueueingVendor,
    /// Engaged start-time fair queueing baseline (classic per-request
    /// FQ from the related-work family; used in ablations).
    EngagedSfq,
    /// Engaged deficit-round-robin baseline (GERM-style; ablations).
    EngagedDrr,
}

impl SchedulerKind {
    /// Every policy, for exhaustive sweeps.
    pub const ALL: [SchedulerKind; 7] = [
        SchedulerKind::Direct,
        SchedulerKind::Timeslice,
        SchedulerKind::DisengagedTimeslice,
        SchedulerKind::DisengagedFairQueueing,
        SchedulerKind::DisengagedFairQueueingVendor,
        SchedulerKind::EngagedSfq,
        SchedulerKind::EngagedDrr,
    ];

    /// The four policies evaluated in the paper's figures.
    pub const PAPER: [SchedulerKind; 4] = [
        SchedulerKind::Direct,
        SchedulerKind::Timeslice,
        SchedulerKind::DisengagedTimeslice,
        SchedulerKind::DisengagedFairQueueing,
    ];

    /// Instantiates the policy with the given parameters.
    pub fn build(self, params: SchedParams) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Direct => Box::new(DirectAccess::new()),
            SchedulerKind::Timeslice => Box::new(Timeslice::engaged(params)),
            SchedulerKind::DisengagedTimeslice => Box::new(Timeslice::disengaged(params)),
            SchedulerKind::DisengagedFairQueueing => Box::new(DisengagedFairQueueing::new(params)),
            SchedulerKind::DisengagedFairQueueingVendor => {
                Box::new(DisengagedFairQueueing::new(params).with_vendor_statistics())
            }
            SchedulerKind::EngagedSfq => Box::new(EngagedSfq::new(params)),
            SchedulerKind::EngagedDrr => Box::new(EngagedDrr::new(params)),
        }
    }

    /// Parses the [`SchedulerKind::label`] form back into a kind
    /// (scenario files and CLI arguments name policies by label).
    pub fn from_label(label: &str) -> Option<SchedulerKind> {
        SchedulerKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Direct => "direct",
            SchedulerKind::Timeslice => "timeslice",
            SchedulerKind::DisengagedTimeslice => "disengaged-ts",
            SchedulerKind::DisengagedFairQueueing => "disengaged-fq",
            SchedulerKind::DisengagedFairQueueingVendor => "disengaged-fq-hw",
            SchedulerKind::EngagedSfq => "engaged-sfq",
            SchedulerKind::EngagedDrr => "engaged-drr",
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A scheduler that does nothing; placeholder during dispatch and a
/// useful null object in tests.
#[derive(Debug, Default)]
pub(crate) struct NullScheduler;

impl Scheduler for NullScheduler {
    fn name(&self) -> &'static str {
        "null"
    }
    fn init(&mut self, _ctx: &mut SchedCtx<'_>) {}
    fn on_task_admitted(&mut self, _ctx: &mut SchedCtx<'_>, _task: TaskId) {}
    fn on_task_exit(&mut self, _ctx: &mut SchedCtx<'_>, _task: TaskId) {}
    fn on_fault(
        &mut self,
        _ctx: &mut SchedCtx<'_>,
        _task: TaskId,
        _channel: ChannelId,
    ) -> FaultDecision {
        FaultDecision::Allow
    }
    fn on_poll(&mut self, _ctx: &mut SchedCtx<'_>) {}
    fn on_timer(&mut self, _ctx: &mut SchedCtx<'_>, _tag: u64) {}
    fn on_completion(&mut self, _ctx: &mut SchedCtx<'_>, _done: &CompletedRequest) {}
}
