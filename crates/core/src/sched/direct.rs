//! Direct device access: the vendor baseline with no OS involvement.
//!
//! No channel is ever protected, so no submission ever faults and the
//! device arbitrates among channels by itself (weighted round-robin by
//! request count) — fast, work-conserving, and unfair, exactly as the
//! paper's §5.3 direct-access columns show.

use neon_gpu::{ChannelId, CompletedRequest, TaskId};

use crate::sched::{FaultDecision, Scheduler};
use crate::world::SchedCtx;

/// The no-scheduling baseline.
#[derive(Debug, Default)]
pub struct DirectAccess {
    _private: (),
}

impl DirectAccess {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        DirectAccess::default()
    }
}

impl Scheduler for DirectAccess {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn init(&mut self, _ctx: &mut SchedCtx<'_>) {}

    fn on_task_admitted(&mut self, _ctx: &mut SchedCtx<'_>, _task: TaskId) {}

    fn on_task_exit(&mut self, _ctx: &mut SchedCtx<'_>, _task: TaskId) {}

    fn on_fault(
        &mut self,
        _ctx: &mut SchedCtx<'_>,
        _task: TaskId,
        _channel: ChannelId,
    ) -> FaultDecision {
        // Nothing is protected under direct access; a fault would be a
        // driver bug. Permit it so the system makes progress anyway.
        FaultDecision::Allow
    }

    fn on_poll(&mut self, _ctx: &mut SchedCtx<'_>) {}

    fn on_timer(&mut self, _ctx: &mut SchedCtx<'_>, _tag: u64) {}

    fn on_completion(&mut self, _ctx: &mut SchedCtx<'_>, _done: &CompletedRequest) {}
}
