//! Disengaged Fair Queueing (§3.3).
//!
//! The scheduler alternates between long **free-run** periods — all
//! non-denied tasks access the device directly, unintercepted — and
//! short **engagement episodes**:
//!
//! 1. *Barrier*: every channel-register page is protected; new
//!    submissions park.
//! 2. *Drain*: the kernel waits (at polling granularity) for the device
//!    to quiesce, observed through the per-channel reference counters.
//! 3. *Sampling*: each task that issued requests in the preceding
//!    free-run gets brief exclusive access (5 ms or 32 observed
//!    requests, whichever first) with every submission intercepted, to
//!    estimate its mean request run time `s_t`. A request still in
//!    flight when the window closes is observed to completion (the
//!    drain is exclusive anyway), so tasks whose requests outlast the
//!    window — a 20 ms batcher, say — are still sampled and charged.
//! 4. *Virtual-time maintenance*: each task's virtual time advances by
//!    its estimated usage of the preceding free-run; the system virtual
//!    time becomes the oldest virtual time among currently active
//!    tasks, and idle tasks are forwarded to it (no hoarding).
//! 5. *Decision*: tasks whose virtual time leads the system virtual
//!    time by at least the upcoming interval length are denied access
//!    for that interval (their pages stay protected). The upcoming
//!    free-run is 5× the engagement length, floored and **capped**
//!    ([`SchedParams::freerun_max`]): engagement length is partly
//!    under tenant control (drains stretch with request size), and an
//!    uncapped interval lets a large-request tenant push the denial
//!    threshold out faster than its virtual-time lead grows.
//!
//! ## Usage estimation (and its faithful imprecision)
//!
//! The kernel cannot count per-channel completions (reference values
//! are application-chosen, not unit increments), so — like the paper —
//! it assumes the device cycles round-robin among active channels and
//! attributes to each task a share proportional to its sampled `s_t`.
//! Activity is assessed at polling granularity: a task is "active" in a
//! tick if its counters show outstanding or newly completed work. The
//! share heuristic is deliberately blind to the device's true
//! arbitration weights, so the paper's documented anomalies (glxgears'
//! excess slowdown vs small-request OpenCL co-runners; multi-channel
//! compute+graphics tasks like oclParticles being undercharged)
//! reproduce rather than being hard-coded.

use std::collections::{BTreeMap, VecDeque};

use neon_gpu::{ChannelId, CompletedRequest, TaskId};
use neon_sim::{SimDuration, SimTime};

use crate::cost::SchedParams;
use crate::sched::{FaultDecision, Scheduler};
use crate::telemetry::StatKey;
use crate::world::SchedCtx;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    FreeRun,
    Draining,
    Sampling,
}

#[derive(Debug, Clone, Copy)]
struct SampleRun {
    task: TaskId,
    started: SimTime,
    completions: u64,
    last_completion: SimTime,
    /// Summed per-request device occupancy, measured exactly during
    /// the engaged window (fault-time submission + prompted-poll
    /// completion; the paper verified such estimates within 5 % of
    /// profiling tools).
    occupancy: SimDuration,
    /// The window has closed (5 ms timer or request budget): no new
    /// submissions are admitted, but a request still *in flight* is
    /// observed to completion before the sample is finalized. Without
    /// this, a task whose requests outlast the window (e.g. a 20 ms
    /// batcher against the 5 ms cap) would never be sampled at all —
    /// its drain time charged to nobody and its stale estimate letting
    /// it dodge denial forever.
    window_closed: bool,
}

/// The Disengaged Fair Queueing policy.
#[derive(Debug)]
pub struct DisengagedFairQueueing {
    params: SchedParams,
    phase: Phase,
    /// Per-task virtual time (cumulative estimated usage).
    vt: BTreeMap<TaskId, SimDuration>,
    denied: Vec<TaskId>,
    /// Free-run activity record: one bitmask of active tasks per poll
    /// tick (task raw id = bit index; ≤ 64 tasks).
    tick_masks: Vec<u64>,
    /// Per-channel completion counters at the last poll tick, indexed
    /// by channel index ([`Self::UNKNOWN`] = no snapshot). A flat
    /// array, not a map: this is read and written for every channel on
    /// every poll tick of every free-run.
    last_tick_completions: Vec<u64>,
    /// Reusable task-id buffer for the per-tick live-task walk.
    scratch: Vec<TaskId>,
    engagement_start: SimTime,
    sample_queue: VecDeque<TaskId>,
    current: Option<SampleRun>,
    awaiting_sample_drain: bool,
    /// Sampled mean request run time per task, µs (persists across
    /// engagements; refreshed whenever the task is sampled).
    samples: BTreeMap<TaskId, f64>,
    /// Tasks currently suspended by hardware preemption (§6.2);
    /// resumed at the next engagement decision.
    suspended: Vec<TaskId>,
    /// Use vendor-provided hardware usage statistics (§6.1 future
    /// work) instead of sampling + round-robin estimation. Engagements
    /// become instantaneous bookkeeping: no barrier, no drain, no
    /// sampling windows.
    vendor_stats: bool,
    /// Cumulative vendor usage at the last engagement, per task.
    last_vendor_usage: BTreeMap<TaskId, SimDuration>,
    /// Armed engagement timer tag.
    engage_timer: Option<u64>,
    /// Armed sampling timer (tag, cancellation token).
    sample_timer: Option<(u64, u64)>,
    timer_seq: u64,
}

impl DisengagedFairQueueing {
    /// Creates the policy with the given parameters.
    pub fn new(params: SchedParams) -> Self {
        DisengagedFairQueueing {
            params,
            phase: Phase::FreeRun,
            vt: BTreeMap::new(),
            denied: Vec::new(),
            tick_masks: Vec::new(),
            last_tick_completions: Vec::new(),
            scratch: Vec::new(),
            engagement_start: SimTime::ZERO,
            sample_queue: VecDeque::new(),
            current: None,
            awaiting_sample_drain: false,
            samples: BTreeMap::new(),
            suspended: Vec::new(),
            vendor_stats: false,
            last_vendor_usage: BTreeMap::new(),
            engage_timer: None,
            sample_timer: None,
            timer_seq: 0,
        }
    }

    /// Switches the policy to vendor-provided hardware statistics
    /// (§6.1): per-task cumulative usage is read from the device, so
    /// engagement needs no barrier, drain, or sampling. This is the
    /// production mode the paper anticipates; the default constructor
    /// models the reverse-engineered prototype.
    pub fn with_vendor_statistics(mut self) -> Self {
        self.vendor_stats = true;
        self
    }

    /// Virtual time of a task (test/diagnostic accessor).
    pub fn virtual_time_of(&self, task: TaskId) -> SimDuration {
        self.vt.get(&task).copied().unwrap_or(SimDuration::ZERO)
    }

    /// Tasks denied for the current free-run interval (diagnostics).
    pub fn denied_tasks(&self) -> &[TaskId] {
        &self.denied
    }

    fn next_timer_tag(&mut self) -> u64 {
        self.timer_seq += 1;
        self.timer_seq
    }

    /// Sentinel for "no completion snapshot taken on this channel".
    const UNKNOWN: u64 = u64::MAX;

    /// The channel's completion count at the last snapshot, or
    /// `fallback` when none was taken (matching the old map's
    /// `get(..).unwrap_or(done)` semantics: an unseen channel is never
    /// considered newly active).
    fn last_completion_of(&self, ch: ChannelId, fallback: u64) -> u64 {
        match self.last_tick_completions.get(ch.index()) {
            Some(&v) if v != Self::UNKNOWN => v,
            _ => fallback,
        }
    }

    fn set_last_completion(&mut self, ch: ChannelId, value: u64) {
        let i = ch.index();
        if self.last_tick_completions.len() <= i {
            self.last_tick_completions.resize(i + 1, Self::UNKNOWN);
        }
        self.last_tick_completions[i] = value;
    }

    // ------------------------------------------------------------------
    // Engagement flow
    // ------------------------------------------------------------------

    fn begin_engagement(&mut self, ctx: &mut SchedCtx<'_>) {
        self.engagement_start = ctx.now();
        if self.vendor_stats {
            // Hardware statistics make the whole episode a bookkeeping
            // step: charge exact usage deltas and decide, with the
            // device still running.
            for t in ctx.live_tasks() {
                let total = ctx.vendor_usage(t);
                let last = self
                    .last_vendor_usage
                    .insert(t, total)
                    .unwrap_or(SimDuration::ZERO);
                *self.vt.entry(t).or_default() += total.saturating_sub(last);
            }
            self.finish_engagement(ctx);
            return;
        }
        self.phase = Phase::Draining;
        ctx.protect_all();
        ctx.trace_with("engage", || "barrier".to_string());
        if ctx.gpu_fully_drained() {
            self.start_sampling(ctx);
        }
    }

    fn start_sampling(&mut self, ctx: &mut SchedCtx<'_>) {
        self.phase = Phase::Sampling;
        // Sample every task that issued requests in the preceding
        // free-run (any active tick) or is eager right now (parked).
        let mut queue: Vec<TaskId> = ctx
            .live_tasks()
            .into_iter()
            .filter(|t| {
                let bit = 1u64 << (t.raw() % 64);
                let was_active = self.tick_masks.iter().any(|m| m & bit != 0);
                was_active || ctx.is_parked(*t)
            })
            .collect();
        queue.sort();
        self.sample_queue = queue.into();
        let queued = self.sample_queue.len();
        ctx.trace_with("sample", || format!("{queued} tasks"));
        self.sample_next(ctx);
    }

    fn sample_next(&mut self, ctx: &mut SchedCtx<'_>) {
        self.current = None;
        self.awaiting_sample_drain = false;
        if self.sample_queue.is_empty() {
            self.finish_engagement(ctx);
            return;
        }
        // Exclusivity: the previous sample's pipelined leftovers must
        // finish before the next window opens.
        if !ctx.gpu_fully_drained() {
            self.awaiting_sample_drain = true;
            return;
        }
        // lint: allow(unchecked-unwrap) — the is_empty early-return above
        // guarantees a queued task
        let task = self.sample_queue.pop_front().expect("queue nonempty");
        let now = ctx.now();
        self.current = Some(SampleRun {
            task,
            started: now,
            completions: 0,
            last_completion: now,
            occupancy: SimDuration::ZERO,
            window_closed: false,
        });
        ctx.wake_task(task);
        ctx.note(StatKey::SamplingWindowsOpened);
        let tag = self.next_timer_tag();
        let token = ctx.set_timer(self.params.sampling_max, tag);
        self.sample_timer = Some((tag, token));
        ctx.trace_with("sample", || format!("window for {task}"));
    }

    /// The sampling window expires (timer or request budget). If the
    /// sampled task still has a request on the device, the sample
    /// stays open — submissions are no longer admitted, but the
    /// in-flight completion is observed (prompted polling) and charged
    /// before the next window; otherwise the sample ends now.
    fn close_sample_window(&mut self, ctx: &mut SchedCtx<'_>) {
        if let Some((_, token)) = self.sample_timer.take() {
            ctx.cancel_timer(token);
        }
        let Some(run) = self.current.as_mut() else {
            return;
        };
        run.window_closed = true;
        if ctx.gpu_fully_drained() {
            self.end_sample(ctx);
        }
    }

    fn end_sample(&mut self, ctx: &mut SchedCtx<'_>) {
        if let Some((_, token)) = self.sample_timer.take() {
            ctx.cancel_timer(token);
        }
        let Some(run) = self.current.take() else {
            return;
        };
        ctx.note(StatKey::SamplingWindowsClosed);
        if run.completions > 0 {
            let s_us = run.occupancy.as_micros_f64() / run.completions as f64;
            self.samples.insert(run.task, s_us.max(0.1));
            // The exclusive sampling window is real usage: charge it.
            *self.vt.entry(run.task).or_default() += run.occupancy;
            let window = run.last_completion.saturating_duration_since(run.started);
            ctx.trace_with("sample", || {
                format!(
                    "{}: {:.1}us over {} reqs ({} window)",
                    run.task, s_us, run.completions, window
                )
            });
        }
        self.sample_next(ctx);
    }

    fn finish_engagement(&mut self, ctx: &mut SchedCtx<'_>) {
        let now = ctx.now();
        let engagement = now.saturating_duration_since(self.engagement_start);
        let next_freerun = (engagement * self.params.freerun_multiplier as u64)
            .max(self.params.freerun_min)
            .min(self.params.freerun_max.max(self.params.freerun_min));

        // --- Step 1: charge estimated free-run usage. -----------------
        // (Skipped in vendor-statistics mode: exact deltas were charged
        // at engagement entry.) Round-robin assumption: within each
        // active tick, device time divides proportionally to the
        // sampled mean request run times.
        let tick = ctx.cost().polling_period;
        let live = ctx.live_tasks();
        let fallback = self.mean_sample().unwrap_or(100.0);
        let mut charge: BTreeMap<TaskId, f64> = BTreeMap::new(); // µs
        let charge_masks: &[u64] = if self.vendor_stats {
            &[]
        } else {
            &self.tick_masks
        };
        for mask in charge_masks {
            let mut denom = 0.0;
            for &t in &live {
                if mask & (1u64 << (t.raw() % 64)) != 0 {
                    denom += self.samples.get(&t).copied().unwrap_or(fallback);
                }
            }
            if denom <= 0.0 {
                continue;
            }
            for &t in &live {
                if mask & (1u64 << (t.raw() % 64)) != 0 {
                    let s = self.samples.get(&t).copied().unwrap_or(fallback);
                    *charge.entry(t).or_default() += tick.as_micros_f64() * s / denom;
                }
            }
        }
        for (t, us) in charge {
            *self.vt.entry(t).or_default() += SimDuration::from_micros_f64(us);
        }

        // --- Step 2: system virtual time + idle forwarding. -----------
        // A task is "active" if it has demand right now (outstanding
        // work or a parked submission) or kept the device busy for a
        // majority of the preceding free-run's polling ticks. Tasks
        // below that duty cycle are treated as (mostly) idle: their
        // virtual time is forwarded so they cannot hoard credit —
        // which is also what keeps the scheduler work-conserving for
        // nonsaturating co-runners (Figure 9/10).
        let total_ticks = self.tick_masks.len();
        let duty = |t: TaskId| -> f64 {
            if total_ticks == 0 {
                return 0.0;
            }
            let bit = 1u64 << (t.raw() % 64);
            let active = self.tick_masks.iter().filter(|m| *m & bit != 0).count();
            active as f64 / total_ticks as f64
        };
        let active_now: Vec<TaskId> = live
            .iter()
            .copied()
            .filter(|&t| {
                duty(t) >= 0.5 || ((ctx.has_outstanding(t) || ctx.is_parked(t)) && duty(t) >= 0.25)
            })
            .collect();
        let sys_vt = active_now
            .iter()
            .map(|t| self.vt.get(t).copied().unwrap_or(SimDuration::ZERO))
            .min();
        if let Some(sys_vt) = sys_vt {
            for &t in &live {
                if !active_now.contains(&t) {
                    let vt = self.vt.entry(t).or_default();
                    *vt = (*vt).max(sys_vt);
                }
            }
            // --- Step 3: deny set for the upcoming interval. ----------
            self.denied = live
                .iter()
                .copied()
                .filter(|t| {
                    let vt = self.vt.get(t).copied().unwrap_or(SimDuration::ZERO);
                    vt.saturating_sub(sys_vt) >= next_freerun
                })
                .collect();
        } else {
            self.denied.clear();
        }

        // --- Step 4: open the free-run. --------------------------------
        // Suspended (preempted) tasks get another chance each interval
        // — unless the deny decision says they are ahead, in which
        // case the channel mask stays on (page protection alone cannot
        // stop already-queued work from dispatching).
        for t in std::mem::take(&mut self.suspended) {
            if self.denied.contains(&t) {
                self.suspended.push(t);
            } else {
                ctx.resume_task_channels(t);
            }
        }
        for &t in &live {
            if self.denied.contains(&t) {
                // Explicit protection matters in vendor-statistics
                // mode, where no barrier preceded this decision.
                ctx.protect_task(t);
                ctx.note(StatKey::Denials);
                ctx.trace_with("deny", || format!("{t}"));
            } else {
                ctx.unprotect_task(t);
                ctx.wake_task(t);
            }
        }
        self.phase = Phase::FreeRun;
        self.tick_masks.clear();
        self.snapshot_counters(ctx);
        let tag = self.next_timer_tag();
        ctx.set_timer(next_freerun, tag);
        self.engage_timer = Some(tag);
        ctx.trace_with("freerun", || {
            format!("{next_freerun} after {engagement} engagement")
        });
    }

    fn mean_sample(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.values().sum::<f64>() / self.samples.len() as f64)
    }

    fn snapshot_counters(&mut self, ctx: &SchedCtx<'_>) {
        self.last_tick_completions.fill(Self::UNKNOWN);
        let mut live = std::mem::take(&mut self.scratch);
        ctx.live_tasks_into(&mut live);
        for &t in &live {
            for i in 0..ctx.channel_count(t) {
                let ch = ctx.channel_of(t, i);
                self.set_last_completion(ch, ctx.channel_completions(ch));
            }
        }
        self.scratch = live;
    }

    fn record_tick(&mut self, ctx: &mut SchedCtx<'_>) {
        let mut mask = 0u64;
        let mut live = std::mem::take(&mut self.scratch);
        ctx.live_tasks_into(&mut live);
        for &t in &live {
            // Only *running* work counts toward the usage charge: a
            // parked (e.g. denied) task consumed nothing. Parked tasks
            // still enter the sampling set via `is_parked` at
            // engagement time.
            let mut active = ctx.has_outstanding(t);
            if !active {
                for i in 0..ctx.channel_count(t) {
                    let ch = ctx.channel_of(t, i);
                    let done = ctx.channel_completions(ch);
                    if done > self.last_completion_of(ch, done) {
                        active = true;
                    }
                }
            }
            for i in 0..ctx.channel_count(t) {
                let ch = ctx.channel_of(t, i);
                self.set_last_completion(ch, ctx.channel_completions(ch));
            }
            if active {
                mask |= 1u64 << (t.raw() % 64);
            }
        }
        self.tick_masks.push(mask);
        self.scratch = live;
    }

    fn forget_task(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        self.suspended.retain(|&t| t != task);
        self.vt.remove(&task);
        self.denied.retain(|&t| t != task);
        self.sample_queue.retain(|&t| t != task);
        self.samples.remove(&task);
        self.last_vendor_usage.remove(&task);
        for i in 0..ctx.channel_count(task) {
            let ch = ctx.channel_of(task, i);
            if let Some(v) = self.last_tick_completions.get_mut(ch.index()) {
                *v = Self::UNKNOWN;
            }
        }
        if self.current.map(|r| r.task) == Some(task) {
            self.end_sample(ctx);
        }
    }
}

impl Scheduler for DisengagedFairQueueing {
    fn name(&self) -> &'static str {
        if self.vendor_stats {
            "disengaged-fq-hw"
        } else {
            "disengaged-fq"
        }
    }

    fn init(&mut self, ctx: &mut SchedCtx<'_>) {
        // Initial free-run before any engagement has been measured:
        // 5 × the maximum sampling window, matching the paper's
        // standalone ~25 ms description.
        let initial = self.params.sampling_max * self.params.freerun_multiplier as u64;
        let tag = self.next_timer_tag();
        ctx.set_timer(initial.max(self.params.freerun_min), tag);
        self.engage_timer = Some(tag);
        self.snapshot_counters(ctx);
    }

    fn on_task_admitted(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        // A mid-run arrival starts at the system virtual time (the
        // minimum among incumbents), not at zero: fair queueing grants
        // no credit for time before admission, so a newcomer cannot
        // force every incumbent into denial while it "catches up".
        let floor = ctx
            .live_tasks()
            .into_iter()
            .filter(|&t| t != task)
            .filter_map(|t| self.vt.get(&t).copied())
            .min()
            .unwrap_or(SimDuration::ZERO);
        self.vt.insert(task, floor);
        // Arrivals during an engagement must not pierce the barrier:
        // their fresh channels are unprotected by default, so protect
        // them until the next decision point reopens the free-run.
        if self.phase != Phase::FreeRun {
            ctx.protect_task(task);
        }
    }

    fn on_task_exit(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        self.forget_task(ctx, task);
    }

    fn on_fault(
        &mut self,
        _ctx: &mut SchedCtx<'_>,
        task: TaskId,
        _channel: ChannelId,
    ) -> FaultDecision {
        match self.phase {
            // Free-run faults come only from denied tasks: park them
            // until the next engagement reconsiders.
            Phase::FreeRun => FaultDecision::Park,
            Phase::Draining => FaultDecision::Park,
            Phase::Sampling => {
                // Only the sampled task submits, and only while its
                // window is open — after the window closes it parks
                // like everyone else (its in-flight request may still
                // be draining).
                if self
                    .current
                    .is_some_and(|r| r.task == task && !r.window_closed)
                {
                    FaultDecision::Allow
                } else {
                    FaultDecision::Park
                }
            }
        }
    }

    fn on_poll(&mut self, ctx: &mut SchedCtx<'_>) {
        for task in ctx
            .overlong_tasks(self.params.overlong_limit)
            .into_iter()
            .flatten()
        {
            if self.params.hardware_preemption {
                // §6.2: tolerate requests of arbitrary length — swap
                // the offender out and let it retry next interval.
                ctx.trace_with("overlong", || format!("preempting {task}"));
                ctx.suspend_task_channels(task);
                if !self.suspended.contains(&task) {
                    self.suspended.push(task);
                }
            } else {
                ctx.trace_with("overlong", || format!("killing {task}"));
                ctx.kill_task(task);
                self.forget_task(ctx, task);
            }
        }
        match self.phase {
            Phase::FreeRun => self.record_tick(ctx),
            Phase::Draining => {
                if ctx.gpu_fully_drained() {
                    self.start_sampling(ctx);
                }
            }
            Phase::Sampling => {
                if self.awaiting_sample_drain && ctx.gpu_fully_drained() {
                    self.sample_next(ctx);
                } else if self.current.is_some_and(|r| r.window_closed) && ctx.gpu_fully_drained() {
                    self.end_sample(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut SchedCtx<'_>, tag: u64) {
        if self.engage_timer == Some(tag) && self.phase == Phase::FreeRun {
            self.engage_timer = None;
            self.begin_engagement(ctx);
        } else if self.sample_timer.map(|(t, _)| t) == Some(tag) && self.phase == Phase::Sampling {
            self.sample_timer = None;
            self.close_sample_window(ctx);
        }
    }

    fn on_completion(&mut self, ctx: &mut SchedCtx<'_>, done: &CompletedRequest) {
        // During engagement the scheduler prompts the polling thread,
        // so drain completion is observed without tick quantization.
        if self.phase == Phase::Draining {
            if ctx.gpu_fully_drained() {
                self.start_sampling(ctx);
            }
            return;
        }
        if self.phase != Phase::Sampling {
            return; // disengaged: completions observed only via counters
        }
        if self.awaiting_sample_drain && ctx.gpu_fully_drained() {
            self.sample_next(ctx);
            return;
        }
        let Some(run) = self.current.as_mut() else {
            return;
        };
        if run.task != done.task {
            return;
        }
        run.completions += 1;
        run.last_completion = ctx.now();
        run.occupancy += done.occupancy;
        if run.completions >= self.params.sampling_requests {
            run.window_closed = true;
        }
        if run.window_closed && ctx.gpu_fully_drained() {
            self.end_sample(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::FixedLoop;
    use crate::world::{World, WorldConfig};

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn dfq_world(tasks: &[(u64, u64)]) -> World {
        let mut world = World::new(
            WorldConfig::default(),
            Box::new(DisengagedFairQueueing::new(SchedParams::default())),
        );
        for (i, &(service, gap)) in tasks.iter().enumerate() {
            world
                .add_task(Box::new(FixedLoop::endless(
                    format!("t{i}"),
                    us(service),
                    us(gap),
                )))
                .unwrap();
        }
        world
    }

    #[test]
    fn free_runs_dominate_the_timeline() {
        let mut world = dfq_world(&[(50, 0), (500, 0)]);
        let report = world.run(SimDuration::from_millis(500));
        // The bulk of submissions bypass the kernel entirely.
        let total = report.faults + report.direct_submits;
        assert!(
            report.direct_submits as f64 > 0.7 * total as f64,
            "only {}/{} submissions were direct",
            report.direct_submits,
            total
        );
    }

    #[test]
    fn saturating_tasks_converge_to_equal_usage() {
        let mut world = dfq_world(&[(40, 0), (900, 0)]);
        let report = world.run(SimDuration::from_secs(1));
        let a = report.tasks[0].usage;
        let b = report.tasks[1].usage;
        let ratio = b.ratio(a);
        assert!(
            (0.6..1.7).contains(&ratio),
            "virtual-time denial failed to equalize: ratio {ratio:.2}"
        );
    }

    #[test]
    fn denial_applies_to_the_leader_not_the_laggard() {
        // Inspect the policy state directly through a custom run: the
        // task with larger requests must be the one denied.
        let params = SchedParams::default();
        let sched = DisengagedFairQueueing::new(params.clone());
        let mut world = World::new(WorldConfig::default(), Box::new(sched));
        world
            .add_task(Box::new(FixedLoop::endless("small", us(40), us(0))))
            .unwrap();
        world
            .add_task(Box::new(FixedLoop::endless("large", us(900), us(0))))
            .unwrap();
        let report = world.run(SimDuration::from_millis(400));
        // The laggard keeps making progress throughout.
        assert!(report.tasks[0].rounds_completed() > 1000);
        assert!(report.tasks[1].rounds_completed() > 100);
    }

    #[test]
    fn virtual_times_are_monotone_and_reset_free() {
        let params = SchedParams::default();
        let mut dfq = DisengagedFairQueueing::new(params);
        let t = TaskId::new(0);
        dfq.vt.insert(t, SimDuration::from_millis(3));
        assert_eq!(dfq.virtual_time_of(t), SimDuration::from_millis(3));
        assert_eq!(dfq.virtual_time_of(TaskId::new(9)), SimDuration::ZERO);
        assert!(dfq.denied_tasks().is_empty());
    }

    #[test]
    fn sampling_measures_request_sizes_accurately() {
        // After a run, the sampled estimate for a 200µs-request task
        // should be near 200µs (occupancy-based estimation).
        let params = SchedParams::default();
        let sched = DisengagedFairQueueing::new(params.clone());
        let mut world = World::new(WorldConfig::default(), Box::new(sched));
        world
            .add_task(Box::new(FixedLoop::endless("x", us(200), us(0))))
            .unwrap();
        world
            .add_task(Box::new(FixedLoop::endless("y", us(80), us(0))))
            .unwrap();
        let report = world.run(SimDuration::from_millis(400));
        // Indirect check: with accurate estimates both tasks keep
        // completing work (no runaway denial from a bad estimate).
        for t in &report.tasks {
            assert!(t.rounds_completed() > 200, "{} stalled", t.name);
        }
    }

    #[test]
    fn single_task_overhead_is_bounded() {
        let mut world = dfq_world(&[(100, 0)]);
        let report = world.run(SimDuration::from_millis(500));
        let rounds = report.tasks[0].rounds_completed();
        // Direct access would complete ~4800 rounds (100µs + costs);
        // DFQ must stay within ~10%.
        assert!(rounds > 4200, "DFQ solo overhead too high: {rounds} rounds");
    }
}
