//! Engaged start-time fair queueing baseline.
//!
//! A classic fair-queueing scheduler from the family the paper cites
//! ([10, 14, 18, 30, 33]): every submission is intercepted, tagged with
//! a start tag `max(v, finish(task))` and a finish tag
//! `start + estimated service`, and dispatched in start-tag order with
//! a single request outstanding. It provides excellent fairness but
//! pays the per-request kernel-crossing cost on a fast accelerator —
//! the overhead disengaged scheduling exists to avoid. Included for the
//! ablation benchmarks, not as a paper figure.

use std::collections::BTreeMap;

use neon_gpu::{ChannelId, CompletedRequest, TaskId};
use neon_sim::SimTime;

use crate::cost::SchedParams;
use crate::sched::{FaultDecision, Scheduler};
use crate::world::SchedCtx;

/// Virtual-time unit: microseconds as f64.
type Tag = f64;

/// The engaged SFQ baseline policy.
#[derive(Debug)]
pub struct EngagedSfq {
    params: SchedParams,
    /// Global virtual time: start tag of the last dispatched request.
    vtime: Tag,
    /// Per-task finish tag of its most recent request.
    finish: BTreeMap<TaskId, Tag>,
    /// Per-task estimated service (µs), updated from observations.
    estimate: BTreeMap<TaskId, f64>,
    /// Tasks with a parked submission, with their start tags.
    waiting: BTreeMap<TaskId, Tag>,
    /// Requests currently allowed onto the device.
    in_flight: usize,
    /// Dispatch time of the in-flight request, for estimate updates.
    dispatched_at: Option<(TaskId, SimTime)>,
}

/// Initial service estimate before any observation (µs).
const DEFAULT_ESTIMATE_US: f64 = 100.0;

impl EngagedSfq {
    /// Creates the baseline with the given parameters.
    pub fn new(params: SchedParams) -> Self {
        EngagedSfq {
            params,
            vtime: 0.0,
            finish: BTreeMap::new(),
            estimate: BTreeMap::new(),
            waiting: BTreeMap::new(),
            in_flight: 0,
            dispatched_at: None,
        }
    }

    fn start_tag(&self, task: TaskId) -> Tag {
        self.finish
            .get(&task)
            .copied()
            .unwrap_or(0.0)
            .max(self.vtime)
    }

    fn admit(&mut self, task: TaskId, now: SimTime) {
        let start = self.start_tag(task);
        let est = self
            .estimate
            .get(&task)
            .copied()
            .unwrap_or(DEFAULT_ESTIMATE_US);
        self.vtime = start;
        self.finish.insert(task, start + est);
        self.in_flight += 1;
        self.dispatched_at = Some((task, now));
    }

    fn wake_best(&mut self, ctx: &mut SchedCtx<'_>) {
        if self.in_flight > 0 {
            return;
        }
        // Among parked submitters, wake the one with the least start
        // tag; its retried fault is then admitted.
        // BTreeMap iteration is key-ordered, so ties on the start tag
        // break deterministically toward the lower task id.
        let best = self
            .waiting
            .iter()
            .min_by(|a, b| {
                a.1.partial_cmp(b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(b.0))
            })
            .map(|(&t, _)| t);
        if let Some(t) = best {
            self.waiting.remove(&t);
            ctx.wake_task(t);
        }
    }
}

impl Scheduler for EngagedSfq {
    fn name(&self) -> &'static str {
        "engaged-sfq"
    }

    fn init(&mut self, _ctx: &mut SchedCtx<'_>) {}

    fn on_task_admitted(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        ctx.protect_task(task);
        self.finish.insert(task, 0.0);
    }

    fn on_task_exit(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        self.finish.remove(&task);
        self.estimate.remove(&task);
        self.waiting.remove(&task);
        if self.dispatched_at.map(|(t, _)| t) == Some(task) {
            self.dispatched_at = None;
            self.in_flight = self.in_flight.saturating_sub(1);
            self.wake_best(ctx);
        }
    }

    fn on_fault(
        &mut self,
        ctx: &mut SchedCtx<'_>,
        task: TaskId,
        _channel: ChannelId,
    ) -> FaultDecision {
        if self.in_flight == 0 {
            let is_min = self
                .waiting
                .values()
                .all(|&w| self.start_tag(task) <= w + f64::EPSILON);
            if is_min {
                self.admit(task, ctx.now());
                return FaultDecision::Allow;
            }
        }
        self.waiting.insert(task, self.start_tag(task));
        FaultDecision::Park
    }

    fn on_poll(&mut self, ctx: &mut SchedCtx<'_>) {
        for task in ctx
            .overlong_tasks(self.params.overlong_limit)
            .into_iter()
            .flatten()
        {
            ctx.kill_task(task);
            self.on_task_exit(ctx, task);
        }
        // Defensive: if nothing is in flight but someone waits, wake.
        self.wake_best(ctx);
    }

    fn on_timer(&mut self, _ctx: &mut SchedCtx<'_>, _tag: u64) {}

    fn on_completion(&mut self, ctx: &mut SchedCtx<'_>, done: &CompletedRequest) {
        // Per-request engagement entitles SFQ to exact completion
        // knowledge (prompted polling).
        if self.dispatched_at.map(|(t, _)| t) == Some(done.task) {
            self.dispatched_at = None;
        }
        self.in_flight = self.in_flight.saturating_sub(1);
        let observed = done.occupancy.as_micros_f64();
        let est = self
            .estimate
            .entry(done.task)
            .or_insert(DEFAULT_ESTIMATE_US);
        // Exponentially weighted estimate, as interposed FQ schedulers use.
        *est = 0.75 * *est + 0.25 * observed;
        self.wake_best(ctx);
    }
}
