//! Engaged deficit-round-robin baseline (GERM-style).
//!
//! The fair-share policy of GERM [11], reconstructed: tasks take turns;
//! each turn adds a fixed quantum to the task's deficit counter, and
//! observed request occupancy drains it. A task submits freely while
//! its deficit is positive; when the deficit runs out the turn
//! advances. Every submission is intercepted (engaged), so the baseline
//! carries the per-request cost the paper's schedulers avoid. Included
//! for ablations.
//!
//! Deficits are **per task and carry across turns** (the defining DRR
//! property): a task whose request overruns its quantum — e.g. a 20 ms
//! batch against the 1 ms quantum — goes into overdraft and spends the
//! next ⌈overdraft/quantum⌉ turns parked paying it off, instead of
//! collecting a fresh quantum each rotation. An earlier version kept
//! one reset-on-advance counter, which forgot the overdraft and handed
//! a large-request adversary ~20× its share (the `adversary_midrun`
//! engaged-drr collapse; see `tests/drr_quantum.rs` for the pinned
//! regression). Unspent credit does not bank beyond one quantum, so an
//! idle task cannot hoard turns for a later burst.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use neon_gpu::{ChannelId, CompletedRequest, TaskId};
use neon_sim::SimDuration;

use crate::cost::SchedParams;
use crate::sched::{FaultDecision, Scheduler};
use crate::world::SchedCtx;

/// Per-turn quantum.
const QUANTUM: SimDuration = SimDuration::from_millis(1);

/// The engaged DRR baseline policy.
#[derive(Debug)]
pub struct EngagedDrr {
    params: SchedParams,
    rotation: VecDeque<TaskId>,
    /// Per-task deficit (µs): positive = may submit, negative =
    /// overdraft to pay off before its next active turn.
    deficits: BTreeMap<TaskId, f64>,
    /// Parked tasks awaiting their turn.
    waiting: BTreeSet<TaskId>,
}

impl EngagedDrr {
    /// Creates the baseline with the given parameters.
    pub fn new(params: SchedParams) -> Self {
        EngagedDrr {
            params,
            rotation: VecDeque::new(),
            deficits: BTreeMap::new(),
            waiting: BTreeSet::new(),
        }
    }

    fn current(&self) -> Option<TaskId> {
        self.rotation.front().copied()
    }

    fn deficit(&self, task: TaskId) -> f64 {
        self.deficits.get(&task).copied().unwrap_or(0.0)
    }

    /// Starts the turn of the task at the rotation front: credit one
    /// quantum (capped — unspent credit does not bank) and wake the
    /// task if it was parked. A task still in overdraft consumes its
    /// turn on the debt and is skipped; the loop terminates because
    /// every visit strictly raises a deficit by a full quantum.
    fn grant_turn(&mut self, ctx: &mut SchedCtx<'_>) {
        let quantum = QUANTUM.as_micros_f64();
        loop {
            let Some(t) = self.current() else { return };
            let d = self.deficits.entry(t).or_insert(0.0);
            *d = (*d + quantum).min(quantum);
            if *d > 0.0 {
                if self.waiting.remove(&t) {
                    ctx.wake_task(t);
                }
                return;
            }
            self.rotation.rotate_left(1);
        }
    }

    fn advance(&mut self, ctx: &mut SchedCtx<'_>) {
        if self.rotation.is_empty() {
            return;
        }
        self.rotation.rotate_left(1);
        self.grant_turn(ctx);
    }

    fn remove(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        let was_current = self.current() == Some(task);
        self.rotation.retain(|&t| t != task);
        self.waiting.remove(&task);
        self.deficits.remove(&task);
        if was_current && !self.rotation.is_empty() {
            // The departed task's turn passes to the new front.
            self.grant_turn(ctx);
        }
    }
}

impl Scheduler for EngagedDrr {
    fn name(&self) -> &'static str {
        "engaged-drr"
    }

    fn init(&mut self, _ctx: &mut SchedCtx<'_>) {}

    fn on_task_admitted(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        ctx.protect_task(task);
        self.deficits.insert(task, 0.0);
        self.rotation.push_back(task);
        // An empty rotation means the newcomer's turn starts now; it
        // must be credited or it parks forever with nobody to advance
        // past it.
        if self.rotation.len() == 1 {
            self.grant_turn(ctx);
        }
    }

    fn on_task_exit(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        self.remove(ctx, task);
    }

    fn on_fault(
        &mut self,
        _ctx: &mut SchedCtx<'_>,
        task: TaskId,
        _channel: ChannelId,
    ) -> FaultDecision {
        if self.current() == Some(task) && self.deficit(task) > 0.0 {
            FaultDecision::Allow
        } else {
            self.waiting.insert(task);
            FaultDecision::Park
        }
    }

    fn on_poll(&mut self, ctx: &mut SchedCtx<'_>) {
        for task in ctx
            .overlong_tasks(self.params.overlong_limit)
            .into_iter()
            .flatten()
        {
            ctx.kill_task(task);
            self.remove(ctx, task);
        }
        // Work conservation: if the current task shows no demand while
        // others wait, pass the turn.
        if let Some(t) = self.current() {
            let idle = !ctx.is_parked(t) && !ctx.has_outstanding(t);
            if idle && !self.waiting.is_empty() {
                self.advance(ctx);
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut SchedCtx<'_>, _tag: u64) {}

    fn on_completion(&mut self, ctx: &mut SchedCtx<'_>, done: &CompletedRequest) {
        // Occupancy is charged to the task that used the device —
        // normally the current one, since the turn cannot pass while a
        // request is outstanding.
        if let Some(d) = self.deficits.get_mut(&done.task) {
            *d -= done.occupancy.as_micros_f64();
        }
        if self.current() == Some(done.task) && self.deficit(done.task) <= 0.0 {
            self.advance(ctx);
        }
    }
}
