//! Engaged deficit-round-robin baseline (GERM-style).
//!
//! The fair-share policy of GERM [11], reconstructed: tasks take turns;
//! each turn adds a fixed quantum to the task's deficit counter, and
//! observed request occupancy drains it. A task submits freely while
//! its deficit is positive; when the deficit runs out the turn
//! advances. Every submission is intercepted (engaged), so the baseline
//! carries the per-request cost the paper's schedulers avoid. Included
//! for ablations.

use std::collections::{HashMap, VecDeque};

use neon_gpu::{ChannelId, CompletedRequest, TaskId};
use neon_sim::SimDuration;

use crate::cost::SchedParams;
use crate::sched::{FaultDecision, Scheduler};
use crate::world::SchedCtx;

/// Per-turn quantum.
const QUANTUM: SimDuration = SimDuration::from_millis(1);

/// The engaged DRR baseline policy.
#[derive(Debug)]
pub struct EngagedDrr {
    params: SchedParams,
    rotation: VecDeque<TaskId>,
    /// Remaining deficit of the task at the rotation front (µs).
    deficit: f64,
    /// Parked tasks awaiting their turn.
    waiting: HashMap<TaskId, ()>,
}

impl EngagedDrr {
    /// Creates the baseline with the given parameters.
    pub fn new(params: SchedParams) -> Self {
        EngagedDrr {
            params,
            rotation: VecDeque::new(),
            deficit: QUANTUM.as_micros_f64(),
            waiting: HashMap::new(),
        }
    }

    fn current(&self) -> Option<TaskId> {
        self.rotation.front().copied()
    }

    fn advance(&mut self, ctx: &mut SchedCtx<'_>) {
        if self.rotation.is_empty() {
            return;
        }
        self.rotation.rotate_left(1);
        self.deficit = QUANTUM.as_micros_f64();
        if let Some(t) = self.current() {
            if self.waiting.remove(&t).is_some() {
                ctx.wake_task(t);
            }
        }
    }

    fn remove(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        let was_current = self.current() == Some(task);
        self.rotation.retain(|&t| t != task);
        self.waiting.remove(&task);
        if was_current && !self.rotation.is_empty() {
            self.deficit = QUANTUM.as_micros_f64();
            if let Some(t) = self.current() {
                if self.waiting.remove(&t).is_some() {
                    ctx.wake_task(t);
                }
            }
        }
    }
}

impl Scheduler for EngagedDrr {
    fn name(&self) -> &'static str {
        "engaged-drr"
    }

    fn init(&mut self, _ctx: &mut SchedCtx<'_>) {}

    fn on_task_admitted(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        ctx.protect_task(task);
        // The rotation may have drained (every incumbent exited) with a
        // spent deficit left behind; a newcomer must start its turn
        // with a fresh quantum or it parks forever with nobody to
        // advance past it.
        if self.rotation.is_empty() {
            self.deficit = QUANTUM.as_micros_f64();
        }
        self.rotation.push_back(task);
    }

    fn on_task_exit(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        self.remove(ctx, task);
    }

    fn on_fault(
        &mut self,
        _ctx: &mut SchedCtx<'_>,
        task: TaskId,
        _channel: ChannelId,
    ) -> FaultDecision {
        if self.current() == Some(task) && self.deficit > 0.0 {
            FaultDecision::Allow
        } else {
            self.waiting.insert(task, ());
            FaultDecision::Park
        }
    }

    fn on_poll(&mut self, ctx: &mut SchedCtx<'_>) {
        for task in ctx.overlong_tasks(self.params.overlong_limit) {
            ctx.kill_task(task);
            self.remove(ctx, task);
        }
        // Work conservation: if the current task shows no demand while
        // others wait, pass the turn.
        if let Some(t) = self.current() {
            let idle = !ctx.is_parked(t) && !ctx.has_outstanding(t);
            if idle && !self.waiting.is_empty() {
                self.advance(ctx);
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut SchedCtx<'_>, _tag: u64) {}

    fn on_completion(&mut self, ctx: &mut SchedCtx<'_>, done: &CompletedRequest) {
        if self.current() == Some(done.task) {
            self.deficit -= done.occupancy.as_micros_f64();
            if self.deficit <= 0.0 {
                self.advance(ctx);
            }
        }
    }
}
