//! Timeslice scheduling with overuse control (§3.1) and its disengaged
//! variant (§3.2).
//!
//! A token rotates among live tasks every `timeslice` (30 ms default).
//! Only the holder may submit; everyone else faults and parks. At the
//! end of a slice the scheduler waits (at polling granularity, via the
//! reference counters) for the holder's outstanding requests to drain,
//! and charges any overrun to the holder's *overuse ledger*. A task
//! whose accrued overuse exceeds a full timeslice forfeits its next
//! turn (one timeslice is deducted per skip).
//!
//! - **Engaged** mode keeps every channel protected at all times: each
//!   of the holder's submissions pays the interception cost. This is
//!   the paper's baseline Timeslice scheduler.
//! - **Disengaged** mode unprotects the holder's channels for the
//!   duration of its slice, restoring direct-access speed; only the
//!   slice edges cost anything.
//!
//! Over-long requests (beyond the documented limit) are handled by
//! killing the offending task, which is trivially identifiable: it can
//! only be the current or most recent token holder.

use std::collections::{BTreeMap, VecDeque};

use neon_gpu::{ChannelId, CompletedRequest, TaskId};
use neon_sim::{SimDuration, SimTime};

use crate::cost::SchedParams;
use crate::sched::{FaultDecision, Scheduler};
use crate::world::SchedCtx;

/// The timeslice policy; construct via [`Timeslice::engaged`] or
/// [`Timeslice::disengaged`].
#[derive(Debug)]
pub struct Timeslice {
    params: SchedParams,
    disengaged: bool,
    /// Token order; the holder is always at the front.
    rotation: VecDeque<TaskId>,
    holder: Option<TaskId>,
    /// True between the slice-end timer and drain completion.
    draining: bool,
    slice_end: SimTime,
    overuse: BTreeMap<TaskId, SimDuration>,
    /// Timer generation; stale timers are ignored.
    generation: u64,
}

impl Timeslice {
    /// The engaged variant: every request intercepted.
    pub fn engaged(params: SchedParams) -> Self {
        Timeslice::with_mode(params, false)
    }

    /// The disengaged variant: the holder runs unintercepted.
    pub fn disengaged(params: SchedParams) -> Self {
        Timeslice::with_mode(params, true)
    }

    fn with_mode(params: SchedParams, disengaged: bool) -> Self {
        Timeslice {
            params,
            disengaged,
            rotation: VecDeque::new(),
            holder: None,
            draining: false,
            slice_end: SimTime::ZERO,
            overuse: BTreeMap::new(),
            generation: 0,
        }
    }

    /// Accrued overuse of a task (test/diagnostic accessor).
    pub fn overuse_of(&self, task: TaskId) -> SimDuration {
        self.overuse
            .get(&task)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    fn grant(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        self.holder = Some(task);
        self.draining = false;
        if self.disengaged {
            ctx.unprotect_task(task);
        }
        ctx.wake_task(task);
        ctx.trace_with("token", || format!("{task} granted"));
        self.generation += 1;
        ctx.set_timer(self.params.timeslice, self.generation);
    }

    /// Rotates the token, honouring overuse skips, and grants the next
    /// slice. No-op when no live task remains.
    fn advance(&mut self, ctx: &mut SchedCtx<'_>) {
        self.holder = None;
        if self.rotation.is_empty() {
            return;
        }
        self.rotation.rotate_left(1);
        // Skip tasks that owe a full timeslice, deducting one per skip.
        // Terminates: every inspection strictly decreases somebody's
        // ledger or lands on a grantable task.
        loop {
            // lint: allow(unchecked-unwrap) — the skip loop only rotates,
            // never removes, so the rotation stays nonempty
            let candidate = *self.rotation.front().expect("rotation nonempty");
            let owed = self.overuse.entry(candidate).or_default();
            if *owed >= self.params.timeslice {
                *owed -= self.params.timeslice;
                ctx.trace_with("skip", || format!("{candidate} owes {owed}"));
                self.rotation.rotate_left(1);
            } else {
                break;
            }
        }
        // lint: allow(unchecked-unwrap) — the skip loop above only rotates,
        // never removes, so the rotation stays nonempty
        let next = *self.rotation.front().expect("rotation nonempty");
        self.grant(ctx, next);
    }

    fn try_finish_drain(&mut self, ctx: &mut SchedCtx<'_>) {
        let Some(holder) = self.holder else {
            return;
        };
        if !self.draining || !ctx.task_drained(holder) {
            return;
        }
        // Overuse = how far past the slice edge the kernel observed the
        // drain (polling granularity included, as in the prototype).
        let over = ctx.now().saturating_duration_since(self.slice_end);
        *self.overuse.entry(holder).or_default() += over;
        ctx.trace_with("drain", || format!("{holder} overuse +{over}"));
        self.advance(ctx);
    }

    fn remove_task(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        self.rotation.retain(|&t| t != task);
        self.overuse.remove(&task);
        if self.holder == Some(task) {
            self.holder = None;
            self.draining = false;
            if !self.rotation.is_empty() {
                // Grant the next slice immediately; the departed task's
                // requests are gone (exit/kill reclaimed them).
                // lint: allow(unchecked-unwrap) — guarded by the is_empty
                // check directly above
                let next = *self.rotation.front().expect("rotation nonempty");
                self.grant(ctx, next);
            }
        }
    }
}

impl Scheduler for Timeslice {
    fn name(&self) -> &'static str {
        if self.disengaged {
            "disengaged-ts"
        } else {
            "timeslice"
        }
    }

    fn init(&mut self, _ctx: &mut SchedCtx<'_>) {}

    fn on_task_admitted(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        ctx.protect_task(task);
        self.rotation.push_back(task);
        self.overuse.insert(task, SimDuration::ZERO);
        if self.holder.is_none() {
            // First arrival takes the token (rotation front is `task`).
            // lint: allow(unchecked-unwrap) — task was just pushed onto the
            // rotation, so it is nonempty
            while *self.rotation.front().expect("nonempty") != task {
                self.rotation.rotate_left(1);
            }
            self.grant(ctx, task);
        }
    }

    fn on_task_exit(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        self.remove_task(ctx, task);
    }

    fn on_fault(
        &mut self,
        _ctx: &mut SchedCtx<'_>,
        task: TaskId,
        _channel: ChannelId,
    ) -> FaultDecision {
        if self.holder == Some(task) && !self.draining {
            FaultDecision::Allow
        } else {
            FaultDecision::Park
        }
    }

    fn on_poll(&mut self, ctx: &mut SchedCtx<'_>) {
        // Kill any task monopolizing the device beyond the documented
        // limit; under a timeslice policy the culprit is always the
        // (current or draining) token holder.
        for task in ctx
            .overlong_tasks(self.params.overlong_limit)
            .into_iter()
            .flatten()
        {
            ctx.trace_with("overlong", || format!("killing {task}"));
            ctx.kill_task(task);
            self.remove_task(ctx, task);
        }
        self.try_finish_drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut SchedCtx<'_>, tag: u64) {
        if tag != self.generation || self.holder.is_none() {
            return; // stale slice-end timer
        }
        // lint: allow(unchecked-unwrap) — guarded by the holder.is_none()
        // early-return above
        let holder = self.holder.expect("holder present");
        if self.disengaged {
            ctx.protect_task(holder);
        }
        self.draining = true;
        self.slice_end = ctx.now();
        // The drain may already be satisfied (idle holder).
        self.try_finish_drain(ctx);
    }

    fn on_completion(&mut self, _ctx: &mut SchedCtx<'_>, _done: &CompletedRequest) {
        // Drain progress is observed at polling granularity, not per
        // completion — that is the disengagement bargain.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::FixedLoop;
    use crate::world::{World, WorldConfig};

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn run_two(
        disengaged: bool,
        a: SimDuration,
        b: SimDuration,
        horizon: SimDuration,
    ) -> crate::RunReport {
        let params = SchedParams::default();
        let sched = if disengaged {
            Timeslice::disengaged(params)
        } else {
            Timeslice::engaged(params)
        };
        let mut world = World::new(WorldConfig::default(), Box::new(sched));
        world
            .add_task(Box::new(FixedLoop::endless("a", a, SimDuration::ZERO)))
            .unwrap();
        world
            .add_task(Box::new(FixedLoop::endless("b", b, SimDuration::ZERO)))
            .unwrap();
        world.run(horizon)
    }

    #[test]
    fn names_reflect_variant() {
        let p = SchedParams::default();
        assert_eq!(Timeslice::engaged(p.clone()).name(), "timeslice");
        assert_eq!(Timeslice::disengaged(p).name(), "disengaged-ts");
    }

    #[test]
    fn token_alternation_gives_equal_shares() {
        for disengaged in [false, true] {
            let report = run_two(disengaged, us(50), us(800), SimDuration::from_millis(600));
            let ua = report.tasks[0].usage;
            let ub = report.tasks[1].usage;
            let ratio = ub.ratio(ua);
            assert!(
                (0.7..1.5).contains(&ratio),
                "disengaged={disengaged}: usage ratio {ratio:.2}"
            );
        }
    }

    #[test]
    fn engaged_variant_traps_every_submission() {
        let report = run_two(false, us(50), us(60), SimDuration::from_millis(200));
        assert_eq!(report.direct_submits, 0);
        let submitted: u64 = report.tasks.iter().map(|t| t.submitted_requests).sum();
        assert!(
            report.faults >= submitted,
            "each submission faults at least once"
        );
    }

    #[test]
    fn disengaged_variant_grants_direct_access_to_the_holder() {
        let report = run_two(true, us(50), us(60), SimDuration::from_millis(200));
        let submitted: u64 = report.tasks.iter().map(|t| t.submitted_requests).sum();
        assert!(
            report.direct_submits > submitted * 9 / 10,
            "most submissions ({}/{submitted}) should bypass the kernel",
            report.direct_submits
        );
    }

    #[test]
    fn overuse_is_charged_and_turns_are_skipped() {
        // Task b's requests (20ms) overrun the 30ms slice end by up to
        // 20ms every slice; the ledger must keep long-run shares fair.
        let report = run_two(
            true,
            us(100),
            SimDuration::from_millis(20),
            SimDuration::from_secs(1),
        );
        let ua = report.tasks[0].usage;
        let ub = report.tasks[1].usage;
        let ratio = ub.ratio(ua);
        assert!(
            (0.6..1.6).contains(&ratio),
            "overuse control failed: usage ratio {ratio:.2}"
        );
    }

    #[test]
    fn single_task_keeps_the_device() {
        let params = SchedParams::default();
        let mut world = World::new(
            WorldConfig::default(),
            Box::new(Timeslice::disengaged(params)),
        );
        world
            .add_task(Box::new(FixedLoop::endless(
                "solo",
                us(100),
                SimDuration::ZERO,
            )))
            .unwrap();
        let report = world.run(SimDuration::from_millis(300));
        // Token cycles back to the only task; overhead stays small.
        let rounds = report.tasks[0].rounds_completed();
        assert!(rounds > 2700, "only {rounds} rounds for a solo task");
    }

    #[test]
    fn overuse_ledger_arithmetic() {
        let mut ts = Timeslice::engaged(SchedParams::default());
        let t = TaskId::new(0);
        ts.overuse.insert(t, SimDuration::from_millis(70));
        // Two skips (30ms each) leave 10ms in the ledger.
        assert_eq!(ts.overuse_of(t), SimDuration::from_millis(70));
    }
}
