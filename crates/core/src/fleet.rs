//! The cluster tier: many [`World`]s (hosts) behind fleet-level
//! admission, placement, and migration.
//!
//! A single `World` models one multi-device host. The fleet layer
//! scales the same admission/placement/migration split one level up:
//! arriving tenants are routed to a *host* by a [`FleetPlacement`]
//! policy over [`HostLoad`] snapshots (mirroring
//! [`Placement`](crate::placement::Placement) over
//! [`DeviceLoad`](crate::placement::DeviceLoad)), and
//! departure-triggered cross-host migration is governed by a
//! [`FleetRebalance`] policy (mirroring
//! [`Rebalance`](crate::rebalance::Rebalance)), with moves priced by a
//! [`ClusterInterconnect`] — the network tier above
//! [`InterconnectParams`](neon_gpu::InterconnectParams), free by
//! default.
//!
//! # Execution model
//!
//! Hosts are *independent* discrete-event worlds: no request, fault, or
//! scheduling decision crosses a host boundary mid-run. What the
//! cluster controls is **where tenants live**: which host each arrival
//! lands on, and whether a tenant is torn down on one host and
//! restaged on another. That makes fleet execution a two-phase affair:
//!
//! 1. **Plan** — a cluster-level pass over the known arrival/lifetime
//!    schedule (the same open-loop draws every cell shares, so the
//!    fleet sees exactly what a bare multi-host operator would).
//!    Arrivals consult the placement policy against a capacity ledger;
//!    departures free the ledger and give the rebalance policy a
//!    chance to name one cross-host migration. A migration truncates
//!    the tenant's residence on the source host and restages a fresh
//!    instance on the target after the cluster transfer delay —
//!    teardown-and-restage semantics, exactly what moving a process
//!    between machines costs.
//! 2. **Run** — every host world is staged with its share of the plan
//!    (in deterministic record order) and run to the horizon; the
//!    per-host [`RunReport`]s are merged into a [`FleetReport`], with
//!    per-group telemetry combined losslessly via the mergeable
//!    [`StreamingHistogram`] sketches — a million-tenant-round fleet
//!    run stays in bounded memory under
//!    [`MetricsMode::Streaming`](crate::telemetry::MetricsMode).
//!
//! The ledger tracks planned context/channel occupancy, not workload
//! progress: a tenant whose workload exits early still holds its
//! ledger slot until its scheduled departure. Fleet admission is
//! therefore conservative in exactly the way a real cluster admission
//! controller is — it reasons over declared reservations, while each
//! host's own admission control (which sees ground truth) still
//! applies underneath and may refuse an arrival the ledger accepted.
//!
//! A **single-host fleet is transparent**: the cluster tier has no
//! decision to make, so every arrival flows straight to the host —
//! mirroring how a single-device [`World`] bypasses its placement
//! policy. The fleet golden-trace tests pin that a 1-host fleet is
//! byte-identical to a bare `World` for every scheduler × placement.

use neon_gpu::{ClusterInterconnect, GpuError, TaskId};
use neon_metrics::{Distribution, StreamingHistogram};
use neon_sim::{SimDuration, SimTime};

use crate::fault::{FaultKind, FaultPlan};
use crate::report::{GroupReport, RunReport};
use crate::workload::BoxedWorkload;
use crate::world::World;

/// Identifies one host (one [`World`]) of a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(u32);

impl HostId {
    /// A host id from its index.
    pub fn new(raw: u32) -> Self {
        HostId(raw)
    }

    /// The raw index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A host id from a table index, checking that it fits the 32-bit
    /// id space instead of silently truncating.
    pub fn from_index(index: usize) -> Self {
        // lint: allow(unchecked-unwrap) — fleets are bounded far below
        // 2^32 hosts; overflowing the id space is unrecoverable.
        HostId(u32::try_from(index).expect("host index exceeds u32"))
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Cluster-observable load of one host at a placement instant — the
/// fleet analogue of [`DeviceLoad`](crate::placement::DeviceLoad),
/// built from the fleet's capacity ledger (planned reservations), not
/// from device ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostLoad {
    /// The host.
    pub host: HostId,
    /// Tenants currently resident (planned) on the host.
    pub tenants: usize,
    /// Contexts still reservable, summed across the host's devices.
    pub free_contexts: usize,
    /// Channels still reservable, summed across the host's devices.
    pub free_channels: usize,
    /// Devices the host exposes — the capacity-scale signal that lets
    /// policies normalize load across heterogeneous host sizes.
    pub devices: usize,
}

impl HostLoad {
    /// `true` if a tenant needing `channels` channels (and one context)
    /// can be reserved here.
    pub fn fits(&self, channels: usize) -> bool {
        self.free_contexts >= 1 && self.free_channels >= channels
    }
}

/// A tenant-to-host placement policy.
///
/// `place` must return a host whose [`HostLoad::fits`] holds for
/// `channels`, or `None` when no host has room (the arrival is then
/// rejected at the cluster boundary and counted in
/// [`FleetReport::fleet_rejected`]).
pub trait FleetPlacement: Send {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Chooses a host for an arriving tenant needing `channels`
    /// channels. `loads` is ordered by host id.
    fn place(&mut self, loads: &[HostLoad], channels: usize) -> Option<HostId>;
}

/// Picks the fitting host with the most free channels — absolute
/// headroom, so bigger hosts absorb proportionally more tenants. Ties
/// by fewer tenants, then host id.
#[derive(Debug, Default)]
pub struct LeastLoadedHost;

impl FleetPlacement for LeastLoadedHost {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn place(&mut self, loads: &[HostLoad], channels: usize) -> Option<HostId> {
        loads
            .iter()
            .filter(|l| l.fits(channels))
            .max_by(|a, b| {
                (a.free_channels, std::cmp::Reverse(a.tenants), b.host).cmp(&(
                    b.free_channels,
                    std::cmp::Reverse(b.tenants),
                    a.host,
                ))
            })
            .map(|l| l.host)
    }
}

/// Cycles through hosts in id order, skipping full ones.
#[derive(Debug, Default)]
pub struct RoundRobinHost {
    next: usize,
}

impl FleetPlacement for RoundRobinHost {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place(&mut self, loads: &[HostLoad], channels: usize) -> Option<HostId> {
        if loads.is_empty() {
            return None;
        }
        for i in 0..loads.len() {
            let idx = (self.next + i) % loads.len();
            if loads[idx].fits(channels) {
                self.next = (idx + 1) % loads.len();
                return Some(loads[idx].host);
            }
        }
        None
    }
}

/// Picks the fitting host with the fewest resident tenants (ties by
/// host id) — balances population regardless of host size.
#[derive(Debug, Default)]
pub struct FewestTenantsHost;

impl FleetPlacement for FewestTenantsHost {
    fn name(&self) -> &'static str {
        "fewest-tenants"
    }

    fn place(&mut self, loads: &[HostLoad], channels: usize) -> Option<HostId> {
        loads
            .iter()
            .filter(|l| l.fits(channels))
            .min_by_key(|l| (l.tenants, l.host))
            .map(|l| l.host)
    }
}

/// The fleet placement policies available to experiments, as a
/// sweepable axis (mirrors
/// [`PlacementKind`](crate::placement::PlacementKind) one level down).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FleetPlacementKind {
    /// [`LeastLoadedHost`].
    LeastLoaded,
    /// [`RoundRobinHost`].
    RoundRobin,
    /// [`FewestTenantsHost`].
    FewestTenants,
}

impl FleetPlacementKind {
    /// Every policy, for exhaustive sweeps.
    pub const ALL: [FleetPlacementKind; 3] = [
        FleetPlacementKind::LeastLoaded,
        FleetPlacementKind::RoundRobin,
        FleetPlacementKind::FewestTenants,
    ];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn FleetPlacement> {
        match self {
            FleetPlacementKind::LeastLoaded => Box::new(LeastLoadedHost),
            FleetPlacementKind::RoundRobin => Box::new(RoundRobinHost::default()),
            FleetPlacementKind::FewestTenants => Box::new(FewestTenantsHost),
        }
    }

    /// Parses the label form back into a kind (`"least-loaded"`,
    /// `"round-robin"`, `"fewest-tenants"`).
    pub fn from_label(label: &str) -> Option<FleetPlacementKind> {
        FleetPlacementKind::ALL
            .into_iter()
            .find(|k| k.to_string() == label)
    }
}

impl std::fmt::Display for FleetPlacementKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetPlacementKind::LeastLoaded => f.write_str("least-loaded"),
            FleetPlacementKind::RoundRobin => f.write_str("round-robin"),
            FleetPlacementKind::FewestTenants => f.write_str("fewest-tenants"),
        }
    }
}

/// A planned tenant a [`FleetRebalance`] policy is allowed to move,
/// with the attributes migration pricing needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostMigrationCandidate {
    /// Candidate ordinal — candidates are presented in admission order,
    /// so the last entry is the most recent admission (the same recency
    /// discipline the device-level policies use).
    pub ord: usize,
    /// The host the tenant currently lives on.
    pub host: HostId,
    /// Channels the tenant holds (what the target must fit).
    pub channels: usize,
    /// Working-set size in bytes — what a cross-host move ships over
    /// the cluster interconnect.
    pub working_set: u64,
}

/// One cross-host migration a policy asks the fleet to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostMigration {
    /// Ordinal of the chosen [`HostMigrationCandidate`].
    pub candidate: usize,
    /// The host to move it to.
    pub to: HostId,
}

/// A departure-triggered cross-host rebalancing policy — the fleet
/// analogue of [`Rebalance`](crate::rebalance::Rebalance). After every
/// planned departure on a multi-host fleet, the policy sees the
/// post-departure [`HostLoad`] snapshot and the movable tenants, and
/// names at most one migration; the fleet prices it with the
/// [`ClusterInterconnect`] and restages the tenant on the target.
pub trait FleetRebalance: Send {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// `false` if the policy never migrates — lets the fleet skip
    /// building snapshots on the departure path entirely.
    fn active(&self) -> bool {
        true
    }

    /// Picks at most one migration given the post-departure state.
    fn plan(
        &mut self,
        now: SimTime,
        loads: &[HostLoad],
        candidates: &[HostMigrationCandidate],
    ) -> Option<HostMigration>;
}

/// Never migrates across hosts.
#[derive(Debug, Default)]
pub struct FleetOff;

impl FleetRebalance for FleetOff {
    fn name(&self) -> &'static str {
        "off"
    }

    fn active(&self) -> bool {
        false
    }

    fn plan(
        &mut self,
        _now: SimTime,
        _loads: &[HostLoad],
        _candidates: &[HostMigrationCandidate],
    ) -> Option<HostMigration> {
        None
    }
}

/// The count-difference heuristic one level up: when the most- and
/// least-populated hosts differ by ≥ 2 tenants, move the most recently
/// admitted movable tenant from the former to the latter (if it fits).
/// Charge-blind — the cluster transfer is charged but never weighed.
#[derive(Debug, Default)]
pub struct FleetCountDiff;

impl FleetRebalance for FleetCountDiff {
    fn name(&self) -> &'static str {
        "count-diff"
    }

    fn plan(
        &mut self,
        _now: SimTime,
        loads: &[HostLoad],
        candidates: &[HostMigrationCandidate],
    ) -> Option<HostMigration> {
        let mut max_i = 0;
        let mut min_i = 0;
        for (i, l) in loads.iter().enumerate() {
            if l.tenants > loads[max_i].tenants {
                max_i = i;
            }
            if l.tenants < loads[min_i].tenants {
                min_i = i;
            }
        }
        if loads[max_i].tenants < loads[min_i].tenants + 2 {
            return None;
        }
        let target = &loads[min_i];
        candidates
            .iter()
            .rev()
            .find(|c| c.host == loads[max_i].host && target.fits(c.channels))
            .map(|c| HostMigration {
                candidate: c.ord,
                to: target.host,
            })
    }
}

/// The fleet rebalancing policies, as a configuration axis (mirrors
/// [`RebalanceKind`](crate::rebalance::RebalanceKind)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FleetRebalanceKind {
    /// [`FleetOff`]: never migrate across hosts.
    Off,
    /// [`FleetCountDiff`]: the charge-blind population heuristic.
    CountDiff,
}

impl FleetRebalanceKind {
    /// Every policy.
    pub const ALL: [FleetRebalanceKind; 2] =
        [FleetRebalanceKind::Off, FleetRebalanceKind::CountDiff];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn FleetRebalance> {
        match self {
            FleetRebalanceKind::Off => Box::new(FleetOff),
            FleetRebalanceKind::CountDiff => Box::new(FleetCountDiff),
        }
    }

    /// Parses the label form back into a kind (`"off"`,
    /// `"count-diff"`).
    pub fn from_label(label: &str) -> Option<FleetRebalanceKind> {
        FleetRebalanceKind::ALL
            .into_iter()
            .find(|k| k.to_string() == label)
    }
}

impl std::fmt::Display for FleetRebalanceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetRebalanceKind::Off => f.write_str("off"),
            FleetRebalanceKind::CountDiff => f.write_str("count-diff"),
        }
    }
}

/// Builds continuation instances of a migratable tenant's workload —
/// cross-host migration is teardown-and-restage, so the target host
/// needs a fresh instance.
pub type WorkloadFactory = Box<dyn FnMut() -> BoxedWorkload + Send>;

/// One recorded future arrival, and where planning routed it.
struct FleetSpawn {
    at: SimTime,
    /// Scheduled stay; `None` runs to workload completion or horizon.
    lifetime: Option<SimDuration>,
    channels: usize,
    working_set: u64,
    /// The instance staged on the placed host; taken at stage time.
    workload: Option<BoxedWorkload>,
    /// Continuation builder; `None` marks the tenant non-migratable.
    factory: Option<WorkloadFactory>,
    /// The host planning routed this spawn to; `None` = rejected at
    /// the cluster boundary (or not planned yet).
    host: Option<usize>,
    /// Planned departure instant after truncation by a migration;
    /// `None` keeps the recorded `lifetime`.
    truncated_at: Option<SimTime>,
}

/// Per-host capacity ledger entry (planned reservations).
#[derive(Debug, Clone, Copy)]
struct HostState {
    total_contexts: usize,
    total_channels: usize,
    used_contexts: usize,
    used_channels: usize,
    tenants: usize,
    devices: usize,
}

impl HostState {
    fn load(&self, host: usize) -> HostLoad {
        HostLoad {
            host: HostId::from_index(host),
            tenants: self.tenants,
            free_contexts: self.total_contexts - self.used_contexts,
            free_channels: self.total_channels - self.used_channels,
            devices: self.devices,
        }
    }

    fn occupy(&mut self, channels: usize) {
        self.used_contexts += 1;
        self.used_channels += channels;
        self.tenants += 1;
    }

    fn release(&mut self, channels: usize) {
        self.used_contexts -= 1;
        self.used_channels -= channels;
        self.tenants -= 1;
    }
}

/// A planned resident tenant, tracked through the planning pass.
struct Resident {
    spawn: usize,
    host: usize,
    channels: usize,
    working_set: u64,
    migratable: bool,
    live: bool,
}

/// Whole-fleet outcome: per-host reports plus the cluster-level view.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Wall-clock (simulated) length of the run.
    pub wall: SimDuration,
    /// Per-host outcomes, in host-id order.
    pub hosts: Vec<RunReport>,
    /// Per-workload-name telemetry merged across hosts (streaming mode
    /// only; empty in exact mode), via lossless
    /// [`StreamingHistogram::merge`].
    pub groups: Vec<GroupReport>,
    /// Tenants the fleet moved between hosts.
    pub cross_host_migrations: u64,
    /// Total simulated time tenants spent in cross-host working-set
    /// transfers (the cluster interconnect's charge; zero on free
    /// clusters).
    pub cluster_transfer_stall: SimDuration,
    /// Arrivals rejected at the cluster boundary: no host's ledger had
    /// room. Host-level rejections (ground-truth admission control)
    /// are counted in each host's
    /// [`RunReport::rejected_admissions`] instead.
    pub fleet_rejected: u64,
    /// Whole-host failures injected from the fleet's
    /// [`FaultPlan`](crate::fault::FaultPlan) (multi-host fleets only).
    pub host_failures: u64,
    /// Tenants lost to host failures: non-migratable residents of a
    /// failed host, or migratable ones no surviving host could take.
    pub fleet_lost_tasks: u64,
    /// Tenants re-admitted on a surviving host after their host failed
    /// (each also counts in [`FleetReport::cross_host_migrations`]).
    pub fleet_fault_recovered: u64,
    /// Degraded-capacity time: host-outage spans summed across hosts
    /// (a host still down at the horizon is charged through it).
    pub host_degraded: SimDuration,
}

impl FleetReport {
    /// Mean compute utilization across every device of every host.
    pub fn utilization(&self) -> f64 {
        if self.hosts.is_empty() {
            return 0.0;
        }
        self.hosts.iter().map(|h| h.utilization()).sum::<f64>() / self.hosts.len() as f64
    }

    /// Rounds completed across the whole fleet, in either metrics mode.
    pub fn total_rounds(&self) -> u64 {
        self.round_distribution().count()
    }

    /// Admissions refused anywhere: at the cluster boundary plus on
    /// every host.
    pub fn rejected_admissions(&self) -> u64 {
        self.fleet_rejected
            + self
                .hosts
                .iter()
                .map(|h| h.rejected_admissions)
                .sum::<u64>()
    }

    /// Every task's round durations across the fleet as one queryable
    /// [`Distribution`], whichever metrics mode produced the run
    /// (mirrors [`RunReport::round_distribution`]).
    pub fn round_distribution(&self) -> Box<dyn Distribution> {
        if self
            .hosts
            .iter()
            .any(|h| h.tasks.iter().any(|t| !t.rounds.is_empty()))
        {
            let mut all: Vec<SimDuration> = Vec::new();
            for h in &self.hosts {
                for t in &h.tasks {
                    all.extend_from_slice(&t.rounds);
                }
            }
            Box::new(neon_metrics::Summary::of(&all))
        } else {
            let mut merged = StreamingHistogram::new();
            for h in &self.hosts {
                for t in &h.tasks {
                    merged.merge(&t.rounds_hist);
                }
            }
            Box::new(merged)
        }
    }
}

/// Merges per-host [`GroupReport`]s by workload name, in
/// first-appearance order across hosts. Lossless: the underlying
/// [`StreamingHistogram`] buckets add bucket-wise.
pub fn merge_groups(hosts: &[RunReport]) -> Vec<GroupReport> {
    let mut merged: Vec<GroupReport> = Vec::new();
    for host in hosts {
        for g in &host.groups {
            match merged.iter_mut().find(|m| m.name == g.name) {
                Some(m) => {
                    m.members += g.members;
                    m.rounds.merge(&g.rounds);
                    m.service.merge(&g.service);
                    m.interarrival.merge(&g.interarrival);
                }
                None => merged.push(g.clone()),
            }
        }
    }
    merged
}

/// A fleet of hosts behind cluster-level admission and placement.
///
/// Build each host [`World`] (with its own per-device schedulers and
/// intra-host placement), hand them to [`Fleet::new`], stage tenants
/// with [`Fleet::add_task`] / [`Fleet::spawn_task_at`] /
/// [`Fleet::spawn_migratable_for`], and call [`Fleet::run`] once.
pub struct Fleet {
    hosts: Vec<World>,
    placement: Box<dyn FleetPlacement>,
    rebalance: Box<dyn FleetRebalance>,
    cluster: ClusterInterconnect,
    /// t = 0 ledger: capacity minus eager [`Fleet::add_task`]
    /// reservations. Cloned as the planning pass's working state.
    ledger: Vec<HostState>,
    spawns: Vec<FleetSpawn>,
    faults: Option<FaultPlan>,
    fleet_rejected: u64,
    cross_host_migrations: u64,
    cluster_transfer_stall: SimDuration,
    host_failures: u64,
    fleet_lost_tasks: u64,
    fleet_fault_recovered: u64,
    host_degraded: SimDuration,
    started: bool,
}

impl Fleet {
    /// A fleet over the given freshly built host worlds.
    ///
    /// # Panics
    ///
    /// Panics when `hosts` is empty.
    pub fn new(
        hosts: Vec<World>,
        placement: Box<dyn FleetPlacement>,
        rebalance: Box<dyn FleetRebalance>,
        cluster: ClusterInterconnect,
    ) -> Self {
        assert!(!hosts.is_empty(), "a fleet needs at least one host");
        let ledger = hosts
            .iter()
            .map(|w| {
                let (contexts, channels) = w.free_capacity();
                HostState {
                    total_contexts: contexts,
                    total_channels: channels,
                    used_contexts: 0,
                    used_channels: 0,
                    tenants: 0,
                    devices: w.device_count(),
                }
            })
            .collect();
        Fleet {
            hosts,
            placement,
            rebalance,
            cluster,
            ledger,
            spawns: Vec::new(),
            faults: None,
            fleet_rejected: 0,
            cross_host_migrations: 0,
            cluster_transfer_stall: SimDuration::ZERO,
            host_failures: 0,
            fleet_lost_tasks: 0,
            fleet_fault_recovered: 0,
            host_degraded: SimDuration::ZERO,
            started: false,
        }
    }

    /// Attaches a fault plan whose **host-scope** events
    /// ([`FaultKind::HostFail`] / [`FaultKind::HostRecover`]) drive
    /// cluster-level failure and recovery during planning. World-scope
    /// events do not cross the host boundary — attach those to each
    /// host's [`WorldConfig::faults`](crate::world::WorldConfig) (the
    /// scenario driver hands every host the world-level slice of the
    /// same plan). Single-host fleets ignore host events: with nowhere
    /// to re-admit, the transparent-fleet guarantee wins.
    ///
    /// Host failure governs the *scheduled* tenant population — the
    /// `spawn_*` tenants the planning pass routes. Tenants staged
    /// before the run with [`Fleet::add_task`] are host-world state
    /// the planning pass never owns; they ride through the outage
    /// untouched (the outage is still charged to `host_degraded`).
    /// Model crash-vulnerable residents as `spawn_task_at(ZERO, ..)`
    /// instead.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        assert!(!self.started, "set_faults after Fleet::run");
        self.faults = Some(plan);
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The host world at index `h` (trace access for tests and
    /// debugging).
    pub fn host(&self, h: usize) -> &World {
        &self.hosts[h]
    }

    /// Mutable access to the host world at index `h` (e.g. to arm its
    /// trace before [`Fleet::run`]).
    pub fn host_mut(&mut self, h: usize) -> &mut World {
        &mut self.hosts[h]
    }

    fn multi(&self) -> bool {
        self.hosts.len() > 1
    }

    fn loads(&self) -> Vec<HostLoad> {
        self.ledger
            .iter()
            .enumerate()
            .map(|(h, s)| s.load(h))
            .collect()
    }

    /// Admits a tenant immediately (before the run starts), on the
    /// host the fleet placement policy chooses — the cluster analogue
    /// of [`World::add_task`]. Single-host fleets route straight to
    /// their host, whose own admission control answers.
    ///
    /// # Errors
    ///
    /// Returns the device error when no host can take the tenant.
    pub fn add_task(&mut self, workload: BoxedWorkload) -> Result<(HostId, TaskId), GpuError> {
        assert!(!self.started, "add_task after Fleet::run");
        let channels = workload.queues().len();
        let host = if self.multi() {
            let loads = self.loads();
            match self.placement.place(&loads, channels) {
                Some(h) => h.index(),
                None => {
                    self.fleet_rejected += 1;
                    let context_starved = loads
                        .iter()
                        .any(|l| !l.fits(channels) && l.free_contexts == 0);
                    return Err(if context_starved {
                        GpuError::OutOfContexts
                    } else {
                        GpuError::OutOfChannels
                    });
                }
            }
        } else {
            0
        };
        let id = self.hosts[host].add_task(workload)?;
        self.ledger[host].occupy(channels);
        Ok((HostId::from_index(host), id))
    }

    /// Schedules a non-migratable tenant to arrive at `at`; planning
    /// routes it to a host at that instant.
    pub fn spawn_task_at(&mut self, at: SimTime, workload: BoxedWorkload) {
        self.record_spawn(at, None, workload, None);
    }

    /// Like [`Fleet::spawn_task_at`], departing `lifetime` after
    /// admission.
    pub fn spawn_task_for(&mut self, at: SimTime, workload: BoxedWorkload, lifetime: SimDuration) {
        self.record_spawn(at, Some(lifetime), workload, None);
    }

    /// Schedules a *migratable* tenant: `factory` builds its workload
    /// instances, so a cross-host migration can tear the tenant down
    /// on the source host and restage a fresh instance on the target
    /// (workload progress does not survive the move — the same
    /// restart-from-zero price a process pays when a cluster scheduler
    /// relocates it).
    pub fn spawn_migratable_at(&mut self, at: SimTime, mut factory: WorkloadFactory) {
        let workload = factory();
        self.record_spawn(at, None, workload, Some(factory));
    }

    /// Like [`Fleet::spawn_migratable_at`], departing `lifetime` after
    /// admission.
    pub fn spawn_migratable_for(
        &mut self,
        at: SimTime,
        mut factory: WorkloadFactory,
        lifetime: SimDuration,
    ) {
        let workload = factory();
        self.record_spawn(at, Some(lifetime), workload, Some(factory));
    }

    fn record_spawn(
        &mut self,
        at: SimTime,
        lifetime: Option<SimDuration>,
        workload: BoxedWorkload,
        factory: Option<WorkloadFactory>,
    ) {
        assert!(!self.started, "spawn after Fleet::run");
        self.spawns.push(FleetSpawn {
            at,
            lifetime,
            channels: workload.queues().len(),
            working_set: workload.working_set_bytes(),
            workload: Some(workload),
            factory,
            host: None,
            truncated_at: None,
        });
    }

    /// The cluster-level planning pass: routes every recorded spawn to
    /// a host (or rejects it), and lets the rebalance policy name
    /// cross-host migrations at departures. Single-host fleets skip
    /// planning entirely — everything flows to host 0, unconditionally,
    /// so the host's own admission control is the only gate (and the
    /// staged program is byte-identical to a bare world's).
    fn plan(&mut self, horizon: SimDuration) {
        if !self.multi() {
            for s in &mut self.spawns {
                s.host = Some(0);
            }
            return;
        }
        // (time, seq) orders the pass: seq is allocation order, so
        // same-instant events process in creation order and the pass is
        // fully deterministic.
        #[derive(PartialEq, Eq)]
        enum Act {
            Arrival(usize),
            Departure(usize),
            HostFail(usize),
            HostRecover(usize),
        }
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, usize)>> =
            std::collections::BinaryHeap::new();
        let mut actions: Vec<Act> = Vec::new();
        let push = |heap: &mut std::collections::BinaryHeap<_>,
                    actions: &mut Vec<Act>,
                    at: SimTime,
                    act: Act| {
            let seq = actions.len();
            actions.push(act);
            heap.push(std::cmp::Reverse((at, seq as u64, seq)));
        };
        // Host faults enqueue first: a failure at an arrival's instant
        // is visible to that arrival's placement decision.
        if let Some(plan) = &self.faults {
            for ev in plan.host_events() {
                match ev.kind {
                    FaultKind::HostFail { host } => {
                        push(&mut heap, &mut actions, ev.at, Act::HostFail(host as usize));
                    }
                    FaultKind::HostRecover { host } => {
                        push(
                            &mut heap,
                            &mut actions,
                            ev.at,
                            Act::HostRecover(host as usize),
                        );
                    }
                    _ => {}
                }
            }
        }
        for i in 0..self.spawns.len() {
            push(&mut heap, &mut actions, self.spawns[i].at, Act::Arrival(i));
        }
        let mut state = self.ledger.clone();
        let mut residents: Vec<Resident> = Vec::new();
        let mut down = vec![false; state.len()];
        let mut down_since: Vec<Option<SimTime>> = vec![None; state.len()];
        // A down host advertises zero free capacity, so no placement
        // policy can route an arrival (or a re-admission) to it.
        fn masked_loads(state: &[HostState], down: &[bool]) -> Vec<HostLoad> {
            state
                .iter()
                .enumerate()
                .map(|(h, s)| {
                    let mut l = s.load(h);
                    if down[h] {
                        l.free_contexts = 0;
                        l.free_channels = 0;
                    }
                    l
                })
                .collect()
        }
        let rebalance_active = self.rebalance.active();
        while let Some(std::cmp::Reverse((now, _, seq))) = heap.pop() {
            match actions[seq] {
                Act::Arrival(i) => {
                    let channels = self.spawns[i].channels;
                    let loads = masked_loads(&state, &down);
                    match self.placement.place(&loads, channels) {
                        Some(h) => {
                            let host = h.index();
                            state[host].occupy(channels);
                            self.spawns[i].host = Some(host);
                            let r = residents.len();
                            residents.push(Resident {
                                spawn: i,
                                host,
                                channels,
                                working_set: self.spawns[i].working_set,
                                migratable: self.spawns[i].factory.is_some(),
                                live: true,
                            });
                            if let Some(l) = self.spawns[i].lifetime {
                                push(&mut heap, &mut actions, now + l, Act::Departure(r));
                            }
                        }
                        None => self.fleet_rejected += 1,
                    }
                }
                Act::Departure(r) => {
                    if !residents[r].live {
                        continue;
                    }
                    residents[r].live = false;
                    state[residents[r].host].release(residents[r].channels);
                    if !rebalance_active {
                        continue;
                    }
                    // Post-departure snapshot + movable tenants, in
                    // admission order (continuations are already
                    // non-migratable, so one move per tenant).
                    let loads = masked_loads(&state, &down);
                    let candidates: Vec<HostMigrationCandidate> = residents
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.live && c.migratable)
                        .map(|(ord, c)| HostMigrationCandidate {
                            ord,
                            host: HostId::from_index(c.host),
                            channels: c.channels,
                            working_set: c.working_set,
                        })
                        .collect();
                    let Some(m) = self.rebalance.plan(now, &loads, &candidates) else {
                        continue;
                    };
                    let mover = m.candidate;
                    let to = m.to.index();
                    // Verify the plan before executing it, mirroring
                    // the world's distrust of policy output.
                    let sound = residents.get(mover).is_some_and(|c| {
                        c.live && c.migratable && c.host != to && to < state.len()
                    }) && !down[to]
                        && state[to].load(to).fits(residents[mover].channels);
                    if !sound {
                        continue;
                    }
                    let spawn = residents[mover].spawn;
                    let transfer = self.cluster.transfer_cost(residents[mover].working_set);
                    let rearrive = now + transfer;
                    // Remaining stay after the wire; a move that the
                    // tenant would not outlive is skipped.
                    let remaining = match self.spawns[spawn].lifetime {
                        Some(l) => {
                            let ends = self.spawns[spawn].at + l;
                            if ends <= rearrive {
                                continue;
                            }
                            Some(ends.saturating_duration_since(rearrive))
                        }
                        None => None,
                    };
                    // Truncate the source residence at the decision
                    // instant and restage on the target after the
                    // transfer.
                    self.spawns[spawn].truncated_at = Some(now);
                    state[residents[mover].host].release(residents[mover].channels);
                    residents[mover].live = false;
                    let cont = mover_continuation(&mut self.spawns, spawn, rearrive, remaining);
                    let channels = self.spawns[cont].channels;
                    state[to].occupy(channels);
                    let r = residents.len();
                    residents.push(Resident {
                        spawn: cont,
                        host: to,
                        channels,
                        working_set: self.spawns[cont].working_set,
                        migratable: false,
                        live: true,
                    });
                    self.spawns[cont].host = Some(to);
                    if let Some(l) = remaining {
                        push(&mut heap, &mut actions, rearrive + l, Act::Departure(r));
                    }
                    self.cross_host_migrations += 1;
                    self.cluster_transfer_stall += transfer;
                }
                Act::HostFail(h) => {
                    if h >= state.len() || down[h] {
                        continue;
                    }
                    down[h] = true;
                    down_since[h] = Some(now);
                    self.host_failures += 1;
                    // Every resident dies with the host. Migratable
                    // tenants are re-admitted on a surviving host over
                    // the cluster interconnect (teardown-and-restage,
                    // same as a planned migration); the rest are lost.
                    let victims: Vec<usize> = residents
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.live && c.host == h)
                        .map(|(r, _)| r)
                        .collect();
                    for r in victims {
                        residents[r].live = false;
                        state[h].release(residents[r].channels);
                        let spawn = residents[r].spawn;
                        self.spawns[spawn].truncated_at = Some(now);
                        if !residents[r].migratable {
                            self.fleet_lost_tasks += 1;
                            continue;
                        }
                        let loads = masked_loads(&state, &down);
                        let Some(to) = self
                            .placement
                            .place(&loads, residents[r].channels)
                            .map(|x| x.index())
                        else {
                            self.fleet_lost_tasks += 1;
                            continue;
                        };
                        let transfer = self.cluster.transfer_cost(residents[r].working_set);
                        let rearrive = now + transfer;
                        let remaining = match self.spawns[spawn].lifetime {
                            Some(l) => {
                                let ends = self.spawns[spawn].at + l;
                                if ends <= rearrive {
                                    // The tenant's stay would end on
                                    // the wire — nothing to re-admit.
                                    self.fleet_lost_tasks += 1;
                                    continue;
                                }
                                Some(ends.saturating_duration_since(rearrive))
                            }
                            None => None,
                        };
                        let cont = mover_continuation(&mut self.spawns, spawn, rearrive, remaining);
                        let channels = self.spawns[cont].channels;
                        state[to].occupy(channels);
                        let rr = residents.len();
                        residents.push(Resident {
                            spawn: cont,
                            host: to,
                            channels,
                            working_set: self.spawns[cont].working_set,
                            migratable: false,
                            live: true,
                        });
                        self.spawns[cont].host = Some(to);
                        if let Some(l) = remaining {
                            push(&mut heap, &mut actions, rearrive + l, Act::Departure(rr));
                        }
                        self.cross_host_migrations += 1;
                        self.cluster_transfer_stall += transfer;
                        self.fleet_fault_recovered += 1;
                    }
                }
                Act::HostRecover(h) => {
                    if h >= state.len() || !down[h] {
                        continue;
                    }
                    down[h] = false;
                    if let Some(since) = down_since[h].take() {
                        self.host_degraded += now.saturating_duration_since(since);
                    }
                }
            }
        }
        // A host still down when the plan ends is degraded through the
        // horizon.
        let end = SimTime::ZERO + horizon;
        for since in down_since.iter_mut().filter_map(|s| s.take()) {
            self.host_degraded += end.saturating_duration_since(since);
        }
    }

    /// Runs the whole fleet to `horizon` and merges the per-host
    /// reports. Call once.
    pub fn run(&mut self, horizon: SimDuration) -> FleetReport {
        assert!(!self.started, "a Fleet runs once");
        self.started = true;
        self.plan(horizon);
        // Stage every routed spawn, in record order (continuations
        // follow the original spawns in migration order) — for a
        // single host this is exactly the order a bare world would
        // have seen the same calls.
        for i in 0..self.spawns.len() {
            let Some(host) = self.spawns[i].host else {
                continue;
            };
            let workload = self.spawns[i]
                .workload
                .take()
                // lint: allow(unchecked-unwrap) — plan staging visits each
                // spawn exactly once, so its workload is still present
                .expect("each spawn stages once");
            let at = self.spawns[i].at;
            let lifetime = match self.spawns[i].truncated_at {
                Some(t) => Some(t.saturating_duration_since(at)),
                None => self.spawns[i].lifetime,
            };
            match lifetime {
                Some(l) => self.hosts[host].spawn_task_for(at, workload, l),
                None => self.hosts[host].spawn_task_at(at, workload),
            }
        }
        let hosts: Vec<RunReport> = self.hosts.iter_mut().map(|w| w.run(horizon)).collect();
        let groups = merge_groups(&hosts);
        FleetReport {
            wall: horizon,
            hosts,
            groups,
            cross_host_migrations: self.cross_host_migrations,
            cluster_transfer_stall: self.cluster_transfer_stall,
            fleet_rejected: self.fleet_rejected,
            host_failures: self.host_failures,
            fleet_lost_tasks: self.fleet_lost_tasks,
            fleet_fault_recovered: self.fleet_fault_recovered,
            host_degraded: self.host_degraded,
        }
    }
}

/// Appends the continuation spawn for a migrated tenant and returns
/// its index. A helper (not a method) so the borrow on `spawns` stays
/// local to the planning loop.
fn mover_continuation(
    spawns: &mut Vec<FleetSpawn>,
    source: usize,
    at: SimTime,
    lifetime: Option<SimDuration>,
) -> usize {
    let mut factory = spawns[source]
        .factory
        .take()
        // lint: allow(unchecked-unwrap) — the rebalance planner only migrates
        // spawns staged with a rebuildable factory, each at most once
        .expect("only migratable spawns migrate");
    let workload = factory();
    let channels = workload.queues().len();
    let working_set = workload.working_set_bytes();
    spawns.push(FleetSpawn {
        at,
        lifetime,
        channels,
        working_set,
        workload: Some(workload),
        factory: None,
        host: None,
        truncated_at: None,
    });
    spawns.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(host: u32, tenants: usize, free: usize) -> HostLoad {
        HostLoad {
            host: HostId::new(host),
            tenants,
            free_contexts: free,
            free_channels: free * 2,
            devices: 1,
        }
    }

    #[test]
    fn least_loaded_prefers_headroom_and_skips_full() {
        let mut p = LeastLoadedHost;
        let loads = [load(0, 4, 0), load(1, 2, 3), load(2, 2, 5)];
        assert_eq!(p.place(&loads, 1), Some(HostId::new(2)));
        assert_eq!(p.place(&loads, 11), None, "nothing fits 11 channels");
    }

    #[test]
    fn round_robin_cycles_and_skips_full() {
        let mut p = RoundRobinHost::default();
        let loads = [load(0, 0, 2), load(1, 0, 2), load(2, 0, 0)];
        assert_eq!(p.place(&loads, 1), Some(HostId::new(0)));
        assert_eq!(p.place(&loads, 1), Some(HostId::new(1)));
        assert_eq!(p.place(&loads, 1), Some(HostId::new(0)), "host 2 is full");
    }

    #[test]
    fn fewest_tenants_balances_population() {
        let mut p = FewestTenantsHost;
        let loads = [load(0, 3, 5), load(1, 1, 2), load(2, 2, 9)];
        assert_eq!(p.place(&loads, 1), Some(HostId::new(1)));
    }

    #[test]
    fn count_diff_moves_latest_fitting_tenant_on_imbalance() {
        let mut p = FleetCountDiff;
        let loads = [load(0, 3, 4), load(1, 1, 4)];
        let cand = |ord: usize, host: u32| HostMigrationCandidate {
            ord,
            host: HostId::new(host),
            channels: 1,
            working_set: 64 << 20,
        };
        let cands = [cand(0, 0), cand(1, 1), cand(2, 0)];
        assert_eq!(
            p.plan(SimTime::ZERO, &loads, &cands),
            Some(HostMigration {
                candidate: 2,
                to: HostId::new(1)
            })
        );
        // Imbalance of 1: leave things alone.
        let loads = [load(0, 2, 4), load(1, 1, 4)];
        assert_eq!(p.plan(SimTime::ZERO, &loads, &cands), None);
    }

    #[test]
    fn labels_round_trip() {
        for kind in FleetPlacementKind::ALL {
            assert_eq!(
                FleetPlacementKind::from_label(&kind.to_string()),
                Some(kind)
            );
        }
        assert_eq!(FleetPlacementKind::from_label("warp-drive"), None);
        for kind in FleetRebalanceKind::ALL {
            assert_eq!(
                FleetRebalanceKind::from_label(&kind.to_string()),
                Some(kind)
            );
        }
        assert_eq!(FleetRebalanceKind::from_label("cost-aware"), None);
    }
}
