//! Task-to-device placement policies for multi-device worlds.
//!
//! When a host exposes several accelerators, the OS must decide which
//! device an arriving process gets its contexts and channels on — a
//! decision made once per admission (and again on migration), with only
//! kernel-observable load signals available. A [`Placement`] policy
//! sees a [`DeviceLoad`] snapshot per device and picks one with enough
//! free contexts/channels; tasks pinned by the operator bypass the
//! policy entirely.
//!
//! On topology-aware hosts the snapshot also carries each device's
//! interconnect distance from host memory and the cost of staging the
//! arriving task's working set there ([`DeviceLoad::host_distance`],
//! [`DeviceLoad::staging_cost`]); [`LocalityFirst`] and [`CostMin`]
//! consume these, while the flat policies ignore them. On symmetric
//! free-interconnect topologies the fields are uniformly zero-ish and
//! every policy behaves as before.
//!
//! Policies are deterministic: equal snapshots produce equal choices,
//! which keeps multi-device simulations reproducible per seed.

use neon_gpu::DeviceId;
use neon_sim::SimDuration;

/// Kernel-observable load of one device at a placement instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceLoad {
    /// The device.
    pub device: DeviceId,
    /// Live tasks holding contexts on the device.
    pub tenants: usize,
    /// Contexts still allocatable.
    pub free_contexts: usize,
    /// Channels still allocatable.
    pub free_channels: usize,
    /// Requests queued on the device's channels (not counting running).
    pub queued_requests: usize,
    /// Cumulative busy time across the device's engines — a long-term
    /// load signal.
    pub busy: SimDuration,
    /// Requests the device has completed so far (reference-counter
    /// sums); `busy / completed` estimates the mean service time.
    pub completed: u64,
    /// Interconnect distance rank of the host→device path
    /// ([`neon_gpu::LinkTier::rank`]); 1 on a flat topology.
    pub host_distance: u32,
    /// Cost of staging the arriving task's working set from host
    /// memory onto this device; zero on free interconnects.
    pub staging_cost: SimDuration,
}

impl DeviceLoad {
    /// `true` if a task needing `channels` channels (and one context)
    /// can be admitted here.
    pub fn fits(&self, channels: usize) -> bool {
        self.free_contexts >= 1 && self.free_channels >= channels
    }

    /// Estimated queueing delay ahead of a new arrival: queued work ×
    /// the observed mean service time (zero until the device has
    /// completed anything — an idle device predicts no wait).
    pub fn estimated_wait(&self) -> SimDuration {
        if self.completed == 0 {
            return SimDuration::ZERO;
        }
        (self.busy / self.completed) * self.queued_requests as u64
    }
}

/// A task-to-device placement policy.
///
/// `place` must return a device whose [`DeviceLoad::fits`] holds for
/// `channels`, or `None` when no device has room (the arrival is then
/// rejected, the multi-device generalization of the §6.3 condition).
pub trait Placement: Send {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Chooses a device for an arriving task needing `channels`
    /// channels. `loads` is ordered by device id.
    fn place(&mut self, loads: &[DeviceLoad], channels: usize) -> Option<DeviceId>;
}

/// Picks the device with the least queued work, breaking ties by
/// cumulative busy time, then tenant count (so a burst of arrivals at
/// an idle host still spreads out), then device id.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl Placement for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn place(&mut self, loads: &[DeviceLoad], channels: usize) -> Option<DeviceId> {
        loads
            .iter()
            .filter(|l| l.fits(channels))
            .min_by_key(|l| (l.queued_requests, l.busy, l.tenants, l.device))
            .map(|l| l.device)
    }
}

/// Cycles through devices in id order, skipping full ones.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Placement for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place(&mut self, loads: &[DeviceLoad], channels: usize) -> Option<DeviceId> {
        if loads.is_empty() {
            return None;
        }
        for i in 0..loads.len() {
            let idx = (self.next + i) % loads.len();
            if loads[idx].fits(channels) {
                self.next = (idx + 1) % loads.len();
                return Some(loads[idx].device);
            }
        }
        None
    }
}

/// Picks the device with the fewest live tenants (ties by device id) —
/// balances population rather than instantaneous queue depth.
#[derive(Debug, Default)]
pub struct FewestTenants;

impl Placement for FewestTenants {
    fn name(&self) -> &'static str {
        "fewest-tenants"
    }

    fn place(&mut self, loads: &[DeviceLoad], channels: usize) -> Option<DeviceId> {
        loads
            .iter()
            .filter(|l| l.fits(channels))
            .min_by_key(|l| (l.tenants, l.device))
            .map(|l| l.device)
    }
}

/// Fills the interconnect-nearest devices first: among fitting devices
/// the smallest [`DeviceLoad::host_distance`] wins outright, with
/// population/load tie-breaks inside a distance class. Keeps traffic
/// on the near NUMA/PCIe domain at the price of contention there;
/// spills outward only when the near devices are full. On a flat
/// topology every distance ties and the policy degrades to spreading.
#[derive(Debug, Default)]
pub struct LocalityFirst;

impl Placement for LocalityFirst {
    fn name(&self) -> &'static str {
        "locality-first"
    }

    fn place(&mut self, loads: &[DeviceLoad], channels: usize) -> Option<DeviceId> {
        loads
            .iter()
            .filter(|l| l.fits(channels))
            .min_by_key(|l| {
                (
                    l.host_distance,
                    l.tenants,
                    l.queued_requests,
                    l.busy,
                    l.device,
                )
            })
            .map(|l| l.device)
    }
}

/// Minimizes the arriving task's estimated start-up cost: the staging
/// transfer ([`DeviceLoad::staging_cost`], working-set × link tier)
/// plus the queueing delay predicted from observed service times
/// ([`DeviceLoad::estimated_wait`]). Trades distance against
/// contention — spills to a far device exactly when the near queues
/// cost more than the wire. On a free interconnect it reduces to a
/// wait-minimizing least-loaded variant.
#[derive(Debug, Default)]
pub struct CostMin;

impl Placement for CostMin {
    fn name(&self) -> &'static str {
        "cost-min"
    }

    fn place(&mut self, loads: &[DeviceLoad], channels: usize) -> Option<DeviceId> {
        loads
            .iter()
            .filter(|l| l.fits(channels))
            .min_by_key(|l| {
                (
                    l.staging_cost + l.estimated_wait(),
                    l.tenants,
                    l.queued_requests,
                    l.busy,
                    l.device,
                )
            })
            .map(|l| l.device)
    }
}

/// Sends every (unpinned) task to one fixed device; arrivals are
/// rejected when it is full even if siblings have room. The degenerate
/// baseline that makes the other policies' benefit measurable.
#[derive(Debug)]
pub struct Pinned {
    device: DeviceId,
}

impl Pinned {
    /// A policy pinning everything to `device`.
    pub fn new(device: DeviceId) -> Self {
        Pinned { device }
    }
}

impl Placement for Pinned {
    fn name(&self) -> &'static str {
        "pinned"
    }

    fn place(&mut self, loads: &[DeviceLoad], channels: usize) -> Option<DeviceId> {
        loads
            .iter()
            .find(|l| l.device == self.device && l.fits(channels))
            .map(|l| l.device)
    }
}

/// The placement policies available to experiments, as a sweepable
/// axis (mirrors [`crate::sched::SchedulerKind`] for schedulers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementKind {
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`RoundRobin`].
    RoundRobin,
    /// [`FewestTenants`].
    FewestTenants,
    /// [`LocalityFirst`] (topology-aware).
    LocalityFirst,
    /// [`CostMin`] (topology-aware).
    CostMin,
    /// [`Pinned`] to the given device index.
    Pinned(u32),
}

impl PlacementKind {
    /// The non-parameterized policies, for exhaustive sweeps.
    pub const ALL: [PlacementKind; 5] = [
        PlacementKind::LeastLoaded,
        PlacementKind::RoundRobin,
        PlacementKind::FewestTenants,
        PlacementKind::LocalityFirst,
        PlacementKind::CostMin,
    ];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn Placement> {
        match self {
            PlacementKind::LeastLoaded => Box::new(LeastLoaded),
            PlacementKind::RoundRobin => Box::new(RoundRobin::default()),
            PlacementKind::FewestTenants => Box::new(FewestTenants),
            PlacementKind::LocalityFirst => Box::new(LocalityFirst),
            PlacementKind::CostMin => Box::new(CostMin),
            PlacementKind::Pinned(d) => Box::new(Pinned::new(DeviceId::new(d))),
        }
    }

    /// Parses the label form back into a kind (`"least-loaded"`,
    /// `"round-robin"`, `"fewest-tenants"`, `"locality-first"`,
    /// `"cost-min"`, `"pinned:<device>"`).
    pub fn from_label(label: &str) -> Option<PlacementKind> {
        if let Some(rest) = label.strip_prefix("pinned:") {
            return rest.parse::<u32>().ok().map(PlacementKind::Pinned);
        }
        PlacementKind::ALL
            .into_iter()
            .find(|k| k.to_string() == label)
    }
}

impl std::fmt::Display for PlacementKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementKind::LeastLoaded => f.write_str("least-loaded"),
            PlacementKind::RoundRobin => f.write_str("round-robin"),
            PlacementKind::FewestTenants => f.write_str("fewest-tenants"),
            PlacementKind::LocalityFirst => f.write_str("locality-first"),
            PlacementKind::CostMin => f.write_str("cost-min"),
            PlacementKind::Pinned(d) => write!(f, "pinned:{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(device: u32, tenants: usize, free: usize, queued: usize) -> DeviceLoad {
        DeviceLoad {
            device: DeviceId::new(device),
            tenants,
            free_contexts: free,
            free_channels: free * 2,
            queued_requests: queued,
            busy: SimDuration::ZERO,
            completed: 0,
            host_distance: 1,
            staging_cost: SimDuration::ZERO,
        }
    }

    #[test]
    fn least_loaded_prefers_shortest_queue_and_skips_full() {
        let mut p = LeastLoaded;
        let loads = [load(0, 4, 0, 0), load(1, 2, 3, 9), load(2, 2, 3, 4)];
        assert_eq!(p.place(&loads, 1), Some(DeviceId::new(2)));
        // Device 0 has the shortest queue but no room: never chosen.
        let loads = [load(0, 1, 0, 0), load(1, 5, 1, 100)];
        assert_eq!(p.place(&loads, 1), Some(DeviceId::new(1)));
    }

    #[test]
    fn round_robin_cycles_and_skips_full() {
        let mut p = RoundRobin::default();
        let loads = [load(0, 0, 2, 0), load(1, 0, 2, 0), load(2, 0, 0, 0)];
        assert_eq!(p.place(&loads, 1), Some(DeviceId::new(0)));
        assert_eq!(p.place(&loads, 1), Some(DeviceId::new(1)));
        // Device 2 is full: wraps back to 0.
        assert_eq!(p.place(&loads, 1), Some(DeviceId::new(0)));
    }

    #[test]
    fn fewest_tenants_balances_population() {
        let mut p = FewestTenants;
        let loads = [load(0, 3, 5, 0), load(1, 1, 5, 50), load(2, 2, 5, 0)];
        assert_eq!(p.place(&loads, 1), Some(DeviceId::new(1)));
    }

    #[test]
    fn locality_first_fills_near_devices_before_spilling() {
        let mut p = LocalityFirst;
        let mut near = load(0, 6, 2, 40);
        near.host_distance = 1;
        let mut far = load(1, 0, 8, 0);
        far.host_distance = 3;
        // The near device is busy but has room: locality wins.
        assert_eq!(p.place(&[near, far], 1), Some(DeviceId::new(0)));
        // The near device is full: spill to the far one.
        near.free_contexts = 0;
        assert_eq!(p.place(&[near, far], 1), Some(DeviceId::new(1)));
    }

    #[test]
    fn cost_min_trades_distance_against_queueing() {
        let mut p = CostMin;
        // Near device: 100 µs mean service, 40 queued -> ~4 ms wait.
        let mut near = load(0, 4, 4, 40);
        near.busy = SimDuration::from_millis(10);
        near.completed = 100;
        near.staging_cost = SimDuration::from_micros(50);
        // Far device: idle, but 1 ms of staging.
        let mut far = load(1, 0, 4, 0);
        far.host_distance = 3;
        far.staging_cost = SimDuration::from_millis(1);
        assert_eq!(
            p.place(&[near, far], 1),
            Some(DeviceId::new(1)),
            "4 ms of queueing must outweigh 1 ms of staging"
        );
        // Shrink the near queue: the wire now costs more than the wait.
        near.queued_requests = 2;
        assert_eq!(p.place(&[near, far], 1), Some(DeviceId::new(0)));
    }

    #[test]
    fn estimated_wait_is_zero_without_history() {
        let l = load(0, 0, 4, 50);
        assert_eq!(l.estimated_wait(), SimDuration::ZERO);
    }

    #[test]
    fn pinned_never_spills() {
        let mut p = Pinned::new(DeviceId::new(1));
        let loads = [load(0, 0, 5, 0), load(1, 9, 0, 0)];
        assert_eq!(p.place(&loads, 1), None, "pinned device full: reject");
    }

    #[test]
    fn no_policy_places_on_a_device_without_room() {
        let loads = [load(0, 0, 1, 0), load(1, 0, 2, 5)];
        for kind in PlacementKind::ALL {
            let mut p = kind.build();
            // Needs 3 channels; device 0 offers 2, device 1 offers 4.
            assert_eq!(
                p.place(&loads, 3),
                Some(DeviceId::new(1)),
                "{kind}: must skip the device that cannot fit the task"
            );
            assert_eq!(p.place(&loads, 5), None, "{kind}: nothing fits");
        }
    }

    #[test]
    fn labels_round_trip() {
        for kind in PlacementKind::ALL {
            assert_eq!(PlacementKind::from_label(&kind.to_string()), Some(kind));
        }
        assert_eq!(
            PlacementKind::from_label("pinned:3"),
            Some(PlacementKind::Pinned(3))
        );
        assert_eq!(PlacementKind::Pinned(3).to_string(), "pinned:3");
        assert_eq!(
            PlacementKind::from_label("locality-first"),
            Some(PlacementKind::LocalityFirst)
        );
        assert_eq!(
            PlacementKind::from_label("cost-min"),
            Some(PlacementKind::CostMin)
        );
        assert_eq!(PlacementKind::from_label("warp-drive"), None);
    }
}
