//! Protected allocation of GPU channels (§6.3).
//!
//! Existing GPUs hand out channels first-come first-served: after 48
//! contexts (one compute + one DMA channel each) the paper's GTX670
//! rejects every newcomer, so a malicious application can lock everyone
//! else out simply by opening contexts. The paper proposes an OS-level
//! allocation policy: limit any one application to a small constant
//! `C` of channels, and admit at most `D/C` applications for a device
//! with `D` channels.

use std::collections::BTreeMap;

use neon_gpu::TaskId;

/// Outcome of a channel-allocation request under the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaDecision {
    /// The allocation may proceed.
    Grant,
    /// The application reached its per-task channel limit `C`; the
    /// request fails with "out of resources" but the device is safe.
    TaskLimit,
    /// The admission limit `D/C` is reached; no new application may
    /// join until one leaves.
    AdmissionLimit,
}

/// The §6.3 channel-allocation policy.
///
/// # Example
///
/// ```
/// use neon_core::quota::{ChannelQuota, QuotaDecision};
/// use neon_gpu::TaskId;
///
/// // A device with 8 channels, at most 2 per task: 4 tasks max.
/// let mut quota = ChannelQuota::new(8, 2);
/// let attacker = TaskId::new(0);
/// assert_eq!(quota.request(attacker), QuotaDecision::Grant);
/// assert_eq!(quota.request(attacker), QuotaDecision::Grant);
/// // The attacker is stopped at its limit; the device stays available.
/// assert_eq!(quota.request(attacker), QuotaDecision::TaskLimit);
/// assert_eq!(quota.request(TaskId::new(1)), QuotaDecision::Grant);
/// ```
#[derive(Debug, Clone)]
pub struct ChannelQuota {
    device_channels: usize,
    per_task_limit: usize,
    held: BTreeMap<TaskId, usize>,
}

impl ChannelQuota {
    /// Creates the policy for a device with `device_channels` channels
    /// and a per-task limit of `per_task_limit`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(device_channels: usize, per_task_limit: usize) -> Self {
        assert!(device_channels > 0, "device must have channels");
        assert!(per_task_limit > 0, "per-task limit must be positive");
        ChannelQuota {
            device_channels,
            per_task_limit,
            held: BTreeMap::new(),
        }
    }

    /// Maximum applications the policy admits (`D/C`).
    pub fn max_tasks(&self) -> usize {
        self.device_channels / self.per_task_limit
    }

    /// Channels currently held by `task`.
    pub fn held_by(&self, task: TaskId) -> usize {
        self.held.get(&task).copied().unwrap_or(0)
    }

    /// Total channels currently granted.
    pub fn total_held(&self) -> usize {
        self.held.values().sum()
    }

    /// Evaluates (and on success records) a channel allocation by
    /// `task`.
    pub fn request(&mut self, task: TaskId) -> QuotaDecision {
        let holding = self.held_by(task);
        if holding >= self.per_task_limit {
            return QuotaDecision::TaskLimit;
        }
        if holding == 0 && self.held.len() >= self.max_tasks() {
            return QuotaDecision::AdmissionLimit;
        }
        *self.held.entry(task).or_insert(0) += 1;
        QuotaDecision::Grant
    }

    /// Releases every channel held by `task` (exit or kill).
    pub fn release_task(&mut self, task: TaskId) {
        self.held.remove(&task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_task_limit_enforced() {
        let mut q = ChannelQuota::new(96, 2);
        let t = TaskId::new(0);
        assert_eq!(q.request(t), QuotaDecision::Grant);
        assert_eq!(q.request(t), QuotaDecision::Grant);
        assert_eq!(q.request(t), QuotaDecision::TaskLimit);
        assert_eq!(q.held_by(t), 2);
    }

    #[test]
    fn admission_limit_is_d_over_c() {
        let mut q = ChannelQuota::new(6, 2);
        assert_eq!(q.max_tasks(), 3);
        for i in 0..3 {
            assert_eq!(q.request(TaskId::new(i)), QuotaDecision::Grant);
        }
        assert_eq!(q.request(TaskId::new(3)), QuotaDecision::AdmissionLimit);
        // Existing holders can still grow to their limit.
        assert_eq!(q.request(TaskId::new(0)), QuotaDecision::Grant);
    }

    #[test]
    fn release_makes_room() {
        let mut q = ChannelQuota::new(4, 2);
        q.request(TaskId::new(0));
        q.request(TaskId::new(1));
        assert_eq!(q.request(TaskId::new(2)), QuotaDecision::AdmissionLimit);
        q.release_task(TaskId::new(0));
        assert_eq!(q.request(TaskId::new(2)), QuotaDecision::Grant);
        assert_eq!(q.total_held(), 2);
    }

    #[test]
    #[should_panic(expected = "per-task limit")]
    fn zero_limit_rejected() {
        let _ = ChannelQuota::new(8, 0);
    }
}
