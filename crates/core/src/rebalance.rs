//! Departure-triggered rebalancing policies for multi-device worlds.
//!
//! When a tenant departs, the populations left behind may be lopsided:
//! one device crowded, a sibling idle. Whether moving a task *pays* is
//! a policy question — the move tears down device state and, on a
//! cost-bearing [`Topology`], stalls the task for a working-set
//! transfer whose price depends on the link tier between the devices.
//! Mirroring [`crate::placement::Placement`], a [`Rebalance`] policy
//! sees the same kernel-observable [`DeviceLoad`] snapshots (plus the
//! movable candidates and the topology's transfer pricing) and either
//! names one migration or declines.
//!
//! Three policies ship:
//!
//! - [`Off`] — never migrate (the default).
//! - [`CountDiff`] — the original heuristic: move one task from the
//!   most- to the least-populated device whenever the tenant counts
//!   differ by ≥ 2. Charge-blind: it consults only populations, never
//!   what the move costs, so a departure storm on a heterogeneous
//!   topology can shuttle the same task across a cross-NUMA link
//!   repeatedly. Kept as the measurable baseline; byte-identical to
//!   the pre-subsystem `rebalance = true` behavior.
//! - [`CostAware`] — the paper's "measure, then act only when it
//!   pays" premise (§4's disengagement applied to migration): move
//!   only when the observed queueing-delay gain, amortized over a
//!   payback window and damped by a hysteresis factor, exceeds the
//!   working-set transfer cost — and never re-move a task inside its
//!   cooldown window (no ping-pong).
//!
//! Policies are deterministic: equal inputs produce equal choices, so
//! multi-device simulations stay reproducible per seed.

use neon_gpu::{DeviceId, TaskId, Topology};
use neon_sim::{SimDuration, SimTime};

use crate::placement::DeviceLoad;

/// A live, unpinned task the world would allow a policy to move, with
/// the attributes migration pricing needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationCandidate {
    /// The task.
    pub task: TaskId,
    /// The device it currently lives on.
    pub from: DeviceId,
    /// Channels the task holds (what the target must fit).
    pub channels: usize,
    /// Device-resident working-set size in bytes — what a migration
    /// moves across the interconnect.
    pub working_set: u64,
    /// When the task last migrated, if ever (recency signal for
    /// ping-pong suppression).
    pub last_migrated: Option<SimTime>,
}

/// One migration a policy asks the world to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// The task to move.
    pub task: TaskId,
    /// The device to move it to.
    pub to: DeviceId,
}

/// A departure-triggered rebalancing policy.
///
/// After every departure on a multi-device world, the world hands the
/// policy the current [`DeviceLoad`] snapshot (device-id order), the
/// movable candidates (task-id order; pinned and dead tasks are
/// already excluded), and the topology for transfer pricing. The
/// policy returns at most one migration; the world verifies the plan
/// before executing it (live unpinned task, real target with room) and
/// refuses unsound or same-device plans with a traced no-op instead of
/// tearing anything down.
pub trait Rebalance: Send {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// `false` if the policy never migrates — lets the world skip
    /// building snapshots on the departure path entirely.
    fn active(&self) -> bool {
        true
    }

    /// Picks at most one migration given the post-departure state.
    fn plan(
        &mut self,
        now: SimTime,
        topology: &Topology,
        loads: &[DeviceLoad],
        candidates: &[MigrationCandidate],
    ) -> Option<Migration>;

    /// Cumulative `(vetoed, cooled_down)` decision counts: candidate
    /// moves the policy rejected on cost grounds, and candidates it
    /// skipped because they migrated too recently. The world folds
    /// these into [`SimStats`](crate::telemetry::SimStats) at report
    /// time. Policies that never veto (the default) report zeros.
    fn decision_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// The most- and least-populated devices, exactly as the legacy
/// heuristic chose them: first index wins ties in both directions.
fn extremes(loads: &[DeviceLoad]) -> (usize, usize) {
    let mut max_i = 0;
    let mut min_i = 0;
    for (i, l) in loads.iter().enumerate() {
        if l.tenants > loads[max_i].tenants {
            max_i = i;
        }
        if l.tenants < loads[min_i].tenants {
            min_i = i;
        }
    }
    (max_i, min_i)
}

/// Never migrates.
#[derive(Debug, Default)]
pub struct Off;

impl Rebalance for Off {
    fn name(&self) -> &'static str {
        "off"
    }

    fn active(&self) -> bool {
        false
    }

    fn plan(
        &mut self,
        _now: SimTime,
        _topology: &Topology,
        _loads: &[DeviceLoad],
        _candidates: &[MigrationCandidate],
    ) -> Option<Migration> {
        None
    }
}

/// The original count-difference heuristic: when the most- and
/// least-populated devices differ by ≥ 2 tenants, move the
/// most-recently admitted movable task from the former to the latter
/// (if it fits). Consults populations only — transfer costs are
/// charged but never weighed.
#[derive(Debug, Default)]
pub struct CountDiff;

impl Rebalance for CountDiff {
    fn name(&self) -> &'static str {
        "count-diff"
    }

    fn plan(
        &mut self,
        _now: SimTime,
        _topology: &Topology,
        loads: &[DeviceLoad],
        candidates: &[MigrationCandidate],
    ) -> Option<Migration> {
        let (max_i, min_i) = extremes(loads);
        if loads[max_i].tenants < loads[min_i].tenants + 2 {
            return None;
        }
        let target = &loads[min_i];
        candidates
            .iter()
            .rev()
            .find(|c| c.from == loads[max_i].device && target.fits(c.channels))
            .map(|c| Migration {
                task: c.task,
                to: target.device,
            })
    }
}

/// Cost-aware rebalancing: migrate only when it pays.
///
/// On the same ≥ 2 population-imbalance trigger as [`CountDiff`], the
/// policy estimates what a move would buy per round — the difference
/// between the source's and the target's
/// [`DeviceLoad::estimated_wait`] — and what it would cost once —
/// [`Topology::migration_cost`] for the candidate's working set. The
/// transfer is a one-time charge the task pays back round after round
/// on the less crowded device, so the per-round gain is amortized over
/// `payback_rounds` and damped by `hysteresis`; a task moves only when
///
/// ```text
/// gain × payback_rounds × hysteresis > cost
/// ```
///
/// with `hysteresis` in `(0, 1]` requiring strictly more than
/// break-even evidence (the smaller the factor, the stronger the
/// observed contention must be).
///
/// Candidates are tried in the baseline's order — the most recent
/// admission on the crowded device first — with the cost test acting
/// as a *veto*, never as a preference for cheap tasks (preferring the
/// cheapest working set would keep shuffling small long-lived tenants
/// while the heavy ones stay piled up). For the chosen candidate the
/// target with the best net benefit wins, which on a topology often
/// means the nearest relieved device rather than the emptiest one.
/// Tasks migrated within the last `cooldown` are never re-moved, which
/// bounds per-task migration frequency and forbids ping-pong outright.
///
/// The defaults are calibrated on the `figP` heterogeneous host so
/// that cost-aware matches the charge-blind baseline's p95 round time
/// while migrating less and moving fewer bytes; shrink
/// `payback_rounds` (or `hysteresis`) to bias further toward staying
/// put.
#[derive(Debug, Clone)]
pub struct CostAware {
    /// Gain damping factor in `(0, 1]`. Default `0.5` (the amortized
    /// gain must be worth twice the wire).
    pub hysteresis: f64,
    /// Rounds over which a migration's one-time transfer must pay for
    /// itself out of per-round queueing-delay gains. Default 384
    /// (the snapshot wait underestimates the benefit of escaping a
    /// crowded device for a whole residence, so the window is long).
    pub payback_rounds: u32,
    /// Minimum time between two migrations of the same task.
    /// Default 10 ms.
    pub cooldown: SimDuration,
    /// Candidate→target moves rejected because the damped amortized
    /// gain did not beat the transfer cost (reported through
    /// [`Rebalance::decision_stats`]).
    vetoed: u64,
    /// Candidates skipped inside their cooldown window.
    cooled: u64,
}

impl Default for CostAware {
    fn default() -> Self {
        CostAware {
            hysteresis: 0.5,
            payback_rounds: 384,
            cooldown: SimDuration::from_millis(10),
            vetoed: 0,
            cooled: 0,
        }
    }
}

impl Rebalance for CostAware {
    fn name(&self) -> &'static str {
        "cost-aware"
    }

    fn decision_stats(&self) -> (u64, u64) {
        (self.vetoed, self.cooled)
    }

    fn plan(
        &mut self,
        now: SimTime,
        topology: &Topology,
        loads: &[DeviceLoad],
        candidates: &[MigrationCandidate],
    ) -> Option<Migration> {
        let (max_i, min_i) = extremes(loads);
        if loads[max_i].tenants < loads[min_i].tenants + 2 {
            return None;
        }
        let source = &loads[max_i];
        // Candidate order matches the baseline: the most recent
        // admission on the crowded device moves first (under open-loop
        // churn that is the newest — typically heaviest-queued —
        // arrival, whose relocation actually relieves the queue). The
        // cost model is a *veto*, not a preference for cheap tasks:
        // preferring the cheapest working set would keep shuffling
        // small long-lived residents while the heavy tenants stay
        // piled up.
        for c in candidates.iter().rev() {
            if c.from != source.device {
                continue;
            }
            if let Some(at) = c.last_migrated {
                if now.saturating_duration_since(at) < self.cooldown {
                    self.cooled += 1;
                    continue;
                }
            }
            // Any device at least two tenants below the source is a
            // candidate target — on a topology the *nearest* relieved
            // device often beats the emptiest one once the wire is
            // priced, so this maximizes net benefit per target rather
            // than fixating on the minimum. In-order scan keeps the
            // lowest device id on exact net ties.
            let mut best: Option<(SimDuration, DeviceId)> = None;
            for target in loads {
                if target.tenants + 2 > source.tenants || !target.fits(c.channels) {
                    continue;
                }
                let gain = source
                    .estimated_wait()
                    .saturating_sub(target.estimated_wait());
                let damped = gain.mul_f64(self.payback_rounds as f64 * self.hysteresis);
                let cost =
                    topology.migration_cost(c.from.index(), target.device.index(), c.working_set);
                if damped <= cost {
                    self.vetoed += 1;
                    continue;
                }
                let net = damped - cost;
                if best.as_ref().is_none_or(|(b, _)| net > *b) {
                    best = Some((net, target.device));
                }
            }
            if let Some((_, to)) = best {
                return Some(Migration { task: c.task, to });
            }
        }
        None
    }
}

/// The rebalancing policies available to experiments, as a sweepable
/// axis (mirrors [`crate::placement::PlacementKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RebalanceKind {
    /// [`Off`]: never migrate.
    Off,
    /// [`CountDiff`]: the charge-blind population heuristic.
    CountDiff,
    /// [`CostAware`]: migrate only when the estimated gain beats the
    /// transfer cost (default hysteresis and cooldown).
    CostAware,
}

impl RebalanceKind {
    /// Every policy, for exhaustive sweeps.
    pub const ALL: [RebalanceKind; 3] = [
        RebalanceKind::Off,
        RebalanceKind::CountDiff,
        RebalanceKind::CostAware,
    ];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn Rebalance> {
        match self {
            RebalanceKind::Off => Box::new(Off),
            RebalanceKind::CountDiff => Box::new(CountDiff),
            RebalanceKind::CostAware => Box::new(CostAware::default()),
        }
    }

    /// Parses the label form back into a kind (`"off"`,
    /// `"count-diff"`, `"cost-aware"`; `"cost"` is accepted as
    /// shorthand for the latter).
    pub fn from_label(label: &str) -> Option<RebalanceKind> {
        if label == "cost" {
            return Some(RebalanceKind::CostAware);
        }
        RebalanceKind::ALL
            .into_iter()
            .find(|k| k.to_string() == label)
    }

    /// The kind a legacy `rebalance = true/false` toggle means.
    pub fn from_legacy_bool(on: bool) -> RebalanceKind {
        if on {
            RebalanceKind::CountDiff
        } else {
            RebalanceKind::Off
        }
    }
}

impl std::fmt::Display for RebalanceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebalanceKind::Off => f.write_str("off"),
            RebalanceKind::CountDiff => f.write_str("count-diff"),
            RebalanceKind::CostAware => f.write_str("cost-aware"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neon_gpu::{DeviceSlotSpec, GpuConfig, InterconnectParams};

    fn load(device: u32, tenants: usize, free: usize) -> DeviceLoad {
        DeviceLoad {
            device: DeviceId::new(device),
            tenants,
            free_contexts: free,
            free_channels: free * 2,
            queued_requests: 0,
            busy: SimDuration::ZERO,
            completed: 0,
            host_distance: 1,
            staging_cost: SimDuration::ZERO,
        }
    }

    fn cand(task: u32, from: u32) -> MigrationCandidate {
        MigrationCandidate {
            task: TaskId::new(task),
            from: DeviceId::new(from),
            channels: 1,
            working_set: 64 << 20,
            last_migrated: None,
        }
    }

    fn flat(n: usize) -> Topology {
        Topology::symmetric(n, GpuConfig::default())
    }

    /// Two devices a NUMA hop apart with PCIe-gen3 pricing.
    fn cross_numa() -> Topology {
        Topology::new(
            vec![
                DeviceSlotSpec {
                    config: GpuConfig::default(),
                    numa: 0,
                    switch_id: 0,
                },
                DeviceSlotSpec {
                    config: GpuConfig::default(),
                    numa: 1,
                    switch_id: 1,
                },
            ],
            InterconnectParams::pcie_gen3(),
        )
    }

    fn now() -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(50)
    }

    #[test]
    fn off_is_inactive_and_never_plans() {
        let mut p = Off;
        assert!(!p.active());
        let loads = [load(0, 5, 4), load(1, 0, 4)];
        let cands = [cand(0, 0), cand(1, 0)];
        assert_eq!(p.plan(now(), &flat(2), &loads, &cands), None);
    }

    #[test]
    fn count_diff_moves_latest_fitting_task_on_imbalance() {
        let mut p = CountDiff;
        let loads = [load(0, 3, 4), load(1, 1, 4)];
        let cands = [cand(0, 0), cand(1, 1), cand(2, 0)];
        assert_eq!(
            p.plan(now(), &flat(2), &loads, &cands),
            Some(Migration {
                task: TaskId::new(2),
                to: DeviceId::new(1)
            }),
            "the most recent admission on the crowded device moves"
        );
        // Imbalance of 1: leave things alone.
        let loads = [load(0, 2, 4), load(1, 1, 4)];
        assert_eq!(p.plan(now(), &flat(2), &loads, &cands), None);
    }

    #[test]
    fn count_diff_respects_target_capacity() {
        let mut p = CountDiff;
        // Imbalanced, but the empty device has no free contexts (e.g.
        // exhausted by a burst admitted between snapshots).
        let loads = [load(0, 4, 4), load(1, 0, 0)];
        let cands = [cand(0, 0), cand(1, 0)];
        assert_eq!(p.plan(now(), &flat(2), &loads, &cands), None);
        // A wide task is skipped in favor of one that fits.
        let loads = [load(0, 4, 4), load(1, 0, 1)];
        let mut wide = cand(9, 0);
        wide.channels = 5;
        let cands = [cand(0, 0), wide];
        assert_eq!(
            p.plan(now(), &flat(2), &loads, &cands),
            Some(Migration {
                task: TaskId::new(0),
                to: DeviceId::new(1)
            })
        );
    }

    /// A source load whose estimated wait is `wait_us` (one queued
    /// request at an observed mean service of `wait_us`).
    fn busy_load(device: u32, tenants: usize, wait_us: u64) -> DeviceLoad {
        let mut l = load(device, tenants, 4);
        l.queued_requests = 1;
        l.busy = SimDuration::from_micros(wait_us);
        l.completed = 1;
        l
    }

    #[test]
    fn cost_aware_declines_when_the_wire_costs_more_than_the_wait() {
        let mut p = CostAware::default();
        // Cross-NUMA 1 GiB ≈ 179 ms of transfer; a 600 µs per-round
        // gain amortizes to ~115 ms over the default window — the
        // baseline would move, cost-aware must not.
        let loads = [busy_load(0, 3, 600), load(1, 1, 4)];
        let mut heavy = [cand(0, 0), cand(1, 0)];
        for c in &mut heavy {
            c.working_set = 1 << 30;
        }
        assert_eq!(p.plan(now(), &cross_numa(), &loads, &heavy), None);
        // Same state on a free interconnect: the wire is free, so the
        // observed gain justifies the move (most recent admission).
        let mut free_p = CostAware::default();
        assert_eq!(
            free_p.plan(now(), &flat(2), &loads, &heavy),
            Some(Migration {
                task: TaskId::new(1),
                to: DeviceId::new(1)
            })
        );
    }

    #[test]
    fn cost_aware_moves_the_most_recent_admission_unless_vetoed() {
        let mut p = CostAware::default();
        // 40 ms of observed wait: the most recent admission moves,
        // even though an older task would be cheaper to transfer.
        let loads = [busy_load(0, 3, 40_000), load(1, 1, 4)];
        let mut small = cand(0, 0);
        small.working_set = 1 << 20;
        let cands = [small, cand(1, 0)];
        assert_eq!(
            p.plan(now(), &cross_numa(), &loads, &cands),
            Some(Migration {
                task: TaskId::new(1),
                to: DeviceId::new(1)
            })
        );
        // A most-recent admission whose transfer cannot pay for itself
        // (64 GiB across the NUMA hop) is vetoed — the next candidate
        // moves instead of nobody.
        let mut huge = cand(9, 0);
        huge.working_set = 64 << 30;
        let cands = [small, huge];
        assert_eq!(
            p.plan(now(), &cross_numa(), &loads, &cands),
            Some(Migration {
                task: TaskId::new(0),
                to: DeviceId::new(1)
            })
        );
    }

    #[test]
    fn cost_aware_prefers_the_nearest_relieved_target() {
        let mut p = CostAware::default();
        // Source on NUMA 0; one empty device a switch hop away, one
        // across the NUMA hop. Equal (zero) target waits: the cheaper
        // wire wins the net-benefit comparison.
        let topology = Topology::new(
            vec![
                DeviceSlotSpec {
                    config: GpuConfig::default(),
                    numa: 0,
                    switch_id: 0,
                },
                DeviceSlotSpec {
                    config: GpuConfig::default(),
                    numa: 0,
                    switch_id: 1,
                },
                DeviceSlotSpec {
                    config: GpuConfig::default(),
                    numa: 1,
                    switch_id: 2,
                },
            ],
            InterconnectParams::pcie_gen3(),
        );
        let loads = [busy_load(0, 4, 40_000), load(1, 0, 4), load(2, 0, 4)];
        let cands = [cand(0, 0), cand(1, 0)];
        assert_eq!(
            p.plan(now(), &topology, &loads, &cands),
            Some(Migration {
                task: TaskId::new(1),
                to: DeviceId::new(1)
            }),
            "cross-PCIe beats cross-NUMA at equal gain"
        );
    }

    #[test]
    fn cost_aware_cooldown_forbids_ping_pong() {
        let mut p = CostAware::default();
        let loads = [busy_load(0, 3, 40_000), load(1, 1, 4)];
        let mut recent = cand(0, 0);
        recent.last_migrated = Some(now() - SimDuration::from_millis(2));
        // The only candidate migrated 2 ms ago (< 10 ms cooldown).
        assert_eq!(p.plan(now(), &cross_numa(), &loads, &[recent]), None);
        // Once the cooldown has elapsed it may move again.
        recent.last_migrated = Some(now() - SimDuration::from_millis(15));
        assert_eq!(
            p.plan(now(), &cross_numa(), &loads, &[recent]),
            Some(Migration {
                task: TaskId::new(0),
                to: DeviceId::new(1)
            })
        );
    }

    #[test]
    fn cost_aware_requires_positive_gain_on_free_interconnects() {
        let mut p = CostAware::default();
        // Imbalanced but no observed queueing anywhere: gain is zero,
        // and zero × hysteresis never exceeds even a free wire.
        let loads = [load(0, 4, 4), load(1, 0, 4)];
        let cands = [cand(0, 0)];
        assert_eq!(p.plan(now(), &flat(2), &loads, &cands), None);
    }

    #[test]
    fn labels_round_trip() {
        for kind in RebalanceKind::ALL {
            assert_eq!(RebalanceKind::from_label(&kind.to_string()), Some(kind));
        }
        assert_eq!(
            RebalanceKind::from_label("cost"),
            Some(RebalanceKind::CostAware)
        );
        assert_eq!(RebalanceKind::from_label("warp-drive"), None);
        assert_eq!(
            RebalanceKind::from_legacy_bool(true),
            RebalanceKind::CountDiff
        );
        assert_eq!(RebalanceKind::from_legacy_bool(false), RebalanceKind::Off);
    }
}
