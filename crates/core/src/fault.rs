//! Deterministic fault injection: typed fault schedules and the
//! recovery tuning knobs the world's machinery runs under.
//!
//! A [`FaultPlan`] is a time-sorted list of [`FaultEvent`]s plus a
//! [`FaultConfig`] (watchdog timeout, retry budgets, backoff curve).
//! The plan is attached to a run through
//! [`crate::world::WorldConfig::faults`]; `None` (the default) keeps
//! the event stream — and every golden trace hash — byte-identical to
//! the fault-free model. With a plan attached, each event is scheduled
//! on the world's own event queue at its instant, so fault schedules
//! replay exactly under a fixed seed (the systematic-exploration
//! spirit of stateless model checking: a failing interleaving is a
//! value, not a flake).
//!
//! Fault taxonomy:
//!
//! - **Device hot-remove / hot-add** ([`FaultKind::DeviceRemove`],
//!   [`FaultKind::DeviceAdd`]): the Theseus-style reconfiguration
//!   item. Residents drain-and-migrate through the rebalancing
//!   machinery (priced by the `Topology`); with no surviving fit they
//!   park and retry under bounded exponential backoff.
//! - **Task hang** ([`FaultKind::TaskHang`]): the victim's next (or
//!   currently) running request never completes, wedging its engine
//!   until the per-device watchdog kills-and-requeues the task.
//! - **Task crash** ([`FaultKind::TaskCrash`]): immediate kill; the
//!   task is lost, its device state reclaimed.
//! - **Transient submission error** ([`FaultKind::SubmitError`]): the
//!   victim's next submission attempt fails once and is retried after
//!   the backoff base.
//! - **Whole-host failure / recovery** ([`FaultKind::HostFail`],
//!   [`FaultKind::HostRecover`]): fleet-scope events, ignored by a
//!   single [`crate::world::World`]; the `Fleet` planner truncates the
//!   failed host's residents and re-admits migratable ones across the
//!   cluster interconnect.

use neon_gpu::{DeviceId, TaskId};
use neon_sim::{SimDuration, SimTime};

/// One scheduled fault: what happens, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Injection instant (simulated time).
    pub at: SimTime,
    /// What is injected.
    pub kind: FaultKind,
}

/// The typed fault taxonomy. Task-targeted kinds take an optional
/// victim; `None` picks the lowest-id live task at the injection
/// instant (deterministic, and robust to schedules written without
/// knowledge of churn).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Hot-remove: the device goes offline; residents drain-and-migrate
    /// or park.
    DeviceRemove { device: DeviceId },
    /// Hot-add: a previously removed device returns to service; parked
    /// tasks retry immediately.
    DeviceAdd { device: DeviceId },
    /// The victim's running (or next dispatched) request never
    /// completes.
    TaskHang { task: Option<TaskId> },
    /// The victim process dies on the spot.
    TaskCrash { task: Option<TaskId> },
    /// The victim's next submission attempt fails once (retried after
    /// the backoff base).
    SubmitError { task: Option<TaskId> },
    /// Fleet scope: the whole host fails; its residents truncate and
    /// migratable ones re-admit across the cluster.
    HostFail { host: u32 },
    /// Fleet scope: a failed host returns with empty devices.
    HostRecover { host: u32 },
}

impl FaultKind {
    /// Stable label used by traces, TOML parsing and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::DeviceRemove { .. } => "device-remove",
            FaultKind::DeviceAdd { .. } => "device-add",
            FaultKind::TaskHang { .. } => "hang",
            FaultKind::TaskCrash { .. } => "crash",
            FaultKind::SubmitError { .. } => "submit-error",
            FaultKind::HostFail { .. } => "host-fail",
            FaultKind::HostRecover { .. } => "host-recover",
        }
    }

    /// The sweep-axis category this kind belongs to.
    pub fn category(&self) -> FaultCategory {
        match self {
            FaultKind::DeviceRemove { .. } | FaultKind::DeviceAdd { .. } => FaultCategory::Device,
            FaultKind::TaskHang { .. }
            | FaultKind::TaskCrash { .. }
            | FaultKind::SubmitError { .. } => FaultCategory::Task,
            FaultKind::HostFail { .. } | FaultKind::HostRecover { .. } => FaultCategory::Host,
        }
    }
}

/// Coarse fault category, the unit of the `faults` sweep axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCategory {
    Device,
    Task,
    Host,
}

/// One value of the `faults` sweep axis: which categories of the
/// scenario's fault schedule are injected in a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultMode {
    /// Inject nothing — the cell runs the fault-free model
    /// byte-identically ([`crate::world::WorldConfig::faults`] stays
    /// `None`).
    #[default]
    None,
    /// Device hot-remove/hot-add events only.
    Device,
    /// Task hangs, crashes and transient submission errors only.
    Task,
    /// Whole-host failure/recovery events only (fleet scenarios).
    Host,
    /// The full schedule.
    All,
}

impl FaultMode {
    /// Every mode, in sweep order.
    pub const ALL: [FaultMode; 5] = [
        FaultMode::None,
        FaultMode::Device,
        FaultMode::Task,
        FaultMode::Host,
        FaultMode::All,
    ];

    /// Stable label (TOML value, CLI value, CSV column value).
    pub fn label(&self) -> &'static str {
        match self {
            FaultMode::None => "none",
            FaultMode::Device => "device",
            FaultMode::Task => "task",
            FaultMode::Host => "host",
            FaultMode::All => "all",
        }
    }

    /// Parses a mode label.
    pub fn parse(s: &str) -> Option<FaultMode> {
        FaultMode::ALL.into_iter().find(|m| m.label() == s)
    }

    /// `true` if this mode injects events of `kind`.
    pub fn admits(&self, kind: FaultKind) -> bool {
        match self {
            FaultMode::None => false,
            FaultMode::All => true,
            FaultMode::Device => kind.category() == FaultCategory::Device,
            FaultMode::Task => kind.category() == FaultCategory::Task,
            FaultMode::Host => kind.category() == FaultCategory::Host,
        }
    }
}

/// Recovery-machinery tuning: the watchdog and the retry/backoff
/// curves. All durations must be positive (enforced by
/// [`FaultPlan::validate`]; the scenario loader reports the offending
/// TOML key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// Per-device watchdog timeout: a running request stagnant longer
    /// than this gets its task killed-and-requeued. `None` (the
    /// default) never arms the watchdog — hangs then persist until the
    /// horizon.
    pub watchdog: Option<SimDuration>,
    /// How many watchdog kill-and-requeue cycles one task lineage gets
    /// before it is declared lost.
    pub retry_budget: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: SimDuration,
    /// Upper bound of the exponential backoff.
    pub backoff_cap: SimDuration,
    /// How many re-admission attempts a task displaced by a hot-remove
    /// gets before it is declared lost.
    pub max_park_retries: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            watchdog: None,
            retry_budget: 2,
            backoff_base: SimDuration::from_micros(500),
            backoff_cap: SimDuration::from_millis(8),
            max_park_retries: 8,
        }
    }
}

impl FaultConfig {
    /// The delay before retry `attempt` (0-based): `base * 2^attempt`,
    /// capped. Doubling is iterative, so a huge attempt count saturates
    /// at the cap instead of overflowing.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let mut d = self.backoff_base;
        for _ in 0..attempt.min(32) {
            if d >= self.backoff_cap {
                return self.backoff_cap;
            }
            d = d + d;
        }
        d.min(self.backoff_cap)
    }
}

/// A deterministic fault schedule: time-sorted events plus the
/// recovery configuration they are handled under.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    /// Recovery tuning the world runs under while this plan is
    /// attached.
    pub config: FaultConfig,
}

impl FaultPlan {
    /// An empty plan under `config` — attach events with
    /// [`FaultPlan::push`].
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            events: Vec::new(),
            config,
        }
    }

    /// Appends an event, keeping the list time-sorted (stable: equal
    /// instants keep insertion order, so a schedule replays in the
    /// order it was written).
    pub fn push(&mut self, at: SimTime, kind: FaultKind) -> &mut Self {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, kind });
        self
    }

    /// The time-sorted schedule.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The plan restricted to the categories `mode` admits (same
    /// config). [`FaultMode::None`] yields an empty plan — callers
    /// should then leave `WorldConfig::faults` as `None` so the run
    /// stays byte-identical to the fault-free model.
    pub fn filtered(&self, mode: FaultMode) -> FaultPlan {
        FaultPlan {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| mode.admits(e.kind))
                .collect(),
            config: self.config.clone(),
        }
    }

    /// The world-level slice of the plan: host-scope events stripped
    /// (the fleet layer consumes those).
    pub fn world_plan(&self) -> FaultPlan {
        FaultPlan {
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| e.kind.category() != FaultCategory::Host)
                .collect(),
            config: self.config.clone(),
        }
    }

    /// The host-scope events, in time order.
    pub fn host_events(&self) -> Vec<FaultEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.kind.category() == FaultCategory::Host)
            .collect()
    }

    /// Rejects non-positive durations (a zero watchdog or backoff is a
    /// config typo that would otherwise busy-loop the event queue) and
    /// an inverted backoff range. The message names the offending knob
    /// so the scenario loader can surface it keyed.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(w) = self.config.watchdog {
            if w.is_zero() {
                return Err("fault.watchdog must be positive".into());
            }
        }
        if self.config.backoff_base.is_zero() {
            return Err("fault.backoff_base must be positive".into());
        }
        if self.config.backoff_cap.is_zero() {
            return Err("fault.backoff_cap must be positive".into());
        }
        if self.config.backoff_cap < self.config.backoff_base {
            return Err("fault.backoff_cap must be >= fault.backoff_base".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn push_keeps_events_time_sorted_and_stable() {
        let mut plan = FaultPlan::default();
        plan.push(t(30), FaultKind::TaskCrash { task: None });
        plan.push(t(10), FaultKind::TaskHang { task: None });
        plan.push(t(30), FaultKind::SubmitError { task: None });
        let kinds: Vec<&str> = plan.events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(kinds, ["hang", "crash", "submit-error"]);
        assert!(plan.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn mode_filtering_partitions_the_taxonomy() {
        let mut plan = FaultPlan::default();
        plan.push(
            t(1),
            FaultKind::DeviceRemove {
                device: DeviceId::new(0),
            },
        );
        plan.push(
            t(2),
            FaultKind::TaskHang {
                task: Some(TaskId::new(0)),
            },
        );
        plan.push(t(3), FaultKind::HostFail { host: 1 });
        assert_eq!(plan.filtered(FaultMode::None).len(), 0);
        assert_eq!(plan.filtered(FaultMode::Device).len(), 1);
        assert_eq!(plan.filtered(FaultMode::Task).len(), 1);
        assert_eq!(plan.filtered(FaultMode::Host).len(), 1);
        assert_eq!(plan.filtered(FaultMode::All).len(), 3);
        assert_eq!(plan.world_plan().len(), 2);
        assert_eq!(plan.host_events().len(), 1);
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in FaultMode::ALL {
            assert_eq!(FaultMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(FaultMode::parse("chaos"), None);
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let cfg = FaultConfig {
            backoff_base: SimDuration::from_micros(100),
            backoff_cap: SimDuration::from_micros(350),
            ..FaultConfig::default()
        };
        assert_eq!(cfg.backoff(0), SimDuration::from_micros(100));
        assert_eq!(cfg.backoff(1), SimDuration::from_micros(200));
        assert_eq!(cfg.backoff(2), SimDuration::from_micros(350));
        assert_eq!(cfg.backoff(40), SimDuration::from_micros(350));
    }

    #[test]
    fn validate_rejects_zero_durations_by_key() {
        let mut plan = FaultPlan::default();
        plan.config.watchdog = Some(SimDuration::ZERO);
        // lint: allow(unchecked-unwrap) — asserting on the error text
        let err = plan.validate().unwrap_err();
        assert!(err.contains("fault.watchdog"), "{err}");

        let mut plan = FaultPlan::default();
        plan.config.backoff_base = SimDuration::ZERO;
        // lint: allow(unchecked-unwrap) — asserting on the error text
        let err = plan.validate().unwrap_err();
        assert!(err.contains("fault.backoff_base"), "{err}");

        let mut plan = FaultPlan::default();
        plan.config.backoff_cap = SimDuration::from_micros(1);
        plan.config.backoff_base = SimDuration::from_micros(2);
        // lint: allow(unchecked-unwrap) — asserting on the error text
        let err = plan.validate().unwrap_err();
        assert!(err.contains("backoff_cap"), "{err}");
    }
}
