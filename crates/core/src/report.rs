//! Run reports: what a simulation hands back to the experiments.

use neon_gpu::{DeviceId, RequestKind, TaskId};
use neon_metrics::{Distribution, StreamingHistogram};
use neon_sim::{SimDuration, SimTime};

use crate::telemetry::{SimStats, Timeline};

/// Per-task outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// Task id.
    pub id: TaskId,
    /// Application name.
    pub name: String,
    /// The device the task ran on (its final device, if migrated).
    pub device: DeviceId,
    /// When the task was admitted (zero for tasks present at start;
    /// the arrival instant for tasks spawned mid-run).
    pub arrived_at: SimTime,
    /// When the task exited, was killed, or departed — `None` if it
    /// was still live at the horizon.
    pub finished_at: Option<SimTime>,
    /// Durations of completed rounds, in completion order.
    pub rounds: Vec<SimDuration>,
    /// Requests submitted to the device.
    pub submitted_requests: u64,
    /// Requests completed by the device.
    pub completed_requests: u64,
    /// Ground-truth device occupancy consumed by the task.
    pub usage: SimDuration,
    /// Page faults taken by the task's submissions.
    pub faults: u64,
    /// Whether the scheduler killed the task.
    pub killed: bool,
    /// Times the task was migrated between devices.
    pub migrations: u32,
    /// Simulated time the task spent stalled on working-set movement
    /// across the interconnect (admission staging plus migration
    /// transfers); zero on free-interconnect topologies.
    pub transfer_stall: SimDuration,
    /// Submission instants (recorded only when request recording is on).
    pub submit_times: Vec<SimTime>,
    /// Ground-truth service times of completed requests (recorded only
    /// when request recording is on).
    pub service_times: Vec<SimDuration>,
    /// Request class of each completed request, parallel to
    /// `service_times`.
    pub service_kinds: Vec<RequestKind>,
    /// Bounded sketch of round durations
    /// ([`MetricsMode::Streaming`](crate::telemetry::MetricsMode)
    /// only; empty in exact mode, where [`TaskReport::rounds`] holds
    /// every sample).
    pub rounds_hist: StreamingHistogram,
    /// Bounded sketch of completed-request service times (streaming
    /// mode only).
    pub service_hist: StreamingHistogram,
    /// Bounded sketch of inter-submission gaps (streaming mode only).
    pub interarrival_hist: StreamingHistogram,
}

impl TaskReport {
    /// Mean round duration after dropping a warmup prefix (fraction of
    /// rounds, e.g. `0.1` drops the first 10 %). Returns `None` if no
    /// rounds survive. In streaming mode the histogram cannot drop a
    /// prefix, so the mean over *all* rounds is returned instead.
    pub fn mean_round(&self, warmup: f64) -> Option<SimDuration> {
        if self.rounds.is_empty() && !self.rounds_hist.is_empty() {
            return Some(self.rounds_hist.mean());
        }
        let skip = (self.rounds.len() as f64 * warmup.clamp(0.0, 0.9)) as usize;
        let tail = &self.rounds[skip.min(self.rounds.len())..];
        if tail.is_empty() {
            return None;
        }
        let total: SimDuration = tail.iter().copied().sum();
        Some(total / tail.len() as u64)
    }

    /// Rounds completed, in either metrics mode.
    pub fn rounds_completed(&self) -> usize {
        if self.rounds.is_empty() {
            self.rounds_hist.count() as usize
        } else {
            self.rounds.len()
        }
    }

    /// The span the task was present in the system, from admission to
    /// exit (or to the run's wall clock if it never exited).
    pub fn presence(&self, wall: SimDuration) -> SimDuration {
        let end = self
            .finished_at
            .unwrap_or(SimTime::ZERO + wall)
            .max(self.arrived_at);
        end.saturating_duration_since(self.arrived_at)
    }

    /// Completed rounds per simulated second of presence.
    pub fn throughput(&self, wall: SimDuration) -> f64 {
        let presence = self.presence(wall);
        if presence.is_zero() {
            return 0.0;
        }
        self.rounds_completed() as f64 / presence.as_secs_f64()
    }
}

/// Aggregated per-group telemetry: one entry per distinct workload
/// name, maintained only in
/// [`MetricsMode::Streaming`](crate::telemetry::MetricsMode) (the
/// exact path keeps per-task vectors instead, from which groups can be
/// recomputed).
#[derive(Debug, Clone, Default)]
pub struct GroupReport {
    /// The workload/application name shared by the group's members.
    pub name: String,
    /// Tasks admitted under this name over the run.
    pub members: u64,
    /// Round durations across all members.
    pub rounds: StreamingHistogram,
    /// Completed-request service times across all members.
    pub service: StreamingHistogram,
    /// Inter-submission gaps across all members.
    pub interarrival: StreamingHistogram,
}

/// Per-device outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// The device.
    pub device: DeviceId,
    /// Ground-truth busy time of this device's compute engine.
    pub compute_busy: SimDuration,
    /// Ground-truth busy time of this device's DMA engine.
    pub dma_busy: SimDuration,
    /// Live tenants on the device when the run ended.
    pub tenants: usize,
    /// Admissions this device refused (pinned arrivals finding it full,
    /// or placed arrivals whose channels did not fit).
    pub rejected: u64,
    /// Tasks migrated onto this device by rebalancing.
    pub migrations_in: u64,
    /// Tasks rebalancing moved off this device.
    pub migrations_out: u64,
    /// Working-set movement charged on this device: admission staging
    /// onto it plus migration transfers landing here. Per-device slices
    /// of [`RunReport::transfer_stall`]; zero on free interconnects.
    pub transfer_stall: SimDuration,
    /// Simulated time this device spent hot-removed (offline); a
    /// device still offline at the horizon is charged through it.
    pub degraded: SimDuration,
    /// This device's structured stats block. Only per-device events
    /// are counted here (faults, rejections, preemptions, kills,
    /// denials, sampling windows, migrations in/out); run-wide
    /// counters such as `events` and `polls` live in
    /// [`RunReport::stats`].
    pub stats: SimStats,
}

impl DeviceReport {
    /// Compute-engine utilization of this device over the run.
    pub fn utilization(&self, wall: SimDuration) -> f64 {
        if wall.is_zero() {
            return 0.0;
        }
        self.compute_busy.ratio(wall)
    }
}

/// Whole-run outcome.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scheduler that produced the run.
    pub scheduler: &'static str,
    /// Wall-clock (simulated) length of the run.
    pub wall: SimDuration,
    /// Per-task outcomes, ordered by task id.
    pub tasks: Vec<TaskReport>,
    /// Per-device outcomes, ordered by device id (one entry for a
    /// single-device world).
    pub devices: Vec<DeviceReport>,
    /// Ground-truth busy time of the compute engines, summed across
    /// devices.
    pub compute_busy: SimDuration,
    /// Ground-truth busy time of the DMA engines, summed across
    /// devices.
    pub dma_busy: SimDuration,
    /// Total page faults (interceptions) taken.
    pub faults: u64,
    /// Polling-thread wakeups.
    pub polls: u64,
    /// Direct (unintercepted) submissions.
    pub direct_submits: u64,
    /// Mid-run admissions refused because no device could host the
    /// arrival (the §6.3 DoS condition observed as an open-loop
    /// arrival being turned away).
    pub rejected_admissions: u64,
    /// Tasks moved between devices by departure-triggered rebalancing.
    pub migrations: u64,
    /// Total simulated time tasks spent stalled on working-set
    /// movement (staging + migration transfers) across the run.
    pub transfer_stall: SimDuration,
    /// Fault events injected from the attached
    /// [`FaultPlan`](crate::fault::FaultPlan); zero without one.
    pub injected_faults: u64,
    /// Tasks the per-device watchdog killed for request stagnation.
    pub watchdog_kills: u64,
    /// Recovery retries scheduled (watchdog requeues, transient
    /// submission-error retries, park retries).
    pub fault_retries: u64,
    /// Tasks recovered from a fault: drain-migrated off a hot-removed
    /// device or re-staged after parking.
    pub recovered_tasks: u64,
    /// Tasks lost to faults: crashed, watchdog retry budget exhausted,
    /// or parked past the retry bound.
    pub lost_tasks: u64,
    /// Device hot-remove events that took a device offline.
    pub hot_removes: u64,
    /// Degraded-capacity time: simulated device-offline time summed
    /// across devices (a device still offline at the horizon is
    /// charged through it).
    pub degraded: SimDuration,
    /// Discrete events the simulation loop processed — with host wall
    /// time, the events/second throughput of the simulator itself (the
    /// perf-trajectory metric `neon bench` reports).
    pub events: u64,
    /// The structured stats block: every counter above plus the
    /// policy-level ones (preemptions, kills, denials, sampling
    /// windows, rebalance decisions), under stable emission labels.
    pub stats: SimStats,
    /// Per-workload-name telemetry (streaming mode only; empty in
    /// exact mode).
    pub groups: Vec<GroupReport>,
    /// The sampler's bounded device timeline (empty unless
    /// [`WorldConfig::sample_every`](crate::world::WorldConfig) was
    /// set).
    pub timeline: Timeline,
}

impl RunReport {
    /// Aggregate compute-engine utilization over the run (mean across
    /// devices; equals plain utilization for a single device).
    pub fn utilization(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        let devices = self.devices.len().max(1) as f64;
        self.compute_busy.ratio(self.wall) / devices
    }

    /// The report for a task by id.
    pub fn task(&self, id: TaskId) -> Option<&TaskReport> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// The report for a device by id.
    pub fn device(&self, id: DeviceId) -> Option<&DeviceReport> {
        self.devices.iter().find(|d| d.device == id)
    }

    /// Every task's round durations as one queryable
    /// [`Distribution`], whichever metrics mode produced the run: the
    /// exact per-task vectors when present (the oracle), the merged
    /// per-task histograms otherwise. This is the single interface
    /// report consumers use for percentiles.
    pub fn round_distribution(&self) -> Box<dyn Distribution> {
        if self.tasks.iter().any(|t| !t.rounds.is_empty()) {
            let mut all: Vec<SimDuration> = Vec::new();
            for t in &self.tasks {
                all.extend_from_slice(&t.rounds);
            }
            Box::new(neon_metrics::Summary::of(&all))
        } else {
            let mut merged = StreamingHistogram::new();
            for t in &self.tasks {
                merged.merge(&t.rounds_hist);
            }
            Box::new(merged)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_rounds(rounds: Vec<u64>) -> TaskReport {
        TaskReport {
            id: TaskId::new(0),
            name: "t".into(),
            device: DeviceId::new(0),
            arrived_at: SimTime::ZERO,
            finished_at: None,
            rounds: rounds.into_iter().map(SimDuration::from_micros).collect(),
            submitted_requests: 0,
            completed_requests: 0,
            usage: SimDuration::ZERO,
            faults: 0,
            killed: false,
            migrations: 0,
            transfer_stall: SimDuration::ZERO,
            submit_times: Vec::new(),
            service_times: Vec::new(),
            service_kinds: Vec::new(),
            rounds_hist: StreamingHistogram::new(),
            service_hist: StreamingHistogram::new(),
            interarrival_hist: StreamingHistogram::new(),
        }
    }

    #[test]
    fn mean_round_drops_warmup() {
        let r = report_with_rounds(vec![1000, 10, 10, 10, 10, 10, 10, 10, 10, 10]);
        // With 10% warmup the 1000 outlier is dropped.
        assert_eq!(r.mean_round(0.1), Some(SimDuration::from_micros(10)));
        // Without warmup it is included.
        assert_eq!(r.mean_round(0.0), Some(SimDuration::from_micros(109)));
    }

    #[test]
    fn mean_round_empty_is_none() {
        let r = report_with_rounds(vec![]);
        assert_eq!(r.mean_round(0.1), None);
    }

    #[test]
    fn presence_spans_admission_to_exit() {
        let wall = SimDuration::from_millis(100);
        let mut r = report_with_rounds(vec![10, 10]);
        // Present for the whole run.
        assert_eq!(r.presence(wall), wall);
        // Mid-run arrival, departed before the horizon.
        r.arrived_at = SimTime::ZERO + SimDuration::from_millis(20);
        r.finished_at = Some(SimTime::ZERO + SimDuration::from_millis(70));
        assert_eq!(r.presence(wall), SimDuration::from_millis(50));
        // Throughput counts rounds per second of presence.
        assert!((r.throughput(wall) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_is_busy_over_wall() {
        let report = RunReport {
            scheduler: "direct",
            wall: SimDuration::from_millis(10),
            tasks: vec![],
            devices: vec![],
            compute_busy: SimDuration::from_millis(5),
            dma_busy: SimDuration::ZERO,
            faults: 0,
            polls: 0,
            direct_submits: 0,
            rejected_admissions: 0,
            migrations: 0,
            transfer_stall: SimDuration::ZERO,
            injected_faults: 0,
            watchdog_kills: 0,
            fault_retries: 0,
            recovered_tasks: 0,
            lost_tasks: 0,
            hot_removes: 0,
            degraded: SimDuration::ZERO,
            events: 0,
            stats: SimStats::new(),
            groups: Vec::new(),
            timeline: Timeline::default(),
        };
        assert!((report.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn multi_device_utilization_averages_over_devices() {
        let wall = SimDuration::from_millis(10);
        let dev = |id: u32, busy_ms: u64| DeviceReport {
            device: DeviceId::new(id),
            compute_busy: SimDuration::from_millis(busy_ms),
            dma_busy: SimDuration::ZERO,
            tenants: 1,
            rejected: 0,
            migrations_in: 0,
            migrations_out: 0,
            transfer_stall: SimDuration::ZERO,
            degraded: SimDuration::ZERO,
            stats: SimStats::new(),
        };
        let report = RunReport {
            scheduler: "direct",
            wall,
            tasks: vec![],
            devices: vec![dev(0, 10), dev(1, 5)],
            compute_busy: SimDuration::from_millis(15),
            dma_busy: SimDuration::ZERO,
            faults: 0,
            polls: 0,
            direct_submits: 0,
            rejected_admissions: 0,
            migrations: 0,
            transfer_stall: SimDuration::ZERO,
            injected_faults: 0,
            watchdog_kills: 0,
            fault_retries: 0,
            recovered_tasks: 0,
            lost_tasks: 0,
            hot_removes: 0,
            degraded: SimDuration::ZERO,
            events: 0,
            stats: SimStats::new(),
            groups: Vec::new(),
            timeline: Timeline::default(),
        };
        assert!((report.utilization() - 0.75).abs() < 1e-12);
        assert!((report.devices[1].utilization(wall) - 0.5).abs() < 1e-12);
        assert_eq!(report.device(DeviceId::new(1)).unwrap().tenants, 1);
    }
}
