//! # neon-core
//!
//! The paper's primary contribution, reproduced: OS-level interposition
//! on a direct-mapped accelerator interface and the family of
//! *disengaged* schedulers built on it.
//!
//! - [`world::World`] — the simulation driver: tasks, the user/kernel
//!   boundary (page protection, fault costs, polling-thread service),
//!   and one or more devices, advanced by a deterministic event loop.
//!   Multi-device worlds ([`world::World::with_devices`]) pair every
//!   device with its own scheduler instance; arriving tasks are routed
//!   by a [`placement::Placement`] policy (least-loaded, round-robin,
//!   fewest-tenants, the topology-aware locality-first and cost-min,
//!   or pinned) or pinned explicitly, with departure-triggered
//!   migration governed by a [`rebalance::Rebalance`] policy
//!   (off / count-diff / cost-aware). Heterogeneous hosts are described
//!   by a [`neon_gpu::Topology`] ([`world::WorldConfig::topology`]):
//!   per-device configs plus interconnect link tiers, with admission
//!   staging and migration charging working-set × link tier. A
//!   1-device world (and any symmetric free-interconnect topology) is
//!   byte-identical to the original single-GPU model.
//! - [`sched`] — the policies: [`sched::DirectAccess`] (vendor
//!   baseline), [`sched::Timeslice`] (engaged and disengaged variants,
//!   with overuse control and over-long-request kills), and
//!   [`sched::DisengagedFairQueueing`], plus engaged SFQ/DRR baselines
//!   for ablations.
//! - [`cost::CostModel`] / [`cost::SchedParams`] — every calibrated
//!   constant, in one place.
//! - [`workload::Workload`] — the interface application models
//!   implement (concrete models live in `neon-workloads`).
//!
//! # Dynamic admission and exit
//!
//! Tasks need not all be present at time zero. [`world::World::add_task`]
//! admits immediately (before or during a run);
//! [`world::World::spawn_task_at`] stages a future arrival whose device
//! resources are allocated at the arrival instant — and may be
//! *rejected* if the device is exhausted (§6.3), counted in
//! [`report::RunReport::rejected_admissions`] —
//! and [`world::World::spawn_task_for`] additionally schedules a
//! graceful mid-run departure. Every policy handles mid-run
//! [`sched::Scheduler::on_task_admitted`] / `on_task_exit` churn; the
//! `neon-scenario` crate builds declarative churn scenarios and
//! parallel sweeps on top of this interface.
//!
//! # Example
//!
//! ```
//! use neon_core::cost::SchedParams;
//! use neon_core::sched::SchedulerKind;
//! use neon_core::workload::FixedLoop;
//! use neon_core::world::{World, WorldConfig};
//! use neon_sim::SimDuration;
//!
//! let config = WorldConfig::default();
//! let sched = SchedulerKind::DisengagedFairQueueing.build(SchedParams::default());
//! let mut world = World::new(config, sched);
//! world.add_task(Box::new(FixedLoop::endless(
//!     "small",
//!     SimDuration::from_micros(20),
//!     SimDuration::ZERO,
//! )))?;
//! world.add_task(Box::new(FixedLoop::endless(
//!     "large",
//!     SimDuration::from_micros(400),
//!     SimDuration::ZERO,
//! )))?;
//! let report = world.run(SimDuration::from_secs(1));
//! // Fair queueing keeps the large-request task from hogging the GPU.
//! let small = report.tasks[0].usage;
//! let large = report.tasks[1].usage;
//! assert!(large.ratio(small) < 3.0);
//! # Ok::<(), neon_gpu::GpuError>(())
//! ```

pub mod cost;
pub mod fault;
pub mod fleet;
pub mod placement;
pub mod quota;
pub mod rebalance;
pub mod report;
pub mod sched;
pub mod telemetry;
pub mod workload;
pub mod world;

pub use cost::{CostModel, SchedParams};
pub use fault::{FaultCategory, FaultConfig, FaultEvent, FaultKind, FaultMode, FaultPlan};
pub use fleet::{
    Fleet, FleetPlacement, FleetPlacementKind, FleetRebalance, FleetRebalanceKind, FleetReport,
    HostId, HostLoad, HostMigration, HostMigrationCandidate,
};
pub use placement::{DeviceLoad, Placement, PlacementKind};
pub use rebalance::{Migration, MigrationCandidate, Rebalance, RebalanceKind};
pub use report::{DeviceReport, GroupReport, RunReport, TaskReport};
pub use sched::{FaultDecision, Scheduler, SchedulerKind};
pub use telemetry::{
    labels, DeviceSample, MetricsMode, SimStats, StatKey, Timeline, TimelineSample,
};
pub use workload::{BoxedWorkload, QueueIndex, TaskAction, Workload};
pub use world::{SchedCtx, World, WorldConfig};
