//! The workload interface: how applications drive the accelerator.
//!
//! A [`Workload`] is a generator of [`TaskAction`]s — CPU work, request
//! submissions, synchronization points, and round boundaries. The
//! simulation driver executes the actions, charging the appropriate
//! submission costs and blocking the task where the model says it
//! blocks. Concrete application models (the paper's Table 1 benchmarks,
//! the Throttle microbenchmark, adversaries) live in `neon-workloads`.

use neon_gpu::{RequestKind, SubmitSpec};
use neon_sim::{DetRng, SimDuration};

/// Index of a logical request queue within a task (0-based). Each queue
/// maps to one GPU channel; most applications use a single queue, while
/// combined compute+graphics applications (oclParticles,
/// simpleTexture3D) use one per request class.
pub type QueueIndex = usize;

/// One step of an application's behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskAction {
    /// Spend CPU time (computation or sleep) before the next action.
    CpuWork(SimDuration),
    /// Submit a request on the given logical queue. If the spec is
    /// blocking, the task waits for this request's completion before
    /// its next action.
    Submit {
        /// Logical queue to submit on.
        queue: QueueIndex,
        /// Request parameters.
        spec: SubmitSpec,
    },
    /// Wait until every outstanding request by this task completes
    /// (round barrier).
    WaitAll,
    /// Mark the end of a performance "round" (an algorithm iteration or
    /// a rendered frame); the driver records the round time.
    EndRound,
    /// The task exits (releases its device resources).
    Done,
}

/// A generative application model.
///
/// Implementations must be deterministic given the [`DetRng`] handed to
/// [`Workload::next_action`].
pub trait Workload {
    /// Human-readable application name (used in reports).
    fn name(&self) -> &str;

    /// The request class of each logical queue. One GPU channel is
    /// created per entry at task admission.
    fn queues(&self) -> Vec<RequestKind>;

    /// Maximum requests the task keeps in flight before it stalls
    /// waiting for a completion (models the user library's pipelining
    /// depth / ring back-pressure).
    fn max_outstanding(&self) -> usize {
        8
    }

    /// Size of the task's device-resident working set in bytes — the
    /// data that must move when the task is migrated to another device
    /// (or staged from host memory at admission). Topology-aware
    /// placement and migration charge `working_set × link tier` for
    /// the movement; on flat (free-interconnect) topologies the value
    /// is inert. Defaults to 64 MiB; wrap a workload in
    /// [`WithWorkingSet`] to override without touching the model.
    fn working_set_bytes(&self) -> u64 {
        64 << 20
    }

    /// Produces the next behaviour step.
    fn next_action(&mut self, rng: &mut DetRng) -> TaskAction;

    /// Clones the workload behind a box, in its *initial* state-machine
    /// position if possible (used by experiments to run the same
    /// application both alone and in a mix).
    fn box_clone(&self) -> BoxedWorkload;
}

impl Clone for Box<dyn Workload> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// A boxed workload, as stored by the simulation driver.
pub type BoxedWorkload = Box<dyn Workload>;

/// Decorates a workload with an explicit working-set size, leaving
/// every other behaviour untouched. Scenario files use this to control
/// how expensive a tenant group is to migrate across the topology.
pub struct WithWorkingSet {
    inner: BoxedWorkload,
    bytes: u64,
}

impl WithWorkingSet {
    /// Wraps `inner`, overriding its working set to `bytes`.
    pub fn new(inner: BoxedWorkload, bytes: u64) -> Self {
        WithWorkingSet { inner, bytes }
    }
}

impl Workload for WithWorkingSet {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn queues(&self) -> Vec<RequestKind> {
        self.inner.queues()
    }

    fn max_outstanding(&self) -> usize {
        self.inner.max_outstanding()
    }

    fn working_set_bytes(&self) -> u64 {
        self.bytes
    }

    fn next_action(&mut self, rng: &mut DetRng) -> TaskAction {
        self.inner.next_action(rng)
    }

    fn box_clone(&self) -> BoxedWorkload {
        Box::new(WithWorkingSet {
            inner: self.inner.box_clone(),
            bytes: self.bytes,
        })
    }
}

/// A trivial workload for tests: issues `count` blocking compute
/// requests of fixed `service`, separated by `gap` CPU time, one
/// request per round, then exits (or loops forever if `count` is
/// `None`).
#[derive(Debug, Clone)]
pub struct FixedLoop {
    name: String,
    service: SimDuration,
    gap: SimDuration,
    remaining: Option<u64>,
    phase: u8,
}

impl FixedLoop {
    /// A finite loop of `count` requests.
    pub fn new(
        name: impl Into<String>,
        service: SimDuration,
        gap: SimDuration,
        count: u64,
    ) -> Self {
        FixedLoop {
            name: name.into(),
            service,
            gap,
            remaining: Some(count),
            phase: 0,
        }
    }

    /// An endless loop.
    pub fn endless(name: impl Into<String>, service: SimDuration, gap: SimDuration) -> Self {
        FixedLoop {
            name: name.into(),
            service,
            gap,
            remaining: None,
            phase: 0,
        }
    }
}

impl Workload for FixedLoop {
    fn name(&self) -> &str {
        &self.name
    }

    fn queues(&self) -> Vec<RequestKind> {
        vec![RequestKind::Compute]
    }

    fn box_clone(&self) -> BoxedWorkload {
        Box::new(self.clone())
    }

    fn next_action(&mut self, _rng: &mut DetRng) -> TaskAction {
        match self.phase {
            0 => {
                if let Some(n) = self.remaining {
                    if n == 0 {
                        return TaskAction::Done;
                    }
                    self.remaining = Some(n - 1);
                }
                self.phase = 1;
                TaskAction::Submit {
                    queue: 0,
                    spec: SubmitSpec::compute(self.service),
                }
            }
            1 => {
                self.phase = 2;
                TaskAction::EndRound
            }
            _ => {
                self.phase = 0;
                if self.gap.is_zero() {
                    // Skip the no-op CPU step entirely.
                    self.next_action(_rng)
                } else {
                    TaskAction::CpuWork(self.gap)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_loop_emits_expected_cycle() {
        let mut w = FixedLoop::new(
            "t",
            SimDuration::from_micros(10),
            SimDuration::from_micros(5),
            2,
        );
        let mut rng = DetRng::seed_from(0);
        let a1 = w.next_action(&mut rng);
        assert!(matches!(a1, TaskAction::Submit { queue: 0, .. }));
        assert_eq!(w.next_action(&mut rng), TaskAction::EndRound);
        assert_eq!(
            w.next_action(&mut rng),
            TaskAction::CpuWork(SimDuration::from_micros(5))
        );
        assert!(matches!(w.next_action(&mut rng), TaskAction::Submit { .. }));
        assert_eq!(w.next_action(&mut rng), TaskAction::EndRound);
        let _gap = w.next_action(&mut rng);
        assert_eq!(w.next_action(&mut rng), TaskAction::Done);
    }

    #[test]
    fn zero_gap_skips_cpu_step() {
        let mut w = FixedLoop::new("t", SimDuration::from_micros(10), SimDuration::ZERO, 5);
        let mut rng = DetRng::seed_from(0);
        w.next_action(&mut rng); // submit
        w.next_action(&mut rng); // end round
        assert!(matches!(w.next_action(&mut rng), TaskAction::Submit { .. }));
    }

    #[test]
    fn endless_never_finishes() {
        let mut w = FixedLoop::endless("t", SimDuration::from_micros(1), SimDuration::ZERO);
        let mut rng = DetRng::seed_from(0);
        for _ in 0..100 {
            assert_ne!(w.next_action(&mut rng), TaskAction::Done);
        }
    }

    #[test]
    fn default_pipeline_depth() {
        let w = FixedLoop::endless("t", SimDuration::from_micros(1), SimDuration::ZERO);
        assert_eq!(w.max_outstanding(), 8);
        assert_eq!(w.queues(), vec![RequestKind::Compute]);
    }
}
