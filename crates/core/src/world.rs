//! The simulation world: tasks, kernel interposition, devices, policy.
//!
//! [`World`] owns every piece of modeled state and drives it through a
//! deterministic event loop. The submission path mirrors the real
//! system:
//!
//! 1. A task's workload emits a `Submit` action.
//! 2. If the target channel's register page is **unprotected**, the
//!    write goes straight to the device at the direct-access cost
//!    (~305 cycles).
//! 3. If the page is **protected**, the write faults: the fault handler
//!    (cost: thousands of cycles) consults the scheduler, which either
//!    allows the submission (single-step) or parks the task until it is
//!    woken.
//! 4. Completions are written by the device to per-channel reference
//!    counters; blocked submitters spin on them in user space, while
//!    the kernel observes them only at polling-thread ticks (or, during
//!    engaged operation, through scheduler-prompted polling modeled by
//!    the [`Scheduler::on_completion`] callback).
//!
//! # Multi-device topology
//!
//! A world owns one or more *device slots*, each pairing a [`Gpu`] with
//! its own [`Scheduler`] instance, page-protection table and engine
//! state — the per-device kernel module of a multi-GPU host. Arriving
//! tasks are assigned to a device once, at admission, by a
//! [`Placement`] policy (or an explicit per-task pin); all of a task's
//! channels live on that device. After a departure a [`Rebalance`]
//! policy ([`WorldConfig::rebalance`]) may migrate one task toward a
//! less crowded device — weighing the interconnect transfer cost when
//! the policy is cost-aware. A single-device world behaves exactly
//! as the original single-GPU model — determinism tests enforce
//! byte-identical traces.

use neon_gpu::{
    ChannelId, ContextId, DeviceId, DeviceSlotSpec, EngineClass, Gpu, GpuConfig, GpuError,
    InterconnectParams, RequestId, RequestKind, SubmitSpec, TaskId, Topology,
};
use neon_metrics::StreamingHistogram;
use neon_sim::{trace_event, DetRng, EventQueue, SimDuration, SimTime, Trace};

use crate::cost::{CostModel, SchedParams};
use crate::fault::{FaultConfig, FaultKind, FaultPlan};
use crate::placement::{DeviceLoad, LeastLoaded, Placement};
use crate::rebalance::{Migration, MigrationCandidate, Rebalance, RebalanceKind};
use crate::report::{DeviceReport, GroupReport, RunReport, TaskReport};
use crate::sched::{FaultDecision, NullScheduler, Scheduler};
use crate::telemetry::{
    labels, DeviceSample, MetricsMode, SimStats, StatKey, Timeline, TimelineSample,
};
use crate::workload::{BoxedWorkload, QueueIndex, TaskAction};

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Device configuration used when [`WorldConfig::devices`] is empty
    /// (the single-device default).
    pub gpu: GpuConfig,
    /// Per-device configurations of a multi-device host; device `i`
    /// gets `devices[i]`. Empty means one device configured by
    /// [`WorldConfig::gpu`].
    pub devices: Vec<GpuConfig>,
    /// Full host topology: heterogeneous per-device configurations
    /// plus interconnect distances and transfer timing. When set it
    /// defines the device list ([`WorldConfig::devices`] must be
    /// empty) and migration/staging charge data-movement costs of
    /// working-set × link tier. When `None`, devices come from
    /// [`WorldConfig::devices`]/[`WorldConfig::gpu`] on a flat
    /// free-interconnect topology — byte-identical to the pre-topology
    /// model.
    pub topology: Option<Topology>,
    /// Software-stack timing constants.
    pub cost: CostModel,
    /// Scheduler policy parameters (default for every device).
    pub params: SchedParams,
    /// Per-device [`SchedParams`] overrides; device `i` uses
    /// `device_params[i]` when present, [`WorldConfig::params`]
    /// otherwise.
    pub device_params: Vec<SchedParams>,
    /// RNG seed; two runs with equal configuration and seed produce
    /// identical traces.
    pub seed: u64,
    /// Record per-request submission/service logs (Figure 2) — costs
    /// memory on long runs, so off by default.
    pub record_requests: bool,
    /// Delay between consecutive task start times, to avoid artificial
    /// simultaneity.
    pub start_stagger: SimDuration,
    /// The departure-triggered rebalancing policy (multi-device worlds
    /// only; pinned tasks never move). [`RebalanceKind::Off`] by
    /// default; [`RebalanceKind::CountDiff`] reproduces the legacy
    /// `rebalance = true` population heuristic byte for byte;
    /// [`RebalanceKind::CostAware`] migrates only when the estimated
    /// queueing-delay gain beats the interconnect transfer cost.
    pub rebalance: RebalanceKind,
    /// How per-task latency samples are aggregated. The default,
    /// [`MetricsMode::Exact`], stores every round/submit/service sample
    /// in per-task `Vec`s (the oracle); [`MetricsMode::Streaming`]
    /// folds each sample into fixed-memory [`StreamingHistogram`]s so
    /// open-loop churn runs of arbitrary length stay bounded. Note
    /// streaming mode records per-request interarrival/service samples
    /// unconditionally (histograms are cheap), whereas exact mode
    /// gates them behind [`WorldConfig::record_requests`].
    pub metrics: MetricsMode,
    /// Cadence of the periodic telemetry sampler. `None` (the default)
    /// never schedules a sampler event, so default-config event
    /// streams — and the golden trace hashes pinned in the determinism
    /// tests — are untouched. `Some(d)` snapshots every device's
    /// utilization, queue depth and tenancy into
    /// [`RunReport::timeline`] every `d`.
    pub sample_every: Option<SimDuration>,
    /// Bound of the timeline ring; once full, the oldest samples are
    /// evicted (and counted in [`Timeline::dropped`]).
    pub timeline_capacity: usize,
    /// Deterministic fault schedule plus recovery tuning. `None` (the
    /// default) schedules no fault, watchdog or park-retry event at
    /// all, so fault-free event streams — and the golden trace hashes
    /// pinned in the determinism tests — are byte-identical to the
    /// pre-fault model. Host-scope events in the plan are ignored at
    /// world level (the fleet layer consumes them).
    pub faults: Option<FaultPlan>,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            gpu: GpuConfig::default(),
            devices: Vec::new(),
            topology: None,
            cost: CostModel::default(),
            params: SchedParams::default(),
            device_params: Vec::new(),
            seed: 0x5EED,
            record_requests: false,
            start_stagger: SimDuration::from_micros(100),
            rebalance: RebalanceKind::Off,
            metrics: MetricsMode::Exact,
            sample_every: None,
            timeline_capacity: Timeline::DEFAULT_CAPACITY,
            faults: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// The task executes its next workload action.
    TaskStep(TaskId),
    /// A submission's CPU cost has elapsed; the request reaches the
    /// device (channel-register write retires).
    DeviceSubmit(TaskId),
    /// The in-flight request on one device's engine finishes.
    EngineDone(DeviceId, EngineClass),
    /// Polling-thread tick (one kernel thread services every device).
    Poll,
    /// A policy timer armed by one device's scheduler fired.
    SchedTimer(DeviceId, u64),
    /// A scheduled mid-run arrival (index into the pending-arrival
    /// table) reaches its arrival instant.
    TaskArrival(u64),
    /// A scheduled departure: the task leaves as if its workload had
    /// emitted [`TaskAction::Done`], mid-work or not.
    TaskDeparture(TaskId),
    /// Periodic telemetry sampler tick ([`WorldConfig::sample_every`]);
    /// never scheduled when the cadence is `None`.
    Sample,
    /// An injected fault from [`WorldConfig::faults`] fires; the index
    /// points into the plan's time-sorted event list. Never scheduled
    /// when the plan is `None`.
    Fault(u32),
    /// Per-device watchdog tick — scheduled only when the fault plan
    /// configures a watchdog timeout.
    Watchdog(DeviceId),
    /// A task displaced by a device hot-remove retries re-admission
    /// (bounded exponential backoff).
    ParkRetry(TaskId),
    /// End of the simulated horizon.
    Horizon,
}

/// A task that has been scheduled to arrive but is not admitted yet —
/// its context and channels are created only at the arrival instant,
/// so open-loop traffic contends for device resources exactly when it
/// shows up (and may be turned away, the §6.3 condition).
struct PendingArrival {
    workload: BoxedWorkload,
    /// How long after admission the task departs; `None` runs it until
    /// its workload finishes or the horizon ends the run.
    lifetime: Option<SimDuration>,
    /// Operator pin: bypass the placement policy.
    pin: Option<DeviceId>,
    /// Watchdog kill-and-requeue lineage depth (0 for an original
    /// arrival); the admitted task inherits it against the retry
    /// budget.
    retries: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Waiting for its next `TaskStep` event.
    Ready,
    /// Spinning on a blocking request's reference counter.
    BlockedOnRequest(RequestId),
    /// Waiting for all outstanding requests (round barrier).
    WaitingAll,
    /// Waiting for pipeline headroom before submitting.
    WaitingSlot,
    /// Parked by the kernel after a fault; resumes on wake.
    Parked,
    /// Exited or killed.
    Finished,
}

struct TaskRt {
    id: TaskId,
    name: String,
    workload: BoxedWorkload,
    rng: DetRng,
    /// The device this task's contexts and channels live on.
    device: DeviceId,
    /// Operator pin, if any; pinned tasks are never migrated.
    pin: Option<DeviceId>,
    #[allow(dead_code)]
    context: ContextId,
    channels: Vec<ChannelId>,
    max_outstanding: usize,
    state: TaskState,
    outstanding: usize,
    arrived_at: SimTime,
    finished_at: Option<SimTime>,
    pending_submit: Option<(QueueIndex, SubmitSpec)>,
    /// A submission whose CPU cost is elapsing (trap or direct store).
    inflight_submit: Option<(QueueIndex, SubmitSpec)>,
    step_token: Option<u64>,
    live: bool,
    killed: bool,
    migrations: u32,
    /// When rebalancing last moved this task (recency signal the
    /// cost-aware policy uses to forbid ping-pong).
    last_migrated_at: Option<SimTime>,
    /// Simulated time this task spent stalled on working-set movement
    /// (admission staging plus migrations).
    transfer_stall: SimDuration,
    /// When an in-progress migration's transfer completes — consulted
    /// only by the telemetry sampler (in-flight migration gauge).
    migration_until: Option<SimTime>,
    // Fault-injection state (all dormant without a FaultPlan).
    /// The task's next dispatched request never completes.
    hang_next: bool,
    /// Armed transient submission errors still to be consumed.
    submit_errors: u32,
    /// Watchdog kill-and-requeue lineage depth (0 = original task).
    retries: u32,
    /// Re-admission attempts made while displaced by a hot-remove.
    park_retries: u32,
    /// Displaced by a device hot-remove: off-device (not live), waiting
    /// for capacity to return.
    displaced: bool,
    /// Pending [`Event::ParkRetry`] token, cancelled when a hot-add
    /// triggers an immediate retry instead.
    park_token: Option<u64>,
    // Metrics.
    round_start: SimTime,
    rounds: Vec<SimDuration>,
    submitted: u64,
    completed: u64,
    faults: u64,
    submit_times: Vec<SimTime>,
    service_times: Vec<SimDuration>,
    service_kinds: Vec<RequestKind>,
    // Streaming-mode aggregation ([`MetricsMode::Streaming`]): the
    // exact vectors above stay empty and every sample folds into these
    // fixed-memory sketches instead.
    /// Index into `World::groups` (per-workload-name aggregate);
    /// unused (0) in exact mode.
    group: usize,
    /// Previous device-submit instant, for interarrival gaps.
    last_submit: Option<SimTime>,
    rounds_hist: StreamingHistogram,
    service_hist: StreamingHistogram,
    interarrival_hist: StreamingHistogram,
}

/// A retired task's recyclable heap allocations. [`World::reset`]
/// drains the task table into a free list of these shells and
/// [`World::admit`] draws from it, so tenant admission in a recycled
/// world reuses the channel list (and any metric buffers that did not
/// escape into a [`RunReport`]) instead of hitting the global
/// allocator. The pool only ever holds empty vectors — capacity is the
/// payload — so reuse cannot perturb simulation behavior.
#[derive(Default)]
struct TaskShell {
    channels: Vec<ChannelId>,
    rounds: Vec<SimDuration>,
    submit_times: Vec<SimTime>,
    service_times: Vec<SimDuration>,
    service_kinds: Vec<RequestKind>,
}

impl TaskShell {
    /// Strips a retired task down to its reusable buffers. The metric
    /// vectors are usually empty here (they escape into the report),
    /// but a world reset without a report hands their capacity back
    /// too.
    fn retire(t: TaskRt) -> Self {
        let mut shell = TaskShell {
            channels: t.channels,
            rounds: t.rounds,
            submit_times: t.submit_times,
            service_times: t.service_times,
            service_kinds: t.service_kinds,
        };
        shell.channels.clear();
        shell.rounds.clear();
        shell.submit_times.clear();
        shell.service_times.clear();
        shell.service_kinds.clear();
        shell
    }
}

/// One device slot: the device plus the per-device kernel state (its
/// scheduler instance, page-protection table and engine bookkeeping).
struct DeviceSlot {
    id: DeviceId,
    gpu: Gpu,
    sched: Option<Box<dyn Scheduler>>,
    params: SchedParams,
    protected: Vec<bool>,
    /// Pending completion-event token per engine class, indexed by
    /// `EngineClass as usize` — a fixed array, not a map: this is
    /// consulted on every dispatch/completion, and hashing here was
    /// measurable.
    engine_tokens: [Option<u64>; EngineClass::ALL.len()],
    /// Live tasks currently holding a context here — maintained
    /// incrementally on admission/exit/migration so departure-path
    /// rebalancing never rescans the task table (tests assert the
    /// counter matches the scan).
    live_tenants: usize,
    /// Per-device structured counters (rejections, faults, kills,
    /// preemptions, denials, sampling windows, migrations in/out).
    /// Only events attributable to one device are counted here; the
    /// hottest run-wide counters (events, polls, direct submits) live
    /// as plain `World` fields and fold into [`RunReport::stats`] at
    /// report time.
    stats: SimStats,
    /// Working-set movement charged on this device (admission staging
    /// onto it, plus migration transfers landing here).
    transfer_stall: SimDuration,
    /// Compute-engine busy total at the previous sampler tick — the
    /// delta over the sampling period yields the utilization gauge.
    sampled_busy: SimDuration,
    /// Hot-remove state: an offline device dispatches nothing and
    /// admits no one; its residents drained away (or parked) at the
    /// removal instant.
    online: bool,
    /// When the device went offline (if currently offline).
    offline_since: Option<SimTime>,
    /// Total offline (degraded-capacity) time accumulated so far.
    offline_total: SimDuration,
    /// Engines wedged by an injected hang: the running request's
    /// completion event was cancelled, so the engine stays busy until
    /// the victim task is torn down.
    hung_engines: [bool; EngineClass::ALL.len()],
}

/// The simulation driver.
pub struct World {
    queue: EventQueue<Event>,
    now: SimTime,
    devices: Vec<DeviceSlot>,
    /// The resolved host topology (a flat free-interconnect one when
    /// the configuration named only device configs).
    topology: Topology,
    placement: Box<dyn Placement>,
    rebalance: Box<dyn Rebalance>,
    tasks: Vec<TaskRt>,
    /// Free list of retired task shells ([`World::reset`] refills it,
    /// [`World::admit`] drains it) — the task-state arena.
    task_pool: Vec<TaskShell>,
    config: WorldConfig,
    pending_arrivals: Vec<Option<PendingArrival>>,
    /// Trace for debugging and determinism tests.
    pub trace: Trace,
    faults: u64,
    polls: u64,
    direct_submits: u64,
    rejected_admissions: u64,
    migrations: u64,
    transfer_stall: SimDuration,
    /// Discrete events processed by the run loop — the denominator of
    /// the events/second throughput figure the bench harness reports.
    events: u64,
    /// Run-wide structured counters for the rarer events (kills,
    /// preemptions, denials, sampling windows, rebalance decisions).
    /// Hot-path counters stay as the plain fields above and are folded
    /// in at [`World::report`].
    stats: SimStats,
    /// Per-workload-name aggregates (streaming mode only; empty in
    /// exact mode).
    groups: Vec<GroupReport>,
    /// Bounded ring of periodic device snapshots (empty unless
    /// [`WorldConfig::sample_every`] is set).
    timeline: Timeline,
    /// Previous sampler tick (utilization deltas are measured from
    /// here).
    last_sample_at: SimTime,
    /// Tasks with `hang_next` armed — the cheap gate pump_engines
    /// checks before inspecting per-task flags (zero on fault-free
    /// runs, so the hot path is one integer compare).
    pending_hangs: u32,
    /// Tasks with `submit_errors` armed — the same gate for
    /// attempt_submit.
    pending_submit_errors: u32,
    started: bool,
    stopped: bool,
}

impl World {
    /// Creates an empty single-device world with the given scheduler
    /// policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration names more than one device — use
    /// [`World::with_devices`] for multi-device topologies (a scheduler
    /// instance is needed per device).
    pub fn new(config: WorldConfig, sched: Box<dyn Scheduler>) -> Self {
        assert!(
            config.devices.len() <= 1 && config.topology.as_ref().is_none_or(|t| t.len() <= 1),
            "multi-device configurations need World::with_devices \
             (one scheduler instance per device)"
        );
        let mut sched = Some(sched);
        Self::build(config, Box::new(LeastLoaded), &mut |_| {
            // lint: allow(unchecked-unwrap) — the single-device build closure
            // runs exactly once
            sched.take().expect("exactly one device")
        })
    }

    /// Creates a world whose devices come from the configuration
    /// ([`WorldConfig::devices`], or one device from
    /// [`WorldConfig::gpu`] when empty). `sched_factory` is invoked
    /// once per device to build that device's scheduler instance;
    /// `placement` assigns arriving tasks to devices.
    pub fn with_devices(
        config: WorldConfig,
        placement: Box<dyn Placement>,
        mut sched_factory: impl FnMut(DeviceId) -> Box<dyn Scheduler>,
    ) -> Self {
        Self::build(config, placement, &mut sched_factory)
    }

    fn build(
        config: WorldConfig,
        placement: Box<dyn Placement>,
        sched_factory: &mut dyn FnMut(DeviceId) -> Box<dyn Scheduler>,
    ) -> Self {
        let topology = Self::resolve_topology(&config);
        let devices = Self::device_slots(&topology, &config, sched_factory);
        let rebalance = config.rebalance.build();
        let timeline = Self::make_timeline(&config);
        World {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            devices,
            topology,
            placement,
            rebalance,
            tasks: Vec::new(),
            task_pool: Vec::new(),
            config,
            pending_arrivals: Vec::new(),
            trace: Trace::new(),
            faults: 0,
            polls: 0,
            direct_submits: 0,
            rejected_admissions: 0,
            migrations: 0,
            transfer_stall: SimDuration::ZERO,
            events: 0,
            stats: SimStats::new(),
            groups: Vec::new(),
            timeline,
            last_sample_at: SimTime::ZERO,
            pending_hangs: 0,
            pending_submit_errors: 0,
            started: false,
            stopped: false,
        }
    }

    fn resolve_topology(config: &WorldConfig) -> Topology {
        match &config.topology {
            Some(t) => {
                assert!(
                    config.devices.is_empty(),
                    "set WorldConfig::topology or WorldConfig::devices, not both \
                     (the topology already names every device's config)"
                );
                t.clone()
            }
            // No topology given: a flat free-interconnect host whose
            // devices come from the legacy config fields — transfer
            // costs are zero and behavior is byte-identical to the
            // pre-topology model.
            None => {
                let gpu_configs = if config.devices.is_empty() {
                    vec![config.gpu.clone()]
                } else {
                    config.devices.clone()
                };
                Topology::new(
                    gpu_configs.into_iter().map(DeviceSlotSpec::near).collect(),
                    InterconnectParams::free(),
                )
            }
        }
    }

    fn device_slots(
        topology: &Topology,
        config: &WorldConfig,
        sched_factory: &mut dyn FnMut(DeviceId) -> Box<dyn Scheduler>,
    ) -> Vec<DeviceSlot> {
        topology
            .configs()
            .into_iter()
            .enumerate()
            .map(|(i, gpu_config)| {
                let id = DeviceId::from_index(i);
                DeviceSlot {
                    id,
                    gpu: Gpu::with_id(id, gpu_config),
                    sched: Some(sched_factory(id)),
                    params: config
                        .device_params
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| config.params.clone()),
                    protected: Vec::new(),
                    engine_tokens: [None; EngineClass::ALL.len()],
                    live_tenants: 0,
                    stats: SimStats::new(),
                    transfer_stall: SimDuration::ZERO,
                    sampled_busy: SimDuration::ZERO,
                    online: true,
                    offline_since: None,
                    offline_total: SimDuration::ZERO,
                    hung_engines: [false; EngineClass::ALL.len()],
                }
            })
            .collect()
    }

    /// The ring is sized only when the sampler will actually run; with
    /// sampling off, the placeholder allocates nothing.
    fn make_timeline(config: &WorldConfig) -> Timeline {
        match config.sample_every {
            Some(_) => Timeline::with_capacity(config.timeline_capacity),
            None => Timeline::default(),
        }
    }

    /// Returns this world to a freshly-constructed state under a new
    /// configuration, recycling every long-lived allocation: the event
    /// queue's slab and heap, the trace ring, the task table, the
    /// pending-arrival table, and the retired task shells (see
    /// [`TaskShell`]). A sweep worker builds one `World` and resets it
    /// between cells instead of constructing a new one per cell.
    ///
    /// Behavior is exactly that of `World::with_devices(config,
    /// placement, sched_factory)` — a reset world's trace is
    /// byte-identical to a fresh world's for the same subsequent
    /// program (pinned by `reset_world_matches_fresh_world` in
    /// `tests/sweep_properties.rs`). Device state (GPUs, schedulers,
    /// protection tables) is rebuilt from scratch: it is small,
    /// per-cell-constant, and a stale channel table is not worth the
    /// invalidation subtlety.
    pub fn reset(
        &mut self,
        config: WorldConfig,
        placement: Box<dyn Placement>,
        mut sched_factory: impl FnMut(DeviceId) -> Box<dyn Scheduler>,
    ) {
        let topology = Self::resolve_topology(&config);
        self.devices = Self::device_slots(&topology, &config, &mut sched_factory);
        self.topology = topology;
        self.placement = placement;
        self.rebalance = config.rebalance.build();
        self.timeline = Self::make_timeline(&config);
        self.task_pool
            .extend(self.tasks.drain(..).map(TaskShell::retire));
        self.queue.clear();
        self.trace.reset();
        self.pending_arrivals.clear();
        self.now = SimTime::ZERO;
        self.faults = 0;
        self.polls = 0;
        self.direct_submits = 0;
        self.rejected_admissions = 0;
        self.migrations = 0;
        self.transfer_stall = SimDuration::ZERO;
        self.events = 0;
        self.stats = SimStats::new();
        self.groups.clear();
        self.last_sample_at = SimTime::ZERO;
        self.pending_hangs = 0;
        self.pending_submit_errors = 0;
        self.started = false;
        self.stopped = false;
        self.config = config;
    }

    /// Number of devices in this world.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Free (contexts, channels) summed across every device — the
    /// host-level capacity figure the fleet tier's admission ledger is
    /// seeded from.
    pub fn free_capacity(&self) -> (usize, usize) {
        self.devices.iter().fold((0, 0), |(ctx, ch), d| {
            (ctx + d.gpu.free_contexts(), ch + d.gpu.free_channels())
        })
    }

    /// Replaces the rebalancing policy (normally chosen by
    /// [`WorldConfig::rebalance`]) with a custom implementation —
    /// the hook experiments and tests use to drive migration decisions
    /// the built-in kinds don't express.
    pub fn set_rebalance_policy(&mut self, policy: Box<dyn Rebalance>) {
        self.rebalance = policy;
    }

    fn multi(&self) -> bool {
        self.devices.len() > 1
    }

    /// Admits a task running `workload`, immediately, on the device the
    /// placement policy chooses.
    ///
    /// Before [`World::run`] this stages the task for a staggered start
    /// at time zero (the closed-loop harness path). After `run()` has
    /// begun — i.e. called from scheduler or driver code while the
    /// event loop is live — the task joins mid-run: the policy sees
    /// [`Scheduler::on_task_admitted`] and the task takes its first
    /// step at the current instant.
    ///
    /// To stage a *future* arrival, use [`World::spawn_task_at`].
    ///
    /// # Errors
    ///
    /// Returns the device error if no device can host the task (the
    /// §6.3 DoS condition).
    pub fn add_task(&mut self, workload: BoxedWorkload) -> Result<TaskId, GpuError> {
        self.add_task_placed(workload, None)
    }

    /// Like [`World::add_task`], but pinned to `device`: the placement
    /// policy is bypassed, and the admission fails if that device is
    /// full even when siblings have room.
    pub fn add_task_pinned(
        &mut self,
        workload: BoxedWorkload,
        device: DeviceId,
    ) -> Result<TaskId, GpuError> {
        self.add_task_placed(workload, Some(device))
    }

    fn add_task_placed(
        &mut self,
        workload: BoxedWorkload,
        pin: Option<DeviceId>,
    ) -> Result<TaskId, GpuError> {
        let id = self.place_and_admit(workload, pin, 0)?;
        if self.started {
            let dev = self.tasks[id.index()].device;
            let staging = self.charge_staging(id);
            self.trace.record_with(self.now, labels::ARRIVE, || {
                if self.devices.len() > 1 {
                    format!("{id} admitted mid-run on {dev}")
                } else {
                    format!("{id} admitted mid-run")
                }
            });
            self.dispatch_sched(dev.index(), |s, ctx| s.on_task_admitted(ctx, id));
            // Rounds start after the working set is staged, matching
            // the start-of-run path — staging is reported as
            // transfer_stall, never as round time.
            self.tasks[id.index()].round_start = self.now + staging;
            self.schedule_step(id, staging);
        }
        Ok(id)
    }

    /// The data-movement delay of staging a newly admitted task's
    /// working set from host memory onto its device, charged to the
    /// task and the run totals. Zero on free interconnects, so the
    /// pre-topology admission path is unchanged.
    fn charge_staging(&mut self, id: TaskId) -> SimDuration {
        let task = &self.tasks[id.index()];
        let cost = self
            .topology
            .staging_cost(task.device.index(), task.workload.working_set_bytes());
        if !cost.is_zero() {
            let dev = self.tasks[id.index()].device.index();
            self.tasks[id.index()].transfer_stall += cost;
            self.transfer_stall += cost;
            self.devices[dev].transfer_stall += cost;
            trace_event!(
                self.trace,
                self.now,
                labels::STAGE,
                "{id} working set in {cost}"
            );
        }
        cost
    }

    /// Schedules `workload` to arrive at `at` (simulated time). The
    /// task's device resources are allocated at the arrival instant —
    /// on the device the placement policy picks then — and if every
    /// device is exhausted, the arrival is rejected and counted in
    /// [`RunReport::rejected_admissions`] instead of panicking —
    /// open-loop traffic does not get to assume room.
    pub fn spawn_task_at(&mut self, at: SimTime, workload: BoxedWorkload) {
        self.stage_arrival(at, workload, None, None, 0);
    }

    /// Like [`World::spawn_task_at`], but the task also departs
    /// `lifetime` after its admission (mid-work if necessary), exactly
    /// as if the process had exited: pending submissions are dropped
    /// and the driver's exit protocol reclaims its device state.
    pub fn spawn_task_for(&mut self, at: SimTime, workload: BoxedWorkload, lifetime: SimDuration) {
        self.stage_arrival(at, workload, Some(lifetime), None, 0);
    }

    /// Like [`World::spawn_task_at`], pinned to `device`.
    pub fn spawn_task_at_on(&mut self, at: SimTime, workload: BoxedWorkload, device: DeviceId) {
        self.stage_arrival(at, workload, None, Some(device), 0);
    }

    /// Like [`World::spawn_task_for`], pinned to `device`.
    pub fn spawn_task_for_on(
        &mut self,
        at: SimTime,
        workload: BoxedWorkload,
        lifetime: SimDuration,
        device: DeviceId,
    ) {
        self.stage_arrival(at, workload, Some(lifetime), Some(device), 0);
    }

    /// Schedules an already-admitted task's departure at `at`. No-op
    /// if the task has already exited by then.
    pub fn depart_task_at(&mut self, at: SimTime, task: TaskId) {
        let at = at.max(self.now);
        self.queue.schedule(at, Event::TaskDeparture(task));
    }

    fn stage_arrival(
        &mut self,
        at: SimTime,
        workload: BoxedWorkload,
        lifetime: Option<SimDuration>,
        pin: Option<DeviceId>,
        retries: u32,
    ) {
        let idx = self.pending_arrivals.len() as u64;
        self.pending_arrivals.push(Some(PendingArrival {
            workload,
            lifetime,
            pin,
            retries,
        }));
        let at = at.max(self.now);
        self.queue.schedule(at, Event::TaskArrival(idx));
    }

    /// Chooses the device an arriving task is admitted on. Pinned
    /// tasks and single-device worlds go straight to the target device
    /// (admission itself surfaces the precise error on a full device —
    /// the legacy path); multi-device worlds consult the placement
    /// policy over capacity-checked load snapshots.
    fn choose_device(
        &mut self,
        channels: usize,
        working_set: u64,
        pin: Option<DeviceId>,
    ) -> Result<usize, GpuError> {
        if let Some(pin) = pin {
            assert!(
                pin.index() < self.devices.len(),
                "task pinned to unknown device {pin}"
            );
            // An offline (hot-removed) device offers no contexts; the
            // pin cannot be honored until a hot-add restores it.
            if !self.devices[pin.index()].online {
                return Err(GpuError::OutOfContexts);
            }
            return Ok(pin.index());
        }
        if !self.multi() {
            if !self.devices[0].online {
                return Err(GpuError::OutOfContexts);
            }
            return Ok(0);
        }
        let loads = self.loads(working_set);
        match self.placement.place(&loads, channels) {
            Some(d) => Ok(d.index()),
            None => {
                // Name the bottleneck of the devices that could not
                // host the task (a policy may also decline devices
                // that fit, e.g. pinned — the unfit ones still carry
                // the only honest resource explanation).
                let context_starved = loads
                    .iter()
                    .any(|l| !l.fits(channels) && l.free_contexts == 0);
                Err(if context_starved {
                    GpuError::OutOfContexts
                } else {
                    GpuError::OutOfChannels
                })
            }
        }
    }

    /// Kernel-observable load snapshot of every *online* device, in id
    /// order (a hot-removed device is invisible to placement and
    /// rebalancing until it returns). `working_set` is the arriving
    /// task's state size, from which each device's staging cost is
    /// derived.
    fn loads(&self, working_set: u64) -> Vec<DeviceLoad> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.online)
            .map(|(i, slot)| DeviceLoad {
                device: slot.id,
                tenants: {
                    debug_assert_eq!(
                        slot.live_tenants,
                        self.tasks
                            .iter()
                            .filter(|t| t.live && t.device == slot.id)
                            .count(),
                        "{}: live-tenant counter drifted from the task table",
                        slot.id
                    );
                    slot.live_tenants
                },
                free_contexts: slot.gpu.free_contexts(),
                free_channels: slot.gpu.free_channels(),
                queued_requests: slot.gpu.queued_requests()
                    + EngineClass::ALL
                        .iter()
                        .filter(|&&c| slot.gpu.running(c).is_some())
                        .count(),
                busy: slot.gpu.engine_busy(EngineClass::Compute)
                    + slot.gpu.engine_busy(EngineClass::Dma),
                completed: slot.gpu.completed_requests(),
                host_distance: self.topology.host_tier(i).rank(),
                staging_cost: self.topology.staging_cost(i, working_set),
            })
            .collect()
    }

    fn place_and_admit(
        &mut self,
        workload: BoxedWorkload,
        pin: Option<DeviceId>,
        retries: u32,
    ) -> Result<TaskId, GpuError> {
        let channels = workload.queues().len();
        let dev = self.choose_device(channels, workload.working_set_bytes(), pin)?;
        match self.admit(workload, dev, pin, retries) {
            Ok(id) => Ok(id),
            Err(err) => {
                self.devices[dev].stats.bump(StatKey::RejectedAdmissions);
                Err(err)
            }
        }
    }

    /// Creates the task's runtime state and device resources on `dev`.
    fn admit(
        &mut self,
        workload: BoxedWorkload,
        dev: usize,
        pin: Option<DeviceId>,
        retries: u32,
    ) -> Result<TaskId, GpuError> {
        let id = TaskId::from_index(self.tasks.len());
        let slot = &mut self.devices[dev];
        // Draw the task's buffers from the arena of retired shells
        // (refilled by `World::reset`); a fresh world just allocates.
        let mut shell = self.task_pool.pop().unwrap_or_default();
        let context = match slot.gpu.create_context(id) {
            Ok(context) => context,
            Err(err) => {
                self.task_pool.push(shell);
                return Err(err);
            }
        };
        for kind in workload.queues() {
            let ch = match slot.gpu.create_channel(context, kind) {
                Ok(ch) => ch,
                Err(err) => {
                    // Reclaim the context and any channels created so
                    // far: a rejected admission must not shrink device
                    // capacity, and the id (== tasks.len()) will be
                    // reused by the next successful arrival.
                    slot.gpu.destroy_task(self.now, id);
                    shell.channels.clear();
                    self.task_pool.push(shell);
                    return Err(err);
                }
            };
            shell.channels.push(ch);
            if slot.protected.len() <= ch.index() {
                slot.protected.resize(ch.index() + 1, false);
            }
        }
        let device = slot.id;
        let mut seed_rng = DetRng::seed_from(self.config.seed);
        let rng = seed_rng.fork(id.raw() as u64 + 1);
        let name = workload.name().to_string();
        // Streaming mode aggregates per workload name as well as per
        // task; group count is bounded by the number of distinct
        // workload shapes (small), so a linear scan suffices.
        let group = if self.config.metrics == MetricsMode::Streaming {
            match self.groups.iter().position(|g| g.name == name) {
                Some(g) => g,
                None => {
                    self.groups.push(GroupReport {
                        name: name.clone(),
                        ..GroupReport::default()
                    });
                    self.groups.len() - 1
                }
            }
        } else {
            0
        };
        if self.config.metrics == MetricsMode::Streaming {
            self.groups[group].members += 1;
        }
        self.tasks.push(TaskRt {
            id,
            name,
            max_outstanding: workload.max_outstanding().max(1),
            workload,
            rng,
            device,
            pin,
            context,
            channels: shell.channels,
            state: TaskState::Ready,
            outstanding: 0,
            arrived_at: self.now,
            finished_at: None,
            pending_submit: None,
            inflight_submit: None,
            step_token: None,
            live: true,
            killed: false,
            migrations: 0,
            last_migrated_at: None,
            transfer_stall: SimDuration::ZERO,
            migration_until: None,
            hang_next: false,
            submit_errors: 0,
            retries,
            park_retries: 0,
            displaced: false,
            park_token: None,
            round_start: SimTime::ZERO,
            rounds: shell.rounds,
            submitted: 0,
            completed: 0,
            faults: 0,
            submit_times: shell.submit_times,
            service_times: shell.service_times,
            service_kinds: shell.service_kinds,
            group,
            last_submit: None,
            rounds_hist: StreamingHistogram::new(),
            service_hist: StreamingHistogram::new(),
            interarrival_hist: StreamingHistogram::new(),
        });
        self.devices[dev].live_tenants += 1;
        Ok(id)
    }

    /// Runs the simulation for `horizon` and returns the report.
    pub fn run(&mut self, horizon: SimDuration) -> RunReport {
        assert!(!self.started, "run() may only be called once");
        self.started = true;

        // Let each device's policy see its admitted tasks and set
        // protection.
        let tasks: Vec<(TaskId, DeviceId)> = self.tasks.iter().map(|t| (t.id, t.device)).collect();
        for dev in 0..self.devices.len() {
            self.dispatch_sched(dev, |s, ctx| s.init(ctx));
        }
        for (t, dev) in tasks {
            self.dispatch_sched(dev.index(), |s, ctx| s.on_task_admitted(ctx, t));
        }

        // First steps, staggered (plus any working-set staging delay —
        // zero on free interconnects).
        for i in 0..self.tasks.len() {
            let id = self.tasks[i].id;
            let staging = self.charge_staging(id);
            let at = SimTime::ZERO + self.config.start_stagger * i as u64 + staging;
            let token = self.queue.schedule(at, Event::TaskStep(id));
            self.tasks[i].step_token = Some(token);
            self.tasks[i].round_start = at;
        }
        self.queue
            .schedule(SimTime::ZERO + self.config.cost.polling_period, Event::Poll);
        if let Some(every) = self.config.sample_every {
            assert!(!every.is_zero(), "sample_every must be positive");
            self.queue.schedule(SimTime::ZERO + every, Event::Sample);
        }
        // Fault schedule and watchdogs — scheduled only when a plan is
        // attached, so fault-free event streams stay byte-identical.
        if let Some(plan) = &self.config.faults {
            if let Err(why) = plan.validate() {
                // lint: allow(panic-path) — config validation at run
                // start; the scenario loader rejects these keyed first
                panic!("invalid fault plan: {why}");
            }
            let ats: Vec<SimTime> = plan.events().iter().map(|e| e.at).collect();
            let watchdog = plan.config.watchdog;
            for (i, at) in (0u32..).zip(ats) {
                self.queue.schedule(at.max(SimTime::ZERO), Event::Fault(i));
            }
            if let Some(every) = watchdog {
                for d in 0..self.devices.len() {
                    let id = self.devices[d].id;
                    self.queue
                        .schedule(SimTime::ZERO + every, Event::Watchdog(id));
                }
            }
        }
        self.queue.schedule(SimTime::ZERO + horizon, Event::Horizon);

        while let Some((at, event)) = self.queue.pop() {
            self.now = at;
            self.events += 1;
            match event {
                Event::Horizon => {
                    self.stopped = true;
                    break;
                }
                Event::TaskStep(t) => self.task_step(t),
                Event::DeviceSubmit(t) => self.device_submit(t),
                Event::EngineDone(dev, class) => self.engine_done(dev.index(), class),
                Event::Poll => {
                    self.polls += 1;
                    for dev in 0..self.devices.len() {
                        self.dispatch_sched(dev, |s, ctx| s.on_poll(ctx));
                    }
                    let next = self.now + self.config.cost.polling_period;
                    self.queue.schedule(next, Event::Poll);
                }
                Event::SchedTimer(dev, tag) => {
                    self.dispatch_sched(dev.index(), |s, ctx| s.on_timer(ctx, tag));
                }
                Event::TaskArrival(idx) => self.task_arrival(idx),
                Event::TaskDeparture(id) => {
                    if self.tasks.get(id.index()).is_some_and(|t| t.live) {
                        trace_event!(self.trace, self.now, labels::DEPART, "{id}");
                        self.task_exit(id);
                    }
                }
                Event::Sample => {
                    self.take_sample();
                    let every = self
                        .config
                        .sample_every
                        // lint: allow(unchecked-unwrap) — Sample events are
                        // only scheduled when sample_every is set
                        .expect("Sample events exist only when a cadence is set");
                    self.queue.schedule(self.now + every, Event::Sample);
                }
                Event::Fault(i) => self.inject_fault(i),
                Event::Watchdog(dev) => self.watchdog_tick(dev.index()),
                Event::ParkRetry(id) => {
                    self.tasks[id.index()].park_token = None;
                    self.park_retry(id);
                }
            }
        }
        self.report(horizon)
    }

    /// A staged arrival reaches its instant: allocate device resources
    /// and join the run, or be turned away if the device is full.
    fn task_arrival(&mut self, idx: u64) {
        let Some(arrival) = self.pending_arrivals[idx as usize].take() else {
            return;
        };
        match self.place_and_admit(arrival.workload, arrival.pin, arrival.retries) {
            Ok(id) => {
                let dev = self.tasks[id.index()].device;
                let staging = self.charge_staging(id);
                self.trace.record_with(self.now, labels::ARRIVE, || {
                    if self.devices.len() > 1 {
                        format!("{id} on {dev}")
                    } else {
                        format!("{id}")
                    }
                });
                self.dispatch_sched(dev.index(), |s, ctx| s.on_task_admitted(ctx, id));
                // As above: rounds start once the working set is
                // staged, keeping round times comparable between
                // static and churn admissions.
                self.tasks[id.index()].round_start = self.now + staging;
                self.schedule_step(id, staging);
                if let Some(lifetime) = arrival.lifetime {
                    self.queue
                        .schedule(self.now + lifetime, Event::TaskDeparture(id));
                }
            }
            Err(err) => {
                self.rejected_admissions += 1;
                trace_event!(
                    self.trace,
                    self.now,
                    labels::REJECT,
                    "arrival refused: {err:?}"
                );
            }
        }
    }

    /// One sampler tick: snapshot every device's gauges into the
    /// bounded timeline ring. Pure observation — no task, device or
    /// scheduler state changes, so enabling the sampler perturbs only
    /// the event count, never the schedule.
    fn take_sample(&mut self) {
        let period = self.now.saturating_duration_since(self.last_sample_at);
        // In-flight migrations are rare; scan only when any migration
        // has ever happened.
        let inflight = if self.migrations > 0 {
            self.tasks
                .iter()
                .filter(|t| t.migration_until.is_some_and(|until| until > self.now))
                .count()
        } else {
            0
        };
        let live_tasks = self.devices.iter().map(|s| s.live_tenants).sum();
        let devices = self
            .devices
            .iter_mut()
            .map(|slot| {
                let busy = slot.gpu.engine_busy(EngineClass::Compute);
                let delta = busy.saturating_sub(slot.sampled_busy);
                slot.sampled_busy = busy;
                let running = EngineClass::ALL
                    .iter()
                    .filter(|&&c| slot.gpu.running(c).is_some())
                    .count();
                DeviceSample {
                    device: slot.id,
                    utilization: if period.is_zero() {
                        0.0
                    } else {
                        delta.ratio(period).min(1.0)
                    },
                    queue_depth: slot.gpu.queued_requests() + running,
                    tenants: slot.live_tenants,
                    engines_busy: running,
                    migrations_in: slot.stats.get(StatKey::MigrationsIn),
                    migrations_out: slot.stats.get(StatKey::MigrationsOut),
                }
            })
            .collect();
        self.timeline.push(TimelineSample {
            at: self.now,
            events: self.events,
            live_tasks,
            inflight_migrations: inflight,
            devices,
        });
        self.last_sample_at = self.now;
    }

    // ------------------------------------------------------------------
    // Task execution
    // ------------------------------------------------------------------

    fn task_step(&mut self, id: TaskId) {
        {
            let task = &mut self.tasks[id.index()];
            task.step_token = None;
            if !task.live {
                return;
            }
            task.state = TaskState::Ready;
        }
        // A parked or capacity-stalled submission is retried first.
        if let Some((queue, spec)) = self.tasks[id.index()].pending_submit.take() {
            self.attempt_submit(id, queue, spec);
            return;
        }
        let action = {
            let task = &mut self.tasks[id.index()];
            let mut rng = task.rng.clone();
            let action = task.workload.next_action(&mut rng);
            task.rng = rng;
            action
        };
        match action {
            TaskAction::CpuWork(d) => {
                self.schedule_step(id, d.max(SimDuration::from_nanos(1)));
            }
            TaskAction::Submit { queue, spec } => {
                let task = &self.tasks[id.index()];
                assert!(
                    queue < task.channels.len(),
                    "workload {} submitted on unknown queue {queue}",
                    task.name
                );
                if task.outstanding >= task.max_outstanding {
                    let task = &mut self.tasks[id.index()];
                    task.pending_submit = Some((queue, spec));
                    task.state = TaskState::WaitingSlot;
                    return;
                }
                self.attempt_submit(id, queue, spec);
            }
            TaskAction::WaitAll => {
                if self.tasks[id.index()].outstanding == 0 {
                    self.schedule_step(id, SimDuration::from_nanos(1));
                } else {
                    self.tasks[id.index()].state = TaskState::WaitingAll;
                }
            }
            TaskAction::EndRound => {
                let task = &mut self.tasks[id.index()];
                let len = self.now.saturating_duration_since(task.round_start);
                match self.config.metrics {
                    MetricsMode::Exact => task.rounds.push(len),
                    MetricsMode::Streaming => {
                        task.rounds_hist.record(len);
                        let group = task.group;
                        self.groups[group].rounds.record(len);
                    }
                }
                let task = &mut self.tasks[id.index()];
                task.round_start = self.now;
                self.schedule_step(id, SimDuration::from_nanos(1));
            }
            TaskAction::Done => {
                self.task_exit(id);
            }
        }
    }

    /// Submission path: direct store or fault, per protection state.
    fn attempt_submit(&mut self, id: TaskId, queue: QueueIndex, spec: SubmitSpec) {
        // An armed transient submission error consumes this attempt:
        // the submission is retained and retried after the backoff
        // base. The outer counter keeps this a single integer compare
        // on fault-free runs.
        if self.pending_submit_errors > 0 && self.tasks[id.index()].submit_errors > 0 {
            self.tasks[id.index()].submit_errors -= 1;
            self.pending_submit_errors -= 1;
            let delay = self.fault_config().backoff_base;
            let dev = self.tasks[id.index()].device.index();
            self.stats.bump(StatKey::FaultRetries);
            self.devices[dev].stats.bump(StatKey::FaultRetries);
            trace_event!(
                self.trace,
                self.now,
                labels::SUBMIT_ERR,
                "{id} transient error; retry in {delay}"
            );
            self.tasks[id.index()].pending_submit = Some((queue, spec));
            self.schedule_step(id, delay);
            return;
        }
        let dev = self.tasks[id.index()].device.index();
        let ch = self.tasks[id.index()].channels[queue];
        if self.devices[dev].protected[ch.index()] {
            self.faults += 1;
            self.tasks[id.index()].faults += 1;
            self.devices[dev].stats.bump(StatKey::Faults);
            trace_event!(self.trace, self.now, labels::FAULT, "{id} on {ch}");
            let decision = self.dispatch_sched(dev, |s, ctx| s.on_fault(ctx, id, ch));
            match decision {
                FaultDecision::Allow => {
                    self.finish_submit(id, queue, spec, self.config.cost.fault_intercept);
                }
                FaultDecision::Park => {
                    let task = &mut self.tasks[id.index()];
                    task.pending_submit = Some((queue, spec));
                    task.state = TaskState::Parked;
                }
            }
        } else {
            self.direct_submits += 1;
            self.finish_submit(id, queue, spec, self.config.cost.direct_submit);
        }
    }

    /// Starts the submission's CPU phase (direct store or fault
    /// handling); the device sees the request when it ends.
    fn finish_submit(&mut self, id: TaskId, queue: QueueIndex, spec: SubmitSpec, cpu: SimDuration) {
        let task = &mut self.tasks[id.index()];
        debug_assert!(
            task.inflight_submit.is_none(),
            "submission already in flight"
        );
        task.inflight_submit = Some((queue, spec));
        self.queue.schedule(self.now + cpu, Event::DeviceSubmit(id));
    }

    /// The channel-register write retires: the device accepts the
    /// request.
    fn device_submit(&mut self, id: TaskId) {
        let Some((queue, spec)) = self.tasks[id.index()].inflight_submit.take() else {
            return; // task was killed while the store was in flight
        };
        if !self.tasks[id.index()].live {
            return;
        }
        let dev = self.tasks[id.index()].device.index();
        let ch = self.tasks[id.index()].channels[queue];
        let (rid, _reference) = self.devices[dev]
            .gpu
            .submit(self.now, ch, spec)
            // lint: allow(unchecked-unwrap) — World sizes rings to the
            // workload pipeline depth at admission; an overflow here is a sim
            // invariant violation, not recoverable input
            .expect("submission failed: pipeline depth must stay below ring capacity");
        {
            let task = &mut self.tasks[id.index()];
            task.outstanding += 1;
            task.submitted += 1;
            match self.config.metrics {
                MetricsMode::Exact => {
                    if self.config.record_requests {
                        task.submit_times.push(self.now);
                    }
                }
                MetricsMode::Streaming => {
                    // Interarrival gaps need no record_requests opt-in:
                    // the sketch is fixed-memory either way.
                    if let Some(prev) = task.last_submit {
                        let gap = self.now.saturating_duration_since(prev);
                        task.interarrival_hist.record(gap);
                        let group = task.group;
                        self.groups[group].interarrival.record(gap);
                    }
                    let task = &mut self.tasks[id.index()];
                    task.last_submit = Some(self.now);
                }
            }
        }
        self.pump_engines(dev);
        let task = &mut self.tasks[id.index()];
        if spec.blocking {
            task.state = TaskState::BlockedOnRequest(rid);
        } else {
            let _ = task;
            self.schedule_step(id, SimDuration::ZERO);
        }
    }

    fn engine_done(&mut self, dev: usize, class: EngineClass) {
        self.devices[dev].engine_tokens[class as usize] = None;
        let done = self.devices[dev].gpu.complete_running(self.now, class);
        let id = done.task;
        {
            let task = &mut self.tasks[id.index()];
            task.outstanding = task.outstanding.saturating_sub(1);
            task.completed += 1;
            match self.config.metrics {
                MetricsMode::Exact => {
                    if self.config.record_requests {
                        task.service_times.push(done.request.service);
                        task.service_kinds.push(done.request.kind);
                    }
                }
                MetricsMode::Streaming => {
                    let service = done.request.service;
                    task.service_hist.record(service);
                    let group = task.group;
                    self.groups[group].service.record(service);
                }
            }
        }
        // Wake the submitter if it was waiting on this completion
        // (user-space spin: exact, plus detection latency).
        let detect = self.config.cost.completion_detect;
        let task = &self.tasks[id.index()];
        let wake = match task.state {
            TaskState::BlockedOnRequest(rid) => rid == done.request.id,
            TaskState::WaitingAll => task.outstanding == 0,
            TaskState::WaitingSlot => task.outstanding < task.max_outstanding,
            _ => false,
        };
        if wake && task.live {
            self.schedule_step(id, detect);
        }
        self.dispatch_sched(dev, |s, ctx| s.on_completion(ctx, &done));
        self.pump_engines(dev);
    }

    /// Dispatches idle engines of device `dev` onto pending work and
    /// schedules their completion events. An offline (hot-removed)
    /// device dispatches nothing; an engine wedged by an injected hang
    /// stays busy until its victim is torn down.
    fn pump_engines(&mut self, dev: usize) {
        if !self.devices[dev].online {
            return;
        }
        let device = self.devices[dev].id;
        for class in EngineClass::ALL {
            if self.devices[dev].engine_tokens[class as usize].is_some()
                || self.devices[dev].hung_engines[class as usize]
            {
                continue;
            }
            if let Some(outcome) = self.devices[dev].gpu.try_dispatch(self.now, class) {
                // An armed hang wedges the first request its victim
                // gets running: no completion event is scheduled, and
                // the engine stays occupied until the task is killed.
                if self.pending_hangs > 0 && self.tasks[outcome.request.task.index()].hang_next {
                    let victim = outcome.request.task;
                    self.tasks[victim.index()].hang_next = false;
                    self.pending_hangs -= 1;
                    self.devices[dev].hung_engines[class as usize] = true;
                    trace_event!(
                        self.trace,
                        self.now,
                        labels::HANG,
                        "{victim} wedges {device} {class:?}"
                    );
                    continue;
                }
                let token = self
                    .queue
                    .schedule(outcome.finish_at, Event::EngineDone(device, class));
                self.devices[dev].engine_tokens[class as usize] = Some(token);
            }
        }
    }

    fn schedule_step(&mut self, id: TaskId, delay: SimDuration) {
        let task = &mut self.tasks[id.index()];
        if task.step_token.is_some() || !task.live {
            return;
        }
        let token = self.queue.schedule(self.now + delay, Event::TaskStep(id));
        task.step_token = Some(token);
        task.state = TaskState::Ready;
    }

    fn task_exit(&mut self, id: TaskId) {
        if !self.tasks[id.index()].live {
            return;
        }
        self.disarm_fault_flags(id);
        {
            let task = &mut self.tasks[id.index()];
            task.live = false;
            task.state = TaskState::Finished;
            task.finished_at = Some(self.now);
            task.pending_submit = None;
            task.inflight_submit = None;
            if let Some(tok) = task.step_token.take() {
                self.queue.cancel(tok);
            }
        }
        let dev = self.tasks[id.index()].device.index();
        self.devices[dev].live_tenants -= 1;
        self.teardown_device_state(id);
        self.dispatch_sched(dev, |s, ctx| s.on_task_exit(ctx, id));
        self.maybe_rebalance();
    }

    fn teardown_device_state(&mut self, id: TaskId) {
        let dev = self.tasks[id.index()].device.index();
        // A wedged engine whose running request belongs to this task is
        // freed by the teardown: clear the hang before destroy_task
        // aborts the request, so the engine returns to service.
        for class in EngineClass::ALL {
            if self.devices[dev].hung_engines[class as usize]
                && self.devices[dev]
                    .gpu
                    .running(class)
                    .is_some_and(|r| r.request.task == id)
            {
                self.devices[dev].hung_engines[class as usize] = false;
            }
        }
        let summary = self.devices[dev].gpu.destroy_task(self.now, id);
        for class in summary.aborted_engines {
            if let Some(tok) = self.devices[dev].engine_tokens[class as usize].take() {
                self.queue.cancel(tok);
            }
        }
        self.tasks[id.index()].outstanding = 0;
        self.pump_engines(dev);
    }

    // ------------------------------------------------------------------
    // Migration
    // ------------------------------------------------------------------

    /// After a departure, consult the [`Rebalance`] policy
    /// ([`WorldConfig::rebalance`]) over the same kernel-observable
    /// [`DeviceLoad`] snapshots the placement layer sees, plus the
    /// movable candidates (live, unpinned) and the topology's transfer
    /// pricing. At most one task moves per departure; policies are
    /// deterministic, so runs stay reproducible per seed.
    fn maybe_rebalance(&mut self) {
        if !self.rebalance.active() || !self.multi() || !self.started {
            return;
        }
        // The capacity snapshot is taken once, here — policies route
        // every fitness check through `DeviceLoad::fits`, the same
        // predicate placement uses, so the two layers cannot disagree
        // about what a device can hold.
        let loads = self.loads(0);
        let candidates: Vec<MigrationCandidate> = self
            .tasks
            .iter()
            .filter(|t| t.live && t.pin.is_none())
            .map(|t| MigrationCandidate {
                task: t.id,
                from: t.device,
                channels: t.channels.len(),
                working_set: t.workload.working_set_bytes(),
                last_migrated: t.last_migrated_at,
            })
            .collect();
        let plan = self
            .rebalance
            .plan(self.now, &self.topology, &loads, &candidates);
        if let Some(m) = plan {
            if self.migration_is_sound(&m) {
                self.migrate_task(m.task, m.to.index());
            }
        }
    }

    /// Verifies a policy's plan before executing it: the task must be
    /// a live, unpinned candidate and the target a real device with
    /// room for its channels. The built-in policies cannot produce an
    /// unsound plan (the snapshot is taken in the same event, with no
    /// mutation in between), but [`World::set_rebalance_policy`]
    /// accepts arbitrary implementations — a buggy one gets a traced
    /// refusal, not a panic.
    fn migration_is_sound(&mut self, m: &Migration) -> bool {
        let refusal = match self.tasks.get(m.task.index()) {
            None => Some("unknown task"),
            Some(t) if !t.live => Some("task is not live"),
            Some(t) if t.pin.is_some() => Some("task is pinned"),
            Some(t) => match self.devices.get(m.to.index()) {
                None => Some("unknown target device"),
                Some(slot)
                    if t.device != m.to
                        && (slot.gpu.free_contexts() < 1
                            || slot.gpu.free_channels() < t.channels.len()) =>
                {
                    Some("target cannot fit the task")
                }
                Some(_) => None,
            },
        };
        match refusal {
            Some(why) => {
                trace_event!(
                    self.trace,
                    self.now,
                    labels::MIGRATE_REFUSED,
                    "{} -> {}: {why}",
                    m.task,
                    m.to
                );
                false
            }
            None => true,
        }
    }

    /// Moves a live task to device `to`: its old device state is torn
    /// down exactly as on exit (queued work dropped, running request
    /// aborted — the drop-and-replay cost), fresh contexts and
    /// channels are allocated on the target, the task stalls for the
    /// interconnect transfer of its working set (working-set size ×
    /// link tier between the devices — zero on free interconnects),
    /// and both schedulers observe the move as an exit plus an
    /// admission.
    fn migrate_task(&mut self, id: TaskId, to: usize) {
        let from = self.tasks[id.index()].device.index();
        if from == to {
            // A buggy policy returning the source device must not tear
            // down and re-create the task's state in place (dropping
            // its queued work for nothing) — refuse the no-op move.
            trace_event!(
                self.trace,
                self.now,
                labels::MIGRATE_NOOP,
                "{id} already on dev{to}; policy returned the source device"
            );
            return;
        }
        // Mirror task_exit's ordering exactly — dead to the source
        // scheduler, device state reclaimed, *then* on_task_exit — so
        // the source policy never observes an "exited" task that still
        // shows up in live_tasks() or holds an engine (a mid-sample
        // DFQ would otherwise wait for a drain whose completion was
        // just aborted). The old channels stay in place for the
        // callback: per-channel cleanup must see the source device's
        // ids.
        self.tasks[id.index()].live = false;
        self.devices[from].live_tenants -= 1;
        self.teardown_device_state(id);
        self.dispatch_sched(from, |s, ctx| s.on_task_exit(ctx, id));

        let kinds = self.tasks[id.index()].workload.queues();
        let slot = &mut self.devices[to];
        let context = slot
            .gpu
            .create_context(id)
            // lint: allow(unchecked-unwrap) — the migration planner
            // re-checked target capacity immediately before
            .expect("migration target capacity was checked");
        let mut channels = Vec::new();
        for kind in kinds {
            let ch = slot
                .gpu
                .create_channel(context, kind)
                // lint: allow(unchecked-unwrap) — the migration planner
                // re-checked target capacity immediately before
                .expect("migration target capacity was checked");
            if slot.protected.len() <= ch.index() {
                slot.protected.resize(ch.index() + 1, false);
            }
            channels.push(ch);
        }
        let to_id = slot.id;
        let transfer = self.topology.migration_cost(
            from,
            to,
            self.tasks[id.index()].workload.working_set_bytes(),
        );
        {
            let task = &mut self.tasks[id.index()];
            task.live = true;
            task.device = to_id;
            task.context = context;
            task.channels = channels;
            task.outstanding = 0;
            // The in-flight register write targeted the old device;
            // requests lost to the teardown are the migration's
            // drop-and-replay cost.
            task.inflight_submit = None;
            task.migrations += 1;
            task.last_migrated_at = Some(self.now);
            task.transfer_stall += transfer;
            task.migration_until = if transfer.is_zero() {
                None
            } else {
                Some(self.now + transfer)
            };
        }
        self.migrations += 1;
        self.transfer_stall += transfer;
        self.devices[from].stats.bump(StatKey::MigrationsOut);
        self.devices[to].live_tenants += 1;
        self.devices[to].stats.bump(StatKey::MigrationsIn);
        self.devices[to].transfer_stall += transfer;
        self.trace.record_with(self.now, labels::MIGRATE, || {
            if transfer.is_zero() {
                format!("{id} dev{from} -> dev{to}")
            } else {
                format!("{id} dev{from} -> dev{to} (transfer {transfer})")
            }
        });
        self.dispatch_sched(to, |s, ctx| s.on_task_admitted(ctx, id));
        // Whatever the task was blocked on lived on the old device;
        // resume it so it submits afresh (a retained pending_submit is
        // retried first) — after the working set has crossed the wire.
        self.schedule_step(id, transfer);
    }

    // ------------------------------------------------------------------
    // Fault injection and recovery
    // ------------------------------------------------------------------

    /// The active recovery tuning. Total (falls back to defaults) so
    /// call sites stay simple; reachable fault paths always have a
    /// plan attached.
    fn fault_config(&self) -> FaultConfig {
        self.config
            .faults
            .as_ref()
            .map(|p| p.config.clone())
            .unwrap_or_default()
    }

    /// Resolves a fault's victim: the explicit target if it is still
    /// live, else the lowest-id live task (deterministic under churn).
    fn fault_victim(&self, target: Option<TaskId>) -> Option<TaskId> {
        match target {
            Some(id) => self.tasks.get(id.index()).filter(|t| t.live).map(|t| t.id),
            None => self.tasks.iter().find(|t| t.live).map(|t| t.id),
        }
    }

    /// Clears any armed one-shot fault flags when a task leaves the
    /// live set, keeping the world-level arm counters exact.
    fn disarm_fault_flags(&mut self, id: TaskId) {
        let t = &mut self.tasks[id.index()];
        if t.hang_next {
            t.hang_next = false;
            self.pending_hangs -= 1;
        }
        if t.submit_errors > 0 {
            self.pending_submit_errors -= t.submit_errors;
            t.submit_errors = 0;
        }
    }

    /// One scheduled fault from the plan fires.
    fn inject_fault(&mut self, idx: u32) {
        let Some(plan) = &self.config.faults else {
            return;
        };
        let Some(ev) = plan.events().get(idx as usize).copied() else {
            return;
        };
        self.stats.bump(StatKey::InjectedFaults);
        match ev.kind {
            FaultKind::DeviceRemove { device } => self.hot_remove(device),
            FaultKind::DeviceAdd { device } => self.hot_add(device),
            FaultKind::TaskHang { task } => self.inject_hang(task),
            FaultKind::TaskCrash { task } => self.inject_crash(task),
            FaultKind::SubmitError { task } => self.inject_submit_error(task),
            // Host-scope events belong to the fleet layer; a lone
            // world ignores them.
            FaultKind::HostFail { .. } | FaultKind::HostRecover { .. } => {}
        }
    }

    /// Injected hang: the victim's running request (or, if it has
    /// none, its next dispatched one) never completes. The wedged
    /// engine stays busy until the victim is torn down — by the
    /// watchdog, a crash, or the horizon.
    fn inject_hang(&mut self, target: Option<TaskId>) {
        let Some(id) = self.fault_victim(target) else {
            trace_event!(self.trace, self.now, labels::HANG, "no live victim");
            return;
        };
        let dev = self.tasks[id.index()].device.index();
        for class in EngineClass::ALL {
            let running_victim = self.devices[dev]
                .gpu
                .running(class)
                .is_some_and(|r| r.request.task == id);
            if running_victim && !self.devices[dev].hung_engines[class as usize] {
                if let Some(tok) = self.devices[dev].engine_tokens[class as usize].take() {
                    self.queue.cancel(tok);
                }
                self.devices[dev].hung_engines[class as usize] = true;
                let device = self.devices[dev].id;
                trace_event!(
                    self.trace,
                    self.now,
                    labels::HANG,
                    "{id} wedges {device} {class:?}"
                );
                return;
            }
        }
        let t = &mut self.tasks[id.index()];
        if !t.hang_next {
            t.hang_next = true;
            self.pending_hangs += 1;
        }
        trace_event!(self.trace, self.now, labels::HANG, "{id} armed");
    }

    /// Injected crash: the victim dies on the spot and is lost (no
    /// requeue — the process is gone, not stuck).
    fn inject_crash(&mut self, target: Option<TaskId>) {
        let Some(id) = self.fault_victim(target) else {
            trace_event!(self.trace, self.now, labels::CRASH, "no live victim");
            return;
        };
        let dev = self.tasks[id.index()].device.index();
        if !self.kill_task_inner(id, labels::CRASH) {
            return;
        }
        self.stats.bump(StatKey::LostTasks);
        self.devices[dev].stats.bump(StatKey::LostTasks);
        self.dispatch_sched(dev, |s, ctx| s.on_task_exit(ctx, id));
        self.maybe_rebalance();
    }

    /// Injected transient submission error: the victim's next
    /// submission attempt fails once and is retried after the backoff
    /// base.
    fn inject_submit_error(&mut self, target: Option<TaskId>) {
        let Some(id) = self.fault_victim(target) else {
            trace_event!(self.trace, self.now, labels::SUBMIT_ERR, "no live victim");
            return;
        };
        self.tasks[id.index()].submit_errors += 1;
        self.pending_submit_errors += 1;
        trace_event!(self.trace, self.now, labels::SUBMIT_ERR, "{id} armed");
    }

    /// Per-device watchdog tick: any running request stagnant past the
    /// timeout gets its owner killed-and-requeued (with a retry
    /// budget). The tick re-arms itself at the timeout cadence — only
    /// while a fault plan with a watchdog is attached.
    fn watchdog_tick(&mut self, dev: usize) {
        let cfg = self.fault_config();
        let Some(timeout) = cfg.watchdog else {
            return;
        };
        if self.devices[dev].online {
            // Reference-counter stagnation — the same signal
            // SchedCtx::overlong_tasks reads for policy-level kills.
            let mut victims = [None; EngineClass::ALL.len()];
            let mut n = 0;
            for class in EngineClass::ALL {
                if let Some(run) = self.devices[dev].gpu.running(class) {
                    if self.now.saturating_duration_since(run.started_at) > timeout {
                        let t = run.request.task;
                        if self.tasks[t.index()].live && !victims.contains(&Some(t)) {
                            victims[n] = Some(t);
                            n += 1;
                        }
                    }
                }
            }
            for id in victims.into_iter().flatten() {
                self.watchdog_kill(id);
            }
        }
        let device = self.devices[dev].id;
        self.queue
            .schedule(self.now + timeout, Event::Watchdog(device));
    }

    /// Watchdog kill-and-requeue: the stagnant task is killed exactly
    /// like a scheduler kill, then — while its lineage has retry
    /// budget left — its workload (current state) is staged as a fresh
    /// arrival after an exponential-backoff delay. Budget exhausted
    /// means the task is lost.
    fn watchdog_kill(&mut self, id: TaskId) {
        let cfg = self.fault_config();
        let retries = self.tasks[id.index()].retries;
        let requeue = retries < cfg.retry_budget;
        let workload = if requeue {
            Some(self.tasks[id.index()].workload.box_clone())
        } else {
            None
        };
        let pin = self.tasks[id.index()].pin;
        let dev = self.tasks[id.index()].device.index();
        if !self.kill_task_inner(id, labels::WATCHDOG) {
            return;
        }
        self.stats.bump(StatKey::WatchdogKills);
        self.devices[dev].stats.bump(StatKey::WatchdogKills);
        self.dispatch_sched(dev, |s, ctx| s.on_task_exit(ctx, id));
        match workload {
            Some(w) => {
                let delay = cfg.backoff(retries);
                self.stats.bump(StatKey::FaultRetries);
                self.devices[dev].stats.bump(StatKey::FaultRetries);
                trace_event!(
                    self.trace,
                    self.now,
                    labels::REQUEUE,
                    "{id} attempt {} in {delay}",
                    retries + 1
                );
                self.stage_arrival(self.now + delay, w, None, pin, retries + 1);
            }
            None => {
                self.stats.bump(StatKey::LostTasks);
                self.devices[dev].stats.bump(StatKey::LostTasks);
                trace_event!(
                    self.trace,
                    self.now,
                    labels::LOST,
                    "{id} watchdog retry budget exhausted"
                );
            }
        }
        self.maybe_rebalance();
    }

    /// Hot-remove: the device goes offline — in-flight completions are
    /// lost — and every resident drain-and-migrates to a surviving
    /// device through the normal migration machinery (priced by the
    /// topology), or parks with bounded exponential backoff when
    /// nothing fits.
    fn hot_remove(&mut self, device: DeviceId) {
        let dev = device.index();
        if dev >= self.devices.len() || !self.devices[dev].online {
            trace_event!(
                self.trace,
                self.now,
                labels::HOT_REMOVE,
                "{device} ignored (unknown or already offline)"
            );
            return;
        }
        self.devices[dev].online = false;
        self.devices[dev].offline_since = Some(self.now);
        self.stats.bump(StatKey::HotRemoves);
        self.devices[dev].stats.bump(StatKey::HotRemoves);
        trace_event!(self.trace, self.now, labels::HOT_REMOVE, "{device}");
        for class in EngineClass::ALL {
            if let Some(tok) = self.devices[dev].engine_tokens[class as usize].take() {
                self.queue.cancel(tok);
            }
            self.devices[dev].hung_engines[class as usize] = false;
        }
        let residents: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|t| t.live && t.device == device)
            .map(|t| t.id)
            .collect();
        for id in residents {
            let channels = self.tasks[id.index()].channels.len();
            let ws = self.tasks[id.index()].workload.working_set_bytes();
            let pin = self.tasks[id.index()].pin;
            match self.place_among_online(channels, ws, pin) {
                Some(to) => {
                    self.migrate_task(id, to);
                    self.stats.bump(StatKey::RecoveredTasks);
                    self.devices[to].stats.bump(StatKey::RecoveredTasks);
                }
                None => self.park_displaced(id),
            }
        }
    }

    /// Hot-add: a removed device returns to service (empty); parked
    /// tasks get an immediate re-admission attempt, in id order.
    fn hot_add(&mut self, device: DeviceId) {
        let dev = device.index();
        if dev >= self.devices.len() || self.devices[dev].online {
            trace_event!(
                self.trace,
                self.now,
                labels::HOT_ADD,
                "{device} ignored (unknown or already online)"
            );
            return;
        }
        self.devices[dev].online = true;
        if let Some(since) = self.devices[dev].offline_since.take() {
            let down = self.now.saturating_duration_since(since);
            self.devices[dev].offline_total += down;
        }
        self.stats.bump(StatKey::HotAdds);
        self.devices[dev].stats.bump(StatKey::HotAdds);
        trace_event!(self.trace, self.now, labels::HOT_ADD, "{device}");
        let displaced: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|t| t.displaced && t.finished_at.is_none())
            .map(|t| t.id)
            .collect();
        for id in displaced {
            if let Some(tok) = self.tasks[id.index()].park_token.take() {
                self.queue.cancel(tok);
            }
            self.park_retry(id);
        }
    }

    /// Picks an online device with room for the task, honoring a pin
    /// (which can only be satisfied by its own device) and otherwise
    /// consulting the placement policy over online loads.
    fn place_among_online(
        &mut self,
        channels: usize,
        working_set: u64,
        pin: Option<DeviceId>,
    ) -> Option<usize> {
        if let Some(pin) = pin {
            let slot = self.devices.get(pin.index())?;
            let fits = slot.online
                && slot.gpu.free_contexts() >= 1
                && slot.gpu.free_channels() >= channels;
            return fits.then(|| pin.index());
        }
        let loads = self.loads(working_set);
        self.placement.place(&loads, channels).map(|d| d.index())
    }

    /// Parks a task displaced by a hot-remove: its (dead) device state
    /// is torn down and it waits off-device for capacity, retrying
    /// with bounded exponential backoff.
    fn park_displaced(&mut self, id: TaskId) {
        let cfg = self.fault_config();
        {
            let t = &mut self.tasks[id.index()];
            t.live = false;
            t.displaced = true;
            t.state = TaskState::Parked;
            t.inflight_submit = None;
            if let Some(tok) = t.step_token.take() {
                self.queue.cancel(tok);
            }
        }
        let dev = self.tasks[id.index()].device.index();
        self.devices[dev].live_tenants -= 1;
        self.teardown_device_state(id);
        self.dispatch_sched(dev, |s, ctx| s.on_task_exit(ctx, id));
        let delay = cfg.backoff(0);
        trace_event!(
            self.trace,
            self.now,
            labels::PARK,
            "{id} displaced; first retry in {delay}"
        );
        self.schedule_park_retry(id, delay);
    }

    /// (Re)arms a displaced task's retry event, replacing any pending
    /// one so at most one retry is ever in flight per task.
    fn schedule_park_retry(&mut self, id: TaskId, delay: SimDuration) {
        if let Some(tok) = self.tasks[id.index()].park_token.take() {
            self.queue.cancel(tok);
        }
        let tok = self.queue.schedule(self.now + delay, Event::ParkRetry(id));
        self.tasks[id.index()].park_token = Some(tok);
    }

    /// One re-admission attempt for a displaced task: re-stage onto an
    /// online device with room, or back off — until the retry bound
    /// declares the task lost.
    fn park_retry(&mut self, id: TaskId) {
        {
            let t = &self.tasks[id.index()];
            if !t.displaced || t.live || t.finished_at.is_some() {
                return;
            }
        }
        let cfg = self.fault_config();
        let channels = self.tasks[id.index()].workload.queues().len();
        let ws = self.tasks[id.index()].workload.working_set_bytes();
        let pin = self.tasks[id.index()].pin;
        match self.place_among_online(channels, ws, pin) {
            Some(to) => self.restage_displaced(id, to),
            None => {
                self.tasks[id.index()].park_retries += 1;
                let attempts = self.tasks[id.index()].park_retries;
                if attempts > cfg.max_park_retries {
                    let dev = self.tasks[id.index()].device.index();
                    let t = &mut self.tasks[id.index()];
                    t.displaced = false;
                    t.killed = true;
                    t.state = TaskState::Finished;
                    t.finished_at = Some(self.now);
                    self.stats.bump(StatKey::LostTasks);
                    self.devices[dev].stats.bump(StatKey::LostTasks);
                    trace_event!(
                        self.trace,
                        self.now,
                        labels::LOST,
                        "{id} no capacity after {attempts} park retries"
                    );
                } else {
                    let delay = cfg.backoff(attempts);
                    self.stats.bump(StatKey::FaultRetries);
                    trace_event!(
                        self.trace,
                        self.now,
                        labels::PARK,
                        "{id} still no fit; retry in {delay}"
                    );
                    self.schedule_park_retry(id, delay);
                }
            }
        }
    }

    /// Re-admits a displaced task on device `to`: fresh context and
    /// channels, working set staged from host memory (its device copy
    /// died with the removed device), and the target scheduler sees a
    /// normal admission.
    fn restage_displaced(&mut self, id: TaskId, to: usize) {
        let kinds = self.tasks[id.index()].workload.queues();
        let mut channels = std::mem::take(&mut self.tasks[id.index()].channels);
        channels.clear();
        let slot = &mut self.devices[to];
        let context = slot
            .gpu
            .create_context(id)
            // lint: allow(unchecked-unwrap) — place_among_online re-checked
            // target capacity immediately before
            .expect("restage target capacity was checked");
        for kind in kinds {
            let ch = slot
                .gpu
                .create_channel(context, kind)
                // lint: allow(unchecked-unwrap) — place_among_online
                // re-checked target capacity immediately before
                .expect("restage target capacity was checked");
            if slot.protected.len() <= ch.index() {
                slot.protected.resize(ch.index() + 1, false);
            }
            channels.push(ch);
        }
        let to_id = slot.id;
        let transfer = self
            .topology
            .staging_cost(to, self.tasks[id.index()].workload.working_set_bytes());
        {
            let task = &mut self.tasks[id.index()];
            task.live = true;
            task.displaced = false;
            task.state = TaskState::Ready;
            task.device = to_id;
            task.context = context;
            task.channels = channels;
            task.outstanding = 0;
            task.inflight_submit = None;
            task.transfer_stall += transfer;
            task.migration_until = if transfer.is_zero() {
                None
            } else {
                Some(self.now + transfer)
            };
            task.round_start = self.now + transfer;
        }
        self.transfer_stall += transfer;
        self.devices[to].transfer_stall += transfer;
        self.devices[to].live_tenants += 1;
        self.stats.bump(StatKey::RecoveredTasks);
        self.devices[to].stats.bump(StatKey::RecoveredTasks);
        self.trace.record_with(self.now, labels::RECOVER, || {
            if transfer.is_zero() {
                format!("{id} restaged on dev{to}")
            } else {
                format!("{id} restaged on dev{to} (staging {transfer})")
            }
        });
        self.dispatch_sched(to, |s, ctx| s.on_task_admitted(ctx, id));
        self.schedule_step(id, transfer);
    }

    /// Kills a live task: process terminated, device state reclaimed.
    /// The shared core of [`SchedCtx::kill_task`] and the fault paths;
    /// `label` names the killer in the trace. Returns `false` if the
    /// task was not live.
    fn kill_task_inner(&mut self, task: TaskId, label: &'static str) -> bool {
        if !self.tasks[task.index()].live {
            return false;
        }
        self.disarm_fault_flags(task);
        {
            let t = &mut self.tasks[task.index()];
            t.live = false;
            t.killed = true;
            t.state = TaskState::Finished;
            t.finished_at = Some(self.now);
            t.pending_submit = None;
            t.inflight_submit = None;
            if let Some(tok) = t.step_token.take() {
                self.queue.cancel(tok);
            }
        }
        let dev = self.tasks[task.index()].device.index();
        self.devices[dev].live_tenants -= 1;
        self.stats.bump(StatKey::Kills);
        self.devices[dev].stats.bump(StatKey::Kills);
        trace_event!(self.trace, self.now, label, "{task}");
        self.teardown_device_state(task);
        true
    }

    fn dispatch_sched<R>(
        &mut self,
        dev: usize,
        f: impl FnOnce(&mut dyn Scheduler, &mut SchedCtx<'_>) -> R,
    ) -> R {
        let mut sched = self.devices[dev]
            .sched
            .take()
            .unwrap_or_else(|| Box::new(NullScheduler));
        let mut ctx = SchedCtx { world: self, dev };
        let r = f(sched.as_mut(), &mut ctx);
        self.devices[dev].sched = Some(sched);
        r
    }

    /// Ground-truth usage of a task, summed across devices (a migrated
    /// task leaves usage behind on its former device).
    fn usage_of(&self, task: TaskId) -> SimDuration {
        self.devices.iter().map(|s| s.gpu.usage_of(task)).sum()
    }

    /// Builds the run report. Consumes the per-task metric vectors
    /// (`mem::take`) rather than deep-cloning them: `run()` is
    /// single-shot and the world is finished, so the report is the
    /// rightful owner of the data.
    fn report(&mut self, horizon: SimDuration) -> RunReport {
        let scheduler = self.devices[0]
            .sched
            .as_ref()
            .map(|s| s.name())
            .unwrap_or("unknown");
        let mut tasks = Vec::with_capacity(self.tasks.len());
        for i in 0..self.tasks.len() {
            // A task that never migrated has all its usage on its one
            // device — a single lookup. Only migrated tasks (rare) pay
            // the sum across every device they may have visited.
            let t = &self.tasks[i];
            let usage = if t.migrations == 0 {
                self.devices[t.device.index()].gpu.usage_of(t.id)
            } else {
                self.usage_of(t.id)
            };
            let t = &mut self.tasks[i];
            tasks.push(TaskReport {
                id: t.id,
                name: std::mem::take(&mut t.name),
                device: t.device,
                arrived_at: t.arrived_at,
                finished_at: t.finished_at,
                rounds: std::mem::take(&mut t.rounds),
                submitted_requests: t.submitted,
                completed_requests: t.completed,
                usage,
                faults: t.faults,
                killed: t.killed,
                migrations: t.migrations,
                transfer_stall: t.transfer_stall,
                submit_times: std::mem::take(&mut t.submit_times),
                service_times: std::mem::take(&mut t.service_times),
                service_kinds: std::mem::take(&mut t.service_kinds),
                rounds_hist: std::mem::take(&mut t.rounds_hist),
                service_hist: std::mem::take(&mut t.service_hist),
                interarrival_hist: std::mem::take(&mut t.interarrival_hist),
            });
        }
        // Fold the plain hot-path counters into the structured block;
        // the rarer keys were bumped live as their events happened.
        let mut stats = std::mem::take(&mut self.stats);
        stats.set(StatKey::Events, self.events);
        stats.set(StatKey::Faults, self.faults);
        stats.set(StatKey::Polls, self.polls);
        stats.set(StatKey::DirectSubmits, self.direct_submits);
        stats.set(StatKey::RejectedAdmissions, self.rejected_admissions);
        stats.set(StatKey::MigrationsIn, self.migrations);
        stats.set(StatKey::MigrationsOut, self.migrations);
        stats.set(StatKey::RebalanceAccepted, self.migrations);
        let (vetoed, cooled) = self.rebalance.decision_stats();
        stats.set(StatKey::RebalanceVetoed, vetoed);
        stats.set(StatKey::RebalanceCooledDown, cooled);
        // Degraded-capacity time: per device, total offline span — a
        // still-offline device is charged through the horizon.
        let end = SimTime::ZERO + horizon;
        let device_degraded: Vec<SimDuration> = self
            .devices
            .iter()
            .map(|s| {
                s.offline_total
                    + s.offline_since.map_or(SimDuration::ZERO, |since| {
                        end.saturating_duration_since(since)
                    })
            })
            .collect();
        let degraded: SimDuration = device_degraded.iter().copied().sum();
        RunReport {
            scheduler,
            wall: horizon,
            tasks,
            devices: self
                .devices
                .iter()
                .zip(device_degraded.iter())
                .map(|(s, &degraded)| DeviceReport {
                    device: s.id,
                    compute_busy: s.gpu.engine_busy(EngineClass::Compute),
                    dma_busy: s.gpu.engine_busy(EngineClass::Dma),
                    tenants: s.live_tenants,
                    rejected: s.stats.get(StatKey::RejectedAdmissions),
                    migrations_in: s.stats.get(StatKey::MigrationsIn),
                    migrations_out: s.stats.get(StatKey::MigrationsOut),
                    transfer_stall: s.transfer_stall,
                    degraded,
                    stats: s.stats.clone(),
                })
                .collect(),
            compute_busy: self
                .devices
                .iter()
                .map(|s| s.gpu.engine_busy(EngineClass::Compute))
                .sum(),
            dma_busy: self
                .devices
                .iter()
                .map(|s| s.gpu.engine_busy(EngineClass::Dma))
                .sum(),
            faults: self.faults,
            polls: self.polls,
            direct_submits: self.direct_submits,
            rejected_admissions: self.rejected_admissions,
            migrations: self.migrations,
            transfer_stall: self.transfer_stall,
            injected_faults: stats.get(StatKey::InjectedFaults),
            watchdog_kills: stats.get(StatKey::WatchdogKills),
            fault_retries: stats.get(StatKey::FaultRetries),
            recovered_tasks: stats.get(StatKey::RecoveredTasks),
            lost_tasks: stats.get(StatKey::LostTasks),
            hot_removes: stats.get(StatKey::HotRemoves),
            degraded,
            events: self.events,
            stats,
            groups: std::mem::take(&mut self.groups),
            timeline: std::mem::take(&mut self.timeline),
        }
    }
}

/// Controlled access to kernel-observable state, handed to the
/// scheduler on every callback.
///
/// Everything here corresponds to something the real NEON module can
/// do or see: flip page protection, read shared-memory reference
/// counters, park/wake faulting tasks, arm timers, and kill processes.
/// A context is scoped to **one device**: its scheduler sees and
/// controls only the tasks and channels living there.
pub struct SchedCtx<'a> {
    world: &'a mut World,
    dev: usize,
}

impl SchedCtx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// Policy parameters (per-device overrides applied).
    pub fn params(&self) -> &SchedParams {
        &self.world.devices[self.dev].params
    }

    /// Cost model.
    pub fn cost(&self) -> &CostModel {
        &self.world.config.cost
    }

    /// Live (admitted, not exited/killed) tasks on this device, in id
    /// order.
    ///
    /// Allocates a fresh `Vec` per call; policies invoked on every
    /// poll tick should reuse a scratch buffer through
    /// [`SchedCtx::live_tasks_into`] instead.
    pub fn live_tasks(&self) -> Vec<TaskId> {
        let mut out = Vec::new();
        self.live_tasks_into(&mut out);
        out
    }

    /// Fills `out` with the live tasks on this device, in id order —
    /// the allocation-free form of [`SchedCtx::live_tasks`] (the
    /// buffer is cleared first and its capacity reused).
    pub fn live_tasks_into(&self, out: &mut Vec<TaskId>) {
        let device = self.world.devices[self.dev].id;
        out.clear();
        out.extend(
            self.world
                .tasks
                .iter()
                .filter(|t| t.live && t.device == device)
                .map(|t| t.id),
        );
    }

    /// The task's channels.
    ///
    /// Clones the channel list; hot paths should index with
    /// [`SchedCtx::channel_count`] / [`SchedCtx::channel_of`] instead.
    pub fn channels_of(&self, task: TaskId) -> Vec<ChannelId> {
        self.world.tasks[task.index()].channels.clone()
    }

    /// Number of channels the task owns.
    pub fn channel_count(&self, task: TaskId) -> usize {
        self.world.tasks[task.index()].channels.len()
    }

    /// The task's `i`-th channel — with [`SchedCtx::channel_count`],
    /// the allocation-free way to walk a task's channels while still
    /// holding `&mut` access to the context.
    pub fn channel_of(&self, task: TaskId, i: usize) -> ChannelId {
        self.world.tasks[task.index()].channels[i]
    }

    fn gpu(&self) -> &Gpu {
        &self.world.devices[self.dev].gpu
    }

    fn task_gpu(&self, task: TaskId) -> &Gpu {
        &self.world.devices[self.world.tasks[task.index()].device.index()].gpu
    }

    /// Reads a channel's shared-memory counters:
    /// `(last_submitted_reference, completed_reference)`.
    pub fn channel_refs(&self, ch: ChannelId) -> (u64, u64) {
        // lint: allow(unchecked-unwrap) — harness accessors are handed
        // channel ids from the device's own allocation
        let c = self.gpu().channel(ch).expect("unknown channel");
        (c.last_submitted_reference(), c.completed_reference())
    }

    /// Completion count on a channel (monotonic).
    pub fn channel_completions(&self, ch: ChannelId) -> u64 {
        self.gpu()
            .channel(ch)
            // lint: allow(unchecked-unwrap) — harness accessors are handed
            // channel ids from the device's own allocation
            .expect("unknown channel")
            .completions()
    }

    /// `true` if all of the task's submitted requests have completed
    /// and none is running (reference-counter drain check).
    pub fn task_drained(&self, task: TaskId) -> bool {
        self.task_gpu(task).task_drained(task)
    }

    /// `true` if this whole device is quiesced (barrier drain check).
    pub fn gpu_fully_drained(&self) -> bool {
        self.gpu().is_fully_drained()
    }

    /// `true` if the task has a faulted submission waiting for a wake.
    pub fn is_parked(&self, task: TaskId) -> bool {
        let t = &self.world.tasks[task.index()];
        t.live && t.state == TaskState::Parked
    }

    /// `true` if the task has any request submitted to the device that
    /// has not completed (visible to the kernel via shared structures).
    pub fn has_outstanding(&self, task: TaskId) -> bool {
        let gpu = self.task_gpu(task);
        self.world.tasks[task.index()].channels.iter().any(|&ch| {
            // lint: allow(unchecked-unwrap) — task channel tables only hold
            // ids from the device's own allocation
            let c = gpu.channel(ch).expect("unknown channel");
            c.last_submitted_reference() != c.completed_reference()
        })
    }

    /// Tasks whose currently running request on this device has
    /// exceeded `limit` (inferred from reference-counter stagnation).
    ///
    /// At most one request runs per engine class, so the result is a
    /// fixed array rather than a heap allocation — iterate it with
    /// `.into_iter().flatten()`. This runs on every poll tick.
    pub fn overlong_tasks(&self, limit: SimDuration) -> [Option<TaskId>; EngineClass::ALL.len()] {
        let mut out = [None; EngineClass::ALL.len()];
        let mut n = 0;
        for class in EngineClass::ALL {
            if let Some(run) = self.gpu().running(class) {
                if self.world.now.saturating_duration_since(run.started_at) > limit {
                    let t = run.request.task;
                    if self.world.tasks[t.index()].live && !out.contains(&Some(t)) {
                        out[n] = Some(t);
                        n += 1;
                    }
                }
            }
        }
        out
    }

    /// Protects a channel's register page (submissions will fault).
    pub fn protect_channel(&mut self, ch: ChannelId) {
        self.world.devices[self.dev].protected[ch.index()] = true;
    }

    /// Unprotects a channel's register page (direct access restored).
    pub fn unprotect_channel(&mut self, ch: ChannelId) {
        self.world.devices[self.dev].protected[ch.index()] = false;
    }

    /// Protects every channel of a task.
    pub fn protect_task(&mut self, task: TaskId) {
        self.set_task_protection(task, true);
    }

    /// Unprotects every channel of a task.
    pub fn unprotect_task(&mut self, task: TaskId) {
        self.set_task_protection(task, false);
    }

    fn set_task_protection(&mut self, task: TaskId, protected: bool) {
        for i in 0..self.world.tasks[task.index()].channels.len() {
            let ch = self.world.tasks[task.index()].channels[i];
            self.world.devices[self.dev].protected[ch.index()] = protected;
        }
    }

    /// Protects every channel of every live task on this device (a
    /// barrier).
    pub fn protect_all(&mut self) {
        let device = self.world.devices[self.dev].id;
        for i in 0..self.world.tasks.len() {
            let t = &self.world.tasks[i];
            if t.live && t.device == device {
                let id = t.id;
                self.set_task_protection(id, true);
            }
        }
    }

    /// Wakes a parked task: its pending submission is retried (and will
    /// fault again if the page is still protected).
    pub fn wake_task(&mut self, task: TaskId) {
        if self.is_parked(task) {
            self.world.schedule_step(task, SimDuration::ZERO);
        }
    }

    /// Arms a policy timer; `tag` is returned to
    /// [`Scheduler::on_timer`]. Returns a token for
    /// [`SchedCtx::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> u64 {
        let device = self.world.devices[self.dev].id;
        self.world
            .queue
            .schedule(self.world.now + delay, Event::SchedTimer(device, tag))
    }

    /// Cancels a pending policy timer.
    pub fn cancel_timer(&mut self, token: u64) {
        self.world.queue.cancel(token);
    }

    /// Kills a task: the process is terminated and the driver's exit
    /// protocol reclaims its device state (§3.1 "From model to
    /// prototype").
    pub fn kill_task(&mut self, task: TaskId) {
        self.world.kill_task_inner(task, labels::KILL);
    }

    /// Suspends a task's device access using hardware preemption
    /// (§6.2): any request of the task running on an engine is
    /// preempted (remainder requeued) and the task's channels are
    /// masked off from arbitration until
    /// [`SchedCtx::resume_task_channels`]. Pending submissions are not
    /// affected — protection handles those.
    pub fn suspend_task_channels(&mut self, task: TaskId) {
        let dev = self.world.tasks[task.index()].device.index();
        for class in EngineClass::ALL {
            let running_here = self.world.devices[dev]
                .gpu
                .running(class)
                .is_some_and(|r| r.request.task == task);
            if running_here {
                if let Some(tok) = self.world.devices[dev].engine_tokens[class as usize].take() {
                    self.world.queue.cancel(tok);
                }
                self.world.devices[dev]
                    .gpu
                    .preempt_running(self.world.now, class);
            }
        }
        for i in 0..self.world.tasks[task.index()].channels.len() {
            let ch = self.world.tasks[task.index()].channels[i];
            self.world.devices[dev].gpu.set_channel_enabled(ch, false);
        }
        self.world.stats.bump(StatKey::Preemptions);
        self.world.devices[dev].stats.bump(StatKey::Preemptions);
        trace_event!(self.world.trace, self.world.now, labels::PREEMPT, "{task}");
        self.world.pump_engines(dev);
    }

    /// Unmasks a suspended task's channels (see
    /// [`SchedCtx::suspend_task_channels`]); queued remainders become
    /// dispatchable again.
    pub fn resume_task_channels(&mut self, task: TaskId) {
        let dev = self.world.tasks[task.index()].device.index();
        for i in 0..self.world.tasks[task.index()].channels.len() {
            let ch = self.world.tasks[task.index()].channels[i];
            self.world.devices[dev].gpu.set_channel_enabled(ch, true);
        }
        self.world.pump_engines(dev);
    }

    /// Cumulative per-task resource usage on this task's device as a
    /// *vendor-provided hardware statistic* (§6.1 future work: "the
    /// hardware can facilitate OS accounting by including resource
    /// usage information in each completion event"). Prototype-faithful
    /// policies must not call this; the vendor-statistics variant of
    /// Disengaged Fair Queueing does.
    pub fn vendor_usage(&self, task: TaskId) -> SimDuration {
        self.task_gpu(task).usage_of(task)
    }

    /// Task name, for trace messages.
    pub fn task_name(&self, task: TaskId) -> &str {
        &self.world.tasks[task.index()].name
    }

    /// Counts a policy-level event in the structured run statistics —
    /// both the run-wide [`RunReport::stats`] block and this device's
    /// [`DeviceReport::stats`]. Policies use this for the occurrences
    /// only they can see (e.g. [`StatKey::Denials`] when Disengaged
    /// Fair Queueing revokes a free run, or the sampling-window
    /// open/close pair).
    pub fn note(&mut self, key: StatKey) {
        self.world.stats.bump(key);
        self.world.devices[self.dev].stats.bump(key);
    }

    /// Records a trace entry under the policy's label. On multi-device
    /// worlds the entry is prefixed with the device id so interleaved
    /// policy logs stay readable.
    ///
    /// The detail string is built by the caller even when tracing is
    /// off; policies on hot paths should use [`SchedCtx::trace_with`].
    pub fn trace(&mut self, label: &'static str, detail: String) {
        self.trace_with(label, move || detail);
    }

    /// Like [`SchedCtx::trace`], but the detail string is built only
    /// when tracing is enabled — zero-cost on disabled (benchmark and
    /// sweep) runs.
    pub fn trace_with(&mut self, label: &'static str, detail: impl FnOnce() -> String) {
        if !self.world.trace.is_enabled() {
            return;
        }
        let detail = detail();
        let detail = if self.world.multi() {
            format!("{}: {detail}", self.world.devices[self.dev].id)
        } else {
            detail
        };
        self.world.trace.record(self.world.now, label, detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementKind;
    use crate::sched::{DirectAccess, SchedulerKind};
    use crate::workload::FixedLoop;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn direct_world() -> World {
        World::new(WorldConfig::default(), Box::new(DirectAccess::new()))
    }

    fn multi_world(devices: usize, placement: PlacementKind) -> World {
        multi_world_config(
            WorldConfig {
                devices: vec![GpuConfig::default(); devices],
                ..WorldConfig::default()
            },
            placement,
        )
    }

    fn multi_world_config(config: WorldConfig, placement: PlacementKind) -> World {
        World::with_devices(config, placement.build(), |_| Box::new(DirectAccess::new()))
    }

    #[test]
    fn single_task_completes_rounds() {
        let mut world = direct_world();
        world
            .add_task(Box::new(FixedLoop::endless("loop", us(100), us(10))))
            .unwrap();
        let report = world.run(SimDuration::from_millis(50));
        let t = &report.tasks[0];
        assert!(t.rounds_completed() > 300, "got {}", t.rounds_completed());
        // Round = 4µs switch skipped after first + 100µs service + ~10µs gap.
        let mean = t.mean_round(0.1).unwrap();
        assert!(
            mean >= us(105) && mean <= us(125),
            "mean round {mean} out of expected band"
        );
        assert_eq!(report.faults, 0, "direct access must not fault");
        assert!(report.direct_submits > 0);
    }

    #[test]
    fn finite_workload_exits_cleanly() {
        let mut world = direct_world();
        world
            .add_task(Box::new(FixedLoop::new("fin", us(10), us(1), 25)))
            .unwrap();
        let report = world.run(SimDuration::from_millis(20));
        assert_eq!(report.tasks[0].rounds_completed(), 25);
        assert_eq!(report.tasks[0].completed_requests, 25);
        assert!(!report.tasks[0].killed);
    }

    #[test]
    fn two_tasks_share_under_direct_access_by_request_size() {
        let mut world = direct_world();
        world
            .add_task(Box::new(FixedLoop::endless(
                "small",
                us(10),
                SimDuration::ZERO,
            )))
            .unwrap();
        world
            .add_task(Box::new(FixedLoop::endless(
                "large",
                us(1000),
                SimDuration::ZERO,
            )))
            .unwrap();
        let report = world.run(SimDuration::from_millis(200));
        let small = &report.tasks[0];
        let large = &report.tasks[1];
        // Round-robin by request: the large-request task hogs the device.
        let ratio = large.usage.ratio(small.usage);
        assert!(ratio > 10.0, "expected large to dominate, ratio {ratio:.1}");
    }

    #[test]
    fn usage_accounting_sums_to_busy() {
        let mut world = direct_world();
        world
            .add_task(Box::new(FixedLoop::endless("a", us(50), us(5))))
            .unwrap();
        world
            .add_task(Box::new(FixedLoop::endless("b", us(80), us(5))))
            .unwrap();
        let report = world.run(SimDuration::from_millis(100));
        let sum = report.tasks[0].usage + report.tasks[1].usage;
        // In-flight work at the horizon is not yet charged, so the sum
        // may lag busy by at most one request + switch.
        let slack = report.compute_busy.saturating_sub(sum);
        assert!(
            slack <= us(90),
            "usage sum {sum} vs busy {} (slack {slack})",
            report.compute_busy
        );
    }

    #[test]
    fn record_requests_captures_log() {
        let mut world = World::new(
            WorldConfig {
                record_requests: true,
                ..WorldConfig::default()
            },
            Box::new(DirectAccess::new()),
        );
        world
            .add_task(Box::new(FixedLoop::endless("logme", us(20), us(2))))
            .unwrap();
        let report = world.run(SimDuration::from_millis(10));
        let t = &report.tasks[0];
        assert!(!t.submit_times.is_empty());
        assert_eq!(t.service_times.len() as u64, t.completed_requests);
        assert!(t.submit_times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn midrun_arrival_joins_and_completes_rounds() {
        let mut world = direct_world();
        world
            .add_task(Box::new(FixedLoop::endless("resident", us(100), us(10))))
            .unwrap();
        let at = SimTime::ZERO + SimDuration::from_millis(20);
        world.spawn_task_at(
            at,
            Box::new(FixedLoop::endless("latecomer", us(100), us(10))),
        );
        let report = world.run(SimDuration::from_millis(50));
        assert_eq!(report.tasks.len(), 2);
        let late = &report.tasks[1];
        assert_eq!(late.arrived_at, at);
        assert!(late.rounds_completed() > 50, "latecomer made no progress");
        // The resident saw roughly 20ms alone plus 30ms shared.
        assert!(report.tasks[0].rounds_completed() > late.rounds_completed());
    }

    #[test]
    fn scheduled_departure_retires_the_task_midrun() {
        let mut world = direct_world();
        world
            .add_task(Box::new(FixedLoop::endless("stayer", us(100), us(10))))
            .unwrap();
        world.spawn_task_for(
            SimTime::ZERO + SimDuration::from_millis(5),
            Box::new(FixedLoop::endless("visitor", us(100), us(10))),
            SimDuration::from_millis(10),
        );
        let report = world.run(SimDuration::from_millis(50));
        let visitor = &report.tasks[1];
        let expected_exit = SimTime::ZERO + SimDuration::from_millis(15);
        assert_eq!(visitor.finished_at, Some(expected_exit));
        assert!(!visitor.killed, "departure is graceful, not a kill");
        assert!(visitor.rounds_completed() > 0);
        // The stayer keeps running after the visitor leaves.
        assert!(report.tasks[0].rounds_completed() > 300);
    }

    #[test]
    fn exhausted_device_rejects_arrivals_without_panicking() {
        let config = WorldConfig {
            gpu: neon_gpu::GpuConfig {
                total_contexts: 2,
                ..neon_gpu::GpuConfig::default()
            },
            ..WorldConfig::default()
        };
        let mut world = World::new(config, Box::new(DirectAccess::new()));
        for i in 0..2 {
            world
                .add_task(Box::new(FixedLoop::endless(format!("t{i}"), us(50), us(5))))
                .unwrap();
        }
        for i in 0..3 {
            world.spawn_task_at(
                SimTime::ZERO + SimDuration::from_millis(i),
                Box::new(FixedLoop::endless(format!("late{i}"), us(50), us(5))),
            );
        }
        let report = world.run(SimDuration::from_millis(20));
        assert_eq!(report.rejected_admissions, 3);
        assert_eq!(report.tasks.len(), 2);
        assert_eq!(report.devices[0].rejected, 3, "refusals charged per device");
    }

    #[test]
    fn partial_channel_allocation_failure_leaks_nothing() {
        use crate::workload::{TaskAction, Workload};
        use neon_gpu::RequestKind;

        // A workload needing two channels (compute + DMA).
        #[derive(Debug, Clone)]
        struct TwoQueue;
        impl Workload for TwoQueue {
            fn name(&self) -> &str {
                "two-queue"
            }
            fn queues(&self) -> Vec<RequestKind> {
                vec![RequestKind::Compute, RequestKind::Dma]
            }
            fn next_action(&mut self, _rng: &mut neon_sim::DetRng) -> TaskAction {
                TaskAction::CpuWork(SimDuration::from_micros(10))
            }
            fn box_clone(&self) -> crate::workload::BoxedWorkload {
                Box::new(self.clone())
            }
        }

        let config = WorldConfig {
            gpu: neon_gpu::GpuConfig {
                total_channels: 2,
                ..neon_gpu::GpuConfig::default()
            },
            ..WorldConfig::default()
        };
        let mut world = World::new(config, Box::new(DirectAccess::new()));
        world
            .add_task(Box::new(FixedLoop::endless("resident", us(50), us(5))))
            .unwrap();
        // Needs 2 channels, only 1 remains: the first create_channel
        // succeeds, the second fails — context and channel must both
        // be reclaimed, not leaked.
        world.spawn_task_at(
            SimTime::ZERO + SimDuration::from_millis(1),
            Box::new(TwoQueue),
        );
        // A later single-channel arrival must still fit.
        world.spawn_task_at(
            SimTime::ZERO + SimDuration::from_millis(2),
            Box::new(FixedLoop::endless("late", us(50), us(5))),
        );
        let report = world.run(SimDuration::from_millis(20));
        assert_eq!(report.rejected_admissions, 1);
        assert_eq!(
            report.tasks.len(),
            2,
            "the 1-channel arrival must be admitted"
        );
        assert!(report.tasks[1].rounds_completed() > 0);
    }

    #[test]
    fn departure_frees_room_for_later_arrivals() {
        let config = WorldConfig {
            gpu: neon_gpu::GpuConfig {
                total_contexts: 1,
                ..neon_gpu::GpuConfig::default()
            },
            ..WorldConfig::default()
        };
        let mut world = World::new(config, Box::new(DirectAccess::new()));
        world.spawn_task_for(
            SimTime::ZERO,
            Box::new(FixedLoop::endless("first", us(50), us(5))),
            SimDuration::from_millis(5),
        );
        // Arrives after the first departs: must be admitted.
        world.spawn_task_at(
            SimTime::ZERO + SimDuration::from_millis(10),
            Box::new(FixedLoop::endless("second", us(50), us(5))),
        );
        let report = world.run(SimDuration::from_millis(30));
        assert_eq!(report.rejected_admissions, 0);
        assert_eq!(report.tasks.len(), 2);
        assert!(report.tasks[1].rounds_completed() > 0);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let run = |seed: u64| {
            let mut world = World::new(
                WorldConfig {
                    seed,
                    ..WorldConfig::default()
                },
                Box::new(DirectAccess::new()),
            );
            world
                .add_task(Box::new(FixedLoop::endless("a", us(33), us(3))))
                .unwrap();
            world
                .add_task(Box::new(FixedLoop::endless("b", us(77), us(7))))
                .unwrap();
            let r = world.run(SimDuration::from_millis(50));
            (
                r.tasks[0].rounds.clone(),
                r.tasks[1].rounds.clone(),
                r.compute_busy,
            )
        };
        assert_eq!(run(42), run(42));
    }

    // ------------------------------------------------------------------
    // Multi-device
    // ------------------------------------------------------------------

    #[test]
    fn least_loaded_spreads_tasks_across_devices() {
        let mut world = multi_world(2, PlacementKind::LeastLoaded);
        for i in 0..4 {
            world
                .add_task(Box::new(FixedLoop::endless(format!("t{i}"), us(80), us(5))))
                .unwrap();
        }
        let report = world.run(SimDuration::from_millis(40));
        let on_dev0 = report.tasks.iter().filter(|t| t.device.raw() == 0).count();
        assert_eq!(on_dev0, 2, "4 tasks over 2 idle devices split evenly");
        for d in &report.devices {
            assert_eq!(d.tenants, 2);
            assert!(d.compute_busy > SimDuration::ZERO, "{} idle", d.device);
        }
        // Two devices run concurrently: total busy exceeds the wall.
        assert!(report.compute_busy > SimDuration::from_millis(40));
    }

    #[test]
    fn pinned_tasks_reject_on_their_device_even_with_room_elsewhere() {
        let config = WorldConfig {
            devices: vec![
                neon_gpu::GpuConfig {
                    total_contexts: 1,
                    ..neon_gpu::GpuConfig::default()
                },
                neon_gpu::GpuConfig::default(),
            ],
            ..WorldConfig::default()
        };
        let mut world = multi_world_config(config, PlacementKind::LeastLoaded);
        world
            .add_task_pinned(
                Box::new(FixedLoop::endless("pin0", us(50), us(5))),
                DeviceId::new(0),
            )
            .unwrap();
        // Device 0 is now full; a second pinned task must be refused.
        let err = world
            .add_task_pinned(
                Box::new(FixedLoop::endless("pin1", us(50), us(5))),
                DeviceId::new(0),
            )
            .unwrap_err();
        assert_eq!(err, GpuError::OutOfContexts);
        // The policy still finds room on device 1 for unpinned work.
        world
            .add_task(Box::new(FixedLoop::endless("free", us(50), us(5))))
            .unwrap();
        let report = world.run(SimDuration::from_millis(10));
        assert_eq!(report.devices[0].rejected, 1);
        assert_eq!(report.tasks[1].device, DeviceId::new(1));
    }

    #[test]
    fn rebalance_migrates_after_departure_imbalance() {
        let config = WorldConfig {
            devices: vec![GpuConfig::default(); 2],
            rebalance: RebalanceKind::CountDiff,
            ..WorldConfig::default()
        };
        let mut world = multi_world_config(config, PlacementKind::RoundRobin);
        // Round-robin: tasks 0/2 on dev0, tasks 1/3 on dev1.
        for i in 0..4 {
            world
                .add_task(Box::new(FixedLoop::endless(format!("t{i}"), us(60), us(5))))
                .unwrap();
        }
        // Both dev1 tenants depart mid-run: dev0 has 2, dev1 has 0 — a
        // departure-induced imbalance of 2, so one task must migrate.
        world.depart_task_at(SimTime::ZERO + SimDuration::from_millis(5), TaskId::new(1));
        world.depart_task_at(SimTime::ZERO + SimDuration::from_millis(6), TaskId::new(3));
        let report = world.run(SimDuration::from_millis(30));
        assert_eq!(report.migrations, 1, "one task moves to the empty device");
        let migrated = report.tasks.iter().find(|t| t.migrations > 0).unwrap();
        assert_eq!(migrated.device, DeviceId::new(1));
        assert!(
            migrated.rounds_completed() > 100,
            "migrated task must keep making progress ({} rounds)",
            migrated.rounds_completed()
        );
        for d in &report.devices {
            assert_eq!(d.tenants, 1, "{}: populations rebalanced", d.device);
        }
    }

    #[test]
    fn multi_device_worlds_are_deterministic() {
        let run = || {
            let mut world = multi_world(3, PlacementKind::FewestTenants);
            for i in 0..6 {
                world
                    .add_task(Box::new(FixedLoop::endless(format!("t{i}"), us(40), us(4))))
                    .unwrap();
            }
            world.spawn_task_for(
                SimTime::ZERO + SimDuration::from_millis(3),
                Box::new(FixedLoop::endless("visitor", us(200), us(0))),
                SimDuration::from_millis(10),
            );
            let r = world.run(SimDuration::from_millis(25));
            (
                r.compute_busy,
                r.tasks.iter().map(|t| t.rounds.clone()).collect::<Vec<_>>(),
                r.tasks.iter().map(|t| t.device).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn per_device_schedulers_are_independent() {
        // DFQ on a 2-device world: each device's scheduler only ever
        // sees its own tenants, and both keep their tasks progressing.
        let config = WorldConfig {
            devices: vec![GpuConfig::default(); 2],
            ..WorldConfig::default()
        };
        let mut world = World::with_devices(config, PlacementKind::RoundRobin.build(), |_| {
            SchedulerKind::DisengagedFairQueueing.build(SchedParams::default())
        });
        for i in 0..4 {
            world
                .add_task(Box::new(FixedLoop::endless(
                    format!("t{i}"),
                    us(if i % 2 == 0 { 50 } else { 400 }),
                    us(0),
                )))
                .unwrap();
        }
        let report = world.run(SimDuration::from_millis(200));
        for t in &report.tasks {
            assert!(t.rounds_completed() > 50, "{} starved", t.name);
        }
        // Each device hosts one small + one large task.
        for d in 0..2u32 {
            let tenants: Vec<_> = report
                .tasks
                .iter()
                .filter(|t| t.device.raw() == d)
                .collect();
            assert_eq!(tenants.len(), 2);
        }
    }
}
