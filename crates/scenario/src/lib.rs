//! # neon-scenario
//!
//! The dynamic-churn scenario engine: declarative experiment specs, a
//! driver that injects and retires tasks *mid-run*, and a
//! multi-threaded sweep runner.
//!
//! The paper argues disengaged scheduling matters precisely in shared
//! deployments where processes come and go; the original harnesses in
//! `neon-experiments` run static closed-loop mixes only. This crate
//! makes the experiment configuration itself a first-class artifact:
//!
//! - [`spec`] — [`ScenarioSpec`]: tenant groups with workload models,
//!   arrival processes (all-at-start, staggered, explicit instants,
//!   open-loop Poisson), lifetime models (forever, fixed,
//!   exponential), optional per-group device pinning, working-set
//!   sizes and scheduler-parameter overrides, the host topology
//!   (heterogeneous `[[device]]` slots with NUMA/switch coordinates
//!   plus `topology.*` interconnect timing), and the sweep axes
//!   (seeds × schedulers × placement policies × rebalance policies).
//!   Build programmatically or load from TOML ([`toml_file`]).
//! - [`driver`] — [`run_cell`]: expands one (scenario, scheduler,
//!   seed) cell onto a [`neon_core::world::World`], using the world's
//!   dynamic admission (`spawn_task_at` / `spawn_task_for`) so
//!   arrivals contend for device resources at the instant they show
//!   up — and may be rejected, §6.3-style. Produces a [`CellSummary`].
//! - [`sweep`] — [`sweep::plan`] / [`sweep::run_parallel`]: fans the
//!   cell matrix out over scoped OS threads, one deterministic
//!   `World` per cell, with results in plan order and bit-identical
//!   to a serial run.
//! - [`emit`] — JSON, CSV and table rendering of sweep outcomes.
//!
//! The `neon` binary (`cargo run --bin neon -- run <scenario.toml>`)
//! drives all of this from the command line; example scenarios live
//! in `examples/scenarios/`.
//!
//! # Example
//!
//! ```
//! use neon_core::sched::SchedulerKind;
//! use neon_scenario::{
//!     ArrivalSpec, LifetimeSpec, ScenarioSpec, TenantGroup, WorkloadSpec, sweep,
//! };
//! use neon_sim::SimDuration;
//!
//! // Two residents plus Poisson-arriving tenants that stay ~20 ms.
//! let spec = ScenarioSpec::new("churn", SimDuration::from_millis(80))
//!     .seeds(vec![1, 2])
//!     .schedulers(vec![SchedulerKind::Direct, SchedulerKind::DisengagedFairQueueing])
//!     .group(TenantGroup::new(
//!         "resident",
//!         WorkloadSpec::FixedLoop {
//!             service: SimDuration::from_micros(80),
//!             gap: SimDuration::from_micros(5),
//!             rounds: None,
//!         },
//!     ).count(2))
//!     .group(
//!         TenantGroup::new(
//!             "tenant",
//!             WorkloadSpec::Throttle {
//!                 request: SimDuration::from_micros(400),
//!                 off_ratio: 0.0,
//!                 jitter: 0.0,
//!             },
//!         )
//!         .count(3)
//!         .arrival(ArrivalSpec::Poisson { rate_hz: 100.0, start: SimDuration::ZERO })
//!         .lifetime(LifetimeSpec::Fixed(SimDuration::from_millis(20))),
//!     );
//! spec.validate()?;
//!
//! let cells = sweep::plan([spec]);
//! assert_eq!(cells.len(), 4); // 2 schedulers × 2 seeds
//! let outcome = sweep::run_parallel(&cells, None);
//! assert!(outcome.results.iter().all(|r| r.summary.total_rounds > 0));
//! # Ok::<(), neon_scenario::SpecError>(())
//! ```

pub mod driver;
pub mod emit;
pub mod spec;
pub mod sweep;
pub mod toml;

pub use driver::{current_rss_bytes, run_cell, CellResult, CellRunner, CellSummary, HostSummary};
pub use spec::{
    ArrivalSpec, CustomScheduler, LifetimeSpec, ScenarioSpec, SpecError, TenantGroup, WorkloadSpec,
};
pub use sweep::{SweepCell, SweepOutcome};
pub use toml::{from_file as toml_file, from_toml, parse_duration};
