//! Minimal TOML loader for scenario files.
//!
//! The build environment has no crates.io access, so scenarios are
//! parsed by a small built-in reader covering the subset the files
//! use (documented in the crate docs and the `examples/scenarios/`
//! files):
//!
//! - `key = value` pairs with string, integer, float, boolean and
//!   flat-array values; dotted keys (`params.timeslice = "20ms"`) are
//!   stored flat under their dotted name;
//! - `[[group]]` array-of-tables headers (each opens one tenant
//!   group; subsequent keys belong to it) and `[[device]]` headers
//!   (each opens one heterogeneous device slot: `channels`,
//!   `contexts`, `ring`, `context_switch`, `graphics_cooldown`, plus
//!   the `numa`/`switch` interconnect coordinate);
//! - `#` comments and blank lines.
//!
//! Durations are written as strings with a unit suffix: `"134ns"`,
//! `"430us"`, `"30ms"`, `"2s"`. Scheduler axes accept `"all"`,
//! `"paper"`, or an array of policy labels (`"disengaged-fq"`, …);
//! placement axes accept `"all"` or labels (`"least-loaded"`,
//! `"round-robin"`, `"fewest-tenants"`, `"pinned:<device>"`).
//! The `rebalance` key is an axis too: `"all"`, a label (`"off"`,
//! `"count-diff"`, `"cost-aware"` — `"cost"` for short), or an array
//! of labels; the legacy booleans still parse (`true` →
//! `"count-diff"`, `false` → `"off"`).
//!
//! Telemetry: `metrics = "exact"` (default) or `"streaming"` selects
//! the metrics pipeline, and `sample_every = "<duration>"` switches
//! on the periodic device-timeline sampler (off when the key is
//! absent, keeping default runs byte-identical).
//!
//! # Topology
//!
//! `topology.interconnect = "pcie-gen3"` (or `"free"`, the default)
//! selects the interconnect timing; individual
//! `topology.<tier>_gbps`/`topology.<tier>_latency` keys override a
//! tier's bandwidth (GB/s) or setup latency. Groups may set
//! `working_set = "64MB"` (sizes take B/KB/MB/GB suffixes, powers of
//! 1024) — the state charged against the interconnect when the group's
//! members are placed or migrated.
//!
//! # Fleet
//!
//! `hosts = N` runs each cell as a fleet of `N` identical hosts (each
//! with `devices` devices); `[[host]]` blocks (`devices = M`) size
//! heterogeneous hosts instead. `fleet_placement` is a sweep axis
//! (`"all"` or labels `"least-loaded"`, `"round-robin"`,
//! `"fewest-tenants"`); `fleet_rebalance` is a single label (`"off"`,
//! `"count-diff"`); `cluster.network = "25g"` (or `cluster.latency` /
//! `cluster.gbps` overrides) prices cross-host migration — free when
//! absent.
//!
//! # Overrides
//!
//! `params.<field>` keys override [`SchedParams`] — at top level for
//! every device, inside a `[[group]]` for the device the group is
//! pinned to (`device = <index>` required; validation rejects unpinned
//! group overrides instead of silently ignoring them). `cost.<field>`
//! keys override the [`CostModel`] at top level only: the cost model
//! describes the simulated host, so a per-group form does not exist
//! and is rejected with an error naming the offending key.

use std::collections::BTreeMap;

use neon_core::cost::{CostModel, SchedParams};
use neon_core::fault::{FaultConfig, FaultEvent, FaultKind, FaultMode};
use neon_core::fleet::{FleetPlacementKind, FleetRebalanceKind};
use neon_core::placement::PlacementKind;
use neon_core::rebalance::RebalanceKind;
use neon_core::sched::SchedulerKind;
use neon_core::telemetry::MetricsMode;
use neon_gpu::{
    ClusterInterconnect, DeviceId, DeviceSlotSpec, GpuConfig, InterconnectParams, TaskId,
};
use neon_sim::SimDuration;

use crate::spec::{ArrivalSpec, LifetimeSpec, ScenarioSpec, SpecError, TenantGroup, WorkloadSpec};

/// A scalar or flat-array TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A flat array of scalars.
    Array(Vec<Value>),
}

type Table = BTreeMap<String, Value>;

/// `(root, group_tables, device_tables, host_tables, fault_tables)` as
/// parsed from a scenario document, in source order.
type Document = (Table, Vec<Table>, Vec<Table>, Vec<Table>, Vec<Table>);

fn parse_err(line_no: usize, msg: impl Into<String>) -> SpecError {
    SpecError(format!("line {}: {}", line_no, msg.into()))
}

/// Parses the supported TOML subset into a root table plus the
/// ordered `[[group]]`, `[[device]]` and `[[host]]` tables.
fn parse_document(text: &str) -> Result<Document, SpecError> {
    /// Which table subsequent `key = value` lines belong to.
    enum Section {
        Root,
        Group,
        Device,
        Host,
        Fault,
    }
    let mut root = Table::new();
    let mut groups: Vec<Table> = Vec::new();
    let mut devices: Vec<Table> = Vec::new();
    let mut hosts: Vec<Table> = Vec::new();
    let mut faults: Vec<Table> = Vec::new();
    let mut section = Section::Root;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            match header.trim() {
                "group" => {
                    groups.push(Table::new());
                    section = Section::Group;
                }
                "device" => {
                    devices.push(Table::new());
                    section = Section::Device;
                }
                "host" => {
                    hosts.push(Table::new());
                    section = Section::Host;
                }
                "fault" => {
                    faults.push(Table::new());
                    section = Section::Fault;
                }
                other => {
                    return Err(parse_err(
                        line_no,
                        format!(
                            "unsupported table array [[{other}]]; only [[group]], \
                             [[device]], [[host]] and [[fault]]"
                        ),
                    ));
                }
            }
            continue;
        }
        if line.starts_with('[') {
            return Err(parse_err(
                line_no,
                "plain [table] headers are not supported; use top-level keys, \
                 [[group]], [[device]] or [[host]]",
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(parse_err(
                line_no,
                format!("expected key = value, got {line:?}"),
            ));
        };
        let key = key.trim().to_string();
        if key.is_empty()
            || key.starts_with('.')
            || key.ends_with('.')
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
        {
            return Err(parse_err(line_no, format!("bad key {key:?}")));
        }
        let value = parse_value(value.trim(), line_no)?;
        let table = match section {
            Section::Root => &mut root,
            // lint: allow(unchecked-unwrap) — Section::Group is only entered
            // after pushing the matching group record
            Section::Group => groups.last_mut().expect("group section implies a group"),
            // lint: allow(unchecked-unwrap) — Section::Device is only entered
            // after pushing the matching device record
            Section::Device => devices.last_mut().expect("device section implies a device"),
            // lint: allow(unchecked-unwrap) — Section::Host is only entered
            // after pushing the matching host record
            Section::Host => hosts.last_mut().expect("host section implies a host"),
            // lint: allow(unchecked-unwrap) — Section::Fault is only entered
            // after pushing the matching fault record
            Section::Fault => faults.last_mut().expect("fault section implies a fault"),
        };
        if table.insert(key.clone(), value).is_some() {
            return Err(parse_err(line_no, format!("duplicate key {key:?}")));
        }
    }
    Ok((root, groups, devices, hosts, faults))
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(s: &str, line_no: usize) -> Result<Value, SpecError> {
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| parse_err(line_no, "unterminated array"))?;
        let mut items = Vec::new();
        for part in split_array_items(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_value(part, line_no)?);
        }
        return Ok(Value::Array(items));
    }
    if let Some(body) = s.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| parse_err(line_no, "unterminated string"))?;
        if body.contains('"') {
            return Err(parse_err(line_no, "embedded quotes are not supported"));
        }
        return Ok(Value::Str(body.to_string()));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let cleaned = s.replace('_', "");
    if let Some(hex) = cleaned.strip_prefix("0x") {
        if let Ok(v) = i64::from_str_radix(hex, 16) {
            return Ok(Value::Int(v));
        }
    }
    if let Ok(v) = cleaned.parse::<i64>() {
        return Ok(Value::Int(v));
    }
    if let Ok(v) = cleaned.parse::<f64>() {
        return Ok(Value::Float(v));
    }
    Err(parse_err(line_no, format!("unparseable value {s:?}")))
}

/// Splits array items on commas outside quotes (arrays are flat, so no
/// bracket nesting to track).
fn split_array_items(body: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    items.push(current);
    items
}

/// Parses a byte-size literal with a unit suffix (`"512KB"`, `"64MB"`,
/// `"2GB"`, bare `"4096B"`); units are powers of 1024.
pub fn parse_size(s: &str) -> Result<u64, SpecError> {
    let s = s.trim();
    let split = s
        .find(|c: char| c.is_ascii_alphabetic())
        .ok_or_else(|| SpecError(format!("size {s:?} is missing a unit (B/KB/MB/GB)")))?;
    let (num, unit) = s.split_at(split);
    let value: f64 = num
        .trim()
        .parse()
        .map_err(|_| SpecError(format!("bad size number in {s:?}")))?;
    if value < 0.0 {
        return Err(SpecError(format!("negative size {s:?}")));
    }
    let scale: u64 = match unit {
        "B" => 1,
        "KB" | "KiB" => 1 << 10,
        "MB" | "MiB" => 1 << 20,
        "GB" | "GiB" => 1 << 30,
        _ => return Err(SpecError(format!("unknown size unit {unit:?} in {s:?}"))),
    };
    Ok((value * scale as f64) as u64)
}

/// Parses a duration literal with a unit suffix (`"250us"`, `"2s"`).
pub fn parse_duration(s: &str) -> Result<SimDuration, SpecError> {
    let s = s.trim();
    let split = s
        .find(|c: char| c.is_ascii_alphabetic())
        .ok_or_else(|| SpecError(format!("duration {s:?} is missing a unit (ns/us/ms/s)")))?;
    let (num, unit) = s.split_at(split);
    let value: f64 = num
        .trim()
        .parse()
        .map_err(|_| SpecError(format!("bad duration number in {s:?}")))?;
    if value < 0.0 {
        return Err(SpecError(format!("negative duration {s:?}")));
    }
    let micros = match unit {
        "ns" => value / 1_000.0,
        "us" => value,
        "ms" => value * 1_000.0,
        "s" => value * 1_000_000.0,
        _ => {
            return Err(SpecError(format!(
                "unknown duration unit {unit:?} in {s:?}"
            )))
        }
    };
    Ok(SimDuration::from_micros_f64(micros))
}

// ----------------------------------------------------------------------
// Typed accessors
// ----------------------------------------------------------------------

fn get_str<'t>(t: &'t Table, key: &str) -> Result<Option<&'t str>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s)),
        Some(other) => Err(SpecError(format!("{key} must be a string, got {other:?}"))),
    }
}

fn get_duration(t: &Table, key: &str) -> Result<Option<SimDuration>, SpecError> {
    get_str(t, key)?.map(parse_duration).transpose()
}

fn require_duration(t: &Table, key: &str, what: &str) -> Result<SimDuration, SpecError> {
    get_duration(t, key)?
        .ok_or_else(|| SpecError(format!("{what} requires {key} = \"<duration>\"")))
}

fn get_u64(t: &Table, key: &str) -> Result<Option<u64>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(Value::Int(v)) if *v >= 0 => Ok(Some(*v as u64)),
        Some(other) => Err(SpecError(format!(
            "{key} must be a non-negative integer, got {other:?}"
        ))),
    }
}

/// Like [`get_u64`] but range-checked to `u32`: a value like
/// `device = 4294967296` must be rejected, not silently truncated to 0
/// by an `as u32` cast (which would, e.g., pin a group to the wrong
/// GPU).
fn get_u32(t: &Table, key: &str) -> Result<Option<u32>, SpecError> {
    match get_u64(t, key)? {
        None => Ok(None),
        Some(v) => u32::try_from(v).map(Some).map_err(|_| {
            SpecError(format!(
                "{key} must fit in a 32-bit unsigned integer (0..={}), got {v}",
                u32::MAX
            ))
        }),
    }
}

fn get_f64(t: &Table, key: &str) -> Result<Option<f64>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(Value::Float(v)) => Ok(Some(*v)),
        Some(Value::Int(v)) => Ok(Some(*v as f64)),
        Some(other) => Err(SpecError(format!("{key} must be a number, got {other:?}"))),
    }
}

fn get_bool(t: &Table, key: &str) -> Result<Option<bool>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(Value::Bool(v)) => Ok(Some(*v)),
        Some(other) => Err(SpecError(format!(
            "{key} must be true or false, got {other:?}"
        ))),
    }
}

// ----------------------------------------------------------------------
// Spec assembly
// ----------------------------------------------------------------------

fn schedulers_from(root: &Table) -> Result<Vec<SchedulerKind>, SpecError> {
    match root.get("schedulers") {
        None => Ok(SchedulerKind::ALL.to_vec()),
        Some(Value::Str(s)) => match s.as_str() {
            "all" => Ok(SchedulerKind::ALL.to_vec()),
            "paper" => Ok(SchedulerKind::PAPER.to_vec()),
            other => SchedulerKind::from_label(other)
                .map(|k| vec![k])
                .ok_or_else(|| SpecError(format!("unknown scheduler {other:?}"))),
        },
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| match v {
                Value::Str(s) => SchedulerKind::from_label(s)
                    .ok_or_else(|| SpecError(format!("unknown scheduler {s:?}"))),
                other => Err(SpecError(format!(
                    "scheduler labels must be strings, got {other:?}"
                ))),
            })
            .collect(),
        Some(other) => Err(SpecError(format!(
            "schedulers must be \"all\", \"paper\", a label, or an array; got {other:?}"
        ))),
    }
}

fn placements_from(root: &Table) -> Result<Vec<PlacementKind>, SpecError> {
    let parse_label = |s: &str| {
        PlacementKind::from_label(s)
            .ok_or_else(|| SpecError(format!("unknown placement policy {s:?}")))
    };
    match root.get("placement") {
        None => Ok(vec![PlacementKind::LeastLoaded]),
        Some(Value::Str(s)) => match s.as_str() {
            "all" => Ok(PlacementKind::ALL.to_vec()),
            other => parse_label(other).map(|k| vec![k]),
        },
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| match v {
                Value::Str(s) => parse_label(s),
                other => Err(SpecError(format!(
                    "placement labels must be strings, got {other:?}"
                ))),
            })
            .collect(),
        Some(other) => Err(SpecError(format!(
            "placement must be \"all\", a label, or an array; got {other:?}"
        ))),
    }
}

/// Applies `params.<field>` keys from `table` to `base`. Returns the
/// result and whether any key was present.
fn sched_params_from(table: &Table, base: &SchedParams) -> Result<(SchedParams, bool), SpecError> {
    let mut params = base.clone();
    let mut touched = false;
    if let Some(v) = get_duration(table, "params.timeslice")? {
        params.timeslice = v;
        touched = true;
    }
    if let Some(v) = get_duration(table, "params.sampling_max")? {
        params.sampling_max = v;
        touched = true;
    }
    if let Some(v) = get_u64(table, "params.sampling_requests")? {
        params.sampling_requests = v;
        touched = true;
    }
    if let Some(v) = get_u32(table, "params.freerun_multiplier")? {
        params.freerun_multiplier = v;
        touched = true;
    }
    if let Some(v) = get_duration(table, "params.freerun_min")? {
        params.freerun_min = v;
        touched = true;
    }
    if let Some(v) = get_duration(table, "params.freerun_max")? {
        params.freerun_max = v;
        touched = true;
    }
    if let Some(v) = get_duration(table, "params.overlong_limit")? {
        params.overlong_limit = v;
        touched = true;
    }
    if let Some(v) = get_bool(table, "params.hardware_preemption")? {
        params.hardware_preemption = v;
        touched = true;
    }
    if let Some(stray) = table
        .keys()
        .find(|k| k.starts_with("params.") && !KNOWN_PARAM_KEYS.contains(&k.as_str()))
    {
        return Err(SpecError(format!(
            "unknown sched-param override {stray:?} (supported: {})",
            KNOWN_PARAM_KEYS.join(", ")
        )));
    }
    Ok((params, touched))
}

const KNOWN_PARAM_KEYS: [&str; 8] = [
    "params.timeslice",
    "params.sampling_max",
    "params.sampling_requests",
    "params.freerun_multiplier",
    "params.freerun_min",
    "params.freerun_max",
    "params.overlong_limit",
    "params.hardware_preemption",
];

const KNOWN_COST_KEYS: [&str; 8] = [
    "cost.direct_submit",
    "cost.fault_intercept",
    "cost.syscall_submit",
    "cost.driver_processing",
    "cost.completion_detect",
    "cost.polling_period",
    "cost.poll_scan",
    "cost.kill_cleanup",
];

/// Applies top-level `cost.<field>` keys. Returns the model and
/// whether any key was present.
fn cost_from(root: &Table) -> Result<(CostModel, bool), SpecError> {
    let mut cost = CostModel::default();
    let mut touched = false;
    let mut set = |slot: &mut SimDuration, key: &str| -> Result<(), SpecError> {
        if let Some(v) = get_duration(root, key)? {
            *slot = v;
            touched = true;
        }
        Ok(())
    };
    set(&mut cost.direct_submit, "cost.direct_submit")?;
    set(&mut cost.fault_intercept, "cost.fault_intercept")?;
    set(&mut cost.syscall_submit, "cost.syscall_submit")?;
    set(&mut cost.driver_processing, "cost.driver_processing")?;
    set(&mut cost.completion_detect, "cost.completion_detect")?;
    set(&mut cost.polling_period, "cost.polling_period")?;
    set(&mut cost.poll_scan, "cost.poll_scan")?;
    set(&mut cost.kill_cleanup, "cost.kill_cleanup")?;
    if let Some(stray) = root
        .keys()
        .find(|k| k.starts_with("cost.") && !KNOWN_COST_KEYS.contains(&k.as_str()))
    {
        return Err(SpecError(format!(
            "unknown cost override {stray:?} (supported: {})",
            KNOWN_COST_KEYS.join(", ")
        )));
    }
    Ok((cost, touched))
}

const KNOWN_DEVICE_KEYS: [&str; 7] = [
    "channels",
    "contexts",
    "ring",
    "context_switch",
    "graphics_cooldown",
    "numa",
    "switch",
];

/// Builds one heterogeneous device slot from a `[[device]]` table.
fn device_slot_from(d: &Table, index: usize) -> Result<DeviceSlotSpec, SpecError> {
    if let Some(stray) = d.keys().find(|k| !KNOWN_DEVICE_KEYS.contains(&k.as_str())) {
        return Err(SpecError(format!(
            "device {index}: unknown key {stray:?} (supported: {})",
            KNOWN_DEVICE_KEYS.join(", ")
        )));
    }
    let mut config = GpuConfig::default();
    if let Some(v) = get_u64(d, "channels")? {
        config.total_channels = v as usize;
    }
    if let Some(v) = get_u64(d, "contexts")? {
        config.total_contexts = v as usize;
    }
    if let Some(v) = get_u64(d, "ring")? {
        config.ring_capacity = v as usize;
    }
    if let Some(v) = get_duration(d, "context_switch")? {
        config.context_switch = v;
    }
    if let Some(v) = get_duration(d, "graphics_cooldown")? {
        config.graphics_cooldown = v;
    }
    Ok(DeviceSlotSpec {
        config,
        numa: get_u32(d, "numa")?.unwrap_or(0),
        switch_id: get_u32(d, "switch")?.unwrap_or(0),
    })
}

// One GB/s = 2^30 bytes per 10^6 µs ≈ 1074 bytes/µs.
const BPUS_PER_GBPS: f64 = (1u64 << 30) as f64 / 1e6;

const KNOWN_TOPOLOGY_KEYS: [&str; 7] = [
    "topology.interconnect",
    "topology.same_switch_gbps",
    "topology.cross_pcie_gbps",
    "topology.cross_numa_gbps",
    "topology.same_switch_latency",
    "topology.cross_pcie_latency",
    "topology.cross_numa_latency",
];

/// Applies top-level `topology.*` keys. Returns the interconnect and
/// whether any key was present.
fn interconnect_from(root: &Table) -> Result<(InterconnectParams, bool), SpecError> {
    let mut touched = false;
    let mut params = match get_str(root, "topology.interconnect")? {
        None => InterconnectParams::free(),
        Some("free") => {
            touched = true;
            InterconnectParams::free()
        }
        Some("pcie-gen3") => {
            touched = true;
            InterconnectParams::pcie_gen3()
        }
        Some(other) => {
            return Err(SpecError(format!(
                "unknown interconnect {other:?} (supported: free, pcie-gen3)"
            )))
        }
    };
    let mut set_bw = |slot: &mut f64, key: &str| -> Result<(), SpecError> {
        if let Some(v) = get_f64(root, key)? {
            if v <= 0.0 {
                return Err(SpecError(format!("{key} must be positive, got {v}")));
            }
            *slot = v * BPUS_PER_GBPS;
            touched = true;
        }
        Ok(())
    };
    set_bw(&mut params.same_switch_bpus, "topology.same_switch_gbps")?;
    set_bw(&mut params.cross_pcie_bpus, "topology.cross_pcie_gbps")?;
    set_bw(&mut params.cross_numa_bpus, "topology.cross_numa_gbps")?;
    let mut set_lat = |slot: &mut SimDuration, key: &str| -> Result<(), SpecError> {
        if let Some(v) = get_duration(root, key)? {
            *slot = v;
            touched = true;
        }
        Ok(())
    };
    set_lat(
        &mut params.same_switch_latency,
        "topology.same_switch_latency",
    )?;
    set_lat(
        &mut params.cross_pcie_latency,
        "topology.cross_pcie_latency",
    )?;
    set_lat(
        &mut params.cross_numa_latency,
        "topology.cross_numa_latency",
    )?;
    if let Some(stray) = root
        .keys()
        .find(|k| k.starts_with("topology.") && !KNOWN_TOPOLOGY_KEYS.contains(&k.as_str()))
    {
        return Err(SpecError(format!(
            "unknown topology key {stray:?} (supported: {})",
            KNOWN_TOPOLOGY_KEYS.join(", ")
        )));
    }
    Ok((params, touched))
}

const KNOWN_FAULT_KEYS: [&str; 5] = ["at", "kind", "device", "task", "host"];

/// Fault kinds a `[[fault]]` block accepts, with the operand key each
/// one reads.
const FAULT_KIND_LABELS: [&str; 7] = [
    "device-remove",
    "device-add",
    "hang",
    "crash",
    "submit-error",
    "host-fail",
    "host-recover",
];

/// Builds one scheduled fault from a `[[fault]]` table:
/// `at = "<duration>"` plus `kind = "<label>"` and the kind's operand
/// (`device = N` for device kinds, `host = N` for host kinds, optional
/// `task = N` for task kinds — absent means "the oldest live task at
/// injection time").
fn fault_from(f: &Table, index: usize) -> Result<(SimDuration, FaultKind), SpecError> {
    let ctx = |msg: String| SpecError(format!("fault[{index}]: {msg}"));
    if let Some(stray) = f.keys().find(|k| !KNOWN_FAULT_KEYS.contains(&k.as_str())) {
        let hint = did_you_mean(stray, KNOWN_FAULT_KEYS.iter().copied());
        return Err(ctx(format!(
            "unknown key {stray:?} (supported: {}){hint}",
            KNOWN_FAULT_KEYS.join(", ")
        )));
    }
    let at = require_duration(f, "at", "a [[fault]] block").map_err(|e| ctx(e.0))?;
    let kind_label = get_str(f, "kind")?.ok_or_else(|| {
        ctx(format!(
            "requires kind = \"<{}>\"",
            FAULT_KIND_LABELS.join("|")
        ))
    })?;
    let device = || -> Result<DeviceId, SpecError> {
        get_u32(f, "device")?
            .map(DeviceId::new)
            .ok_or_else(|| ctx(format!("kind = {kind_label:?} requires device = <index>")))
    };
    let host = || -> Result<u32, SpecError> {
        get_u32(f, "host")?
            .ok_or_else(|| ctx(format!("kind = {kind_label:?} requires host = <index>")))
    };
    let task = get_u32(f, "task")?.map(TaskId::new);
    let reject_operand = |key: &str| -> Result<(), SpecError> {
        if f.contains_key(key) {
            return Err(ctx(format!(
                "kind = {kind_label:?} does not take {key:?}; remove it"
            )));
        }
        Ok(())
    };
    let kind = match kind_label {
        "device-remove" => {
            reject_operand("task")?;
            reject_operand("host")?;
            FaultKind::DeviceRemove { device: device()? }
        }
        "device-add" => {
            reject_operand("task")?;
            reject_operand("host")?;
            FaultKind::DeviceAdd { device: device()? }
        }
        "hang" => {
            reject_operand("device")?;
            reject_operand("host")?;
            FaultKind::TaskHang { task }
        }
        "crash" => {
            reject_operand("device")?;
            reject_operand("host")?;
            FaultKind::TaskCrash { task }
        }
        "submit-error" => {
            reject_operand("device")?;
            reject_operand("host")?;
            FaultKind::SubmitError { task }
        }
        "host-fail" => {
            reject_operand("device")?;
            reject_operand("task")?;
            FaultKind::HostFail { host: host()? }
        }
        "host-recover" => {
            reject_operand("device")?;
            reject_operand("task")?;
            FaultKind::HostRecover { host: host()? }
        }
        other => {
            let hint = did_you_mean(other, FAULT_KIND_LABELS.iter().copied());
            return Err(ctx(format!(
                "unknown fault kind {other:?} (supported: {}){hint}",
                FAULT_KIND_LABELS.join(", ")
            )));
        }
    };
    Ok((at, kind))
}

const KNOWN_FAULT_CONFIG_KEYS: [&str; 5] = [
    "fault.watchdog",
    "fault.retry_budget",
    "fault.backoff_base",
    "fault.backoff_cap",
    "fault.max_park_retries",
];

/// Applies top-level `fault.*` recovery-tuning keys. Returns the
/// config and whether any key was present. Positivity of the durations
/// is enforced by [`neon_core::fault::FaultPlan::validate`] during
/// spec validation, with the same key names in the message.
fn fault_config_from(root: &Table) -> Result<(FaultConfig, bool), SpecError> {
    let mut config = FaultConfig::default();
    let mut touched = false;
    if let Some(v) = get_duration(root, "fault.watchdog")? {
        config.watchdog = Some(v);
        touched = true;
    }
    if let Some(v) = get_u32(root, "fault.retry_budget")? {
        config.retry_budget = v;
        touched = true;
    }
    if let Some(v) = get_duration(root, "fault.backoff_base")? {
        config.backoff_base = v;
        touched = true;
    }
    if let Some(v) = get_duration(root, "fault.backoff_cap")? {
        config.backoff_cap = v;
        touched = true;
    }
    if let Some(v) = get_u32(root, "fault.max_park_retries")? {
        config.max_park_retries = v;
        touched = true;
    }
    if let Some(stray) = root
        .keys()
        .find(|k| k.starts_with("fault.") && !KNOWN_FAULT_CONFIG_KEYS.contains(&k.as_str()))
    {
        let hint = did_you_mean(stray, KNOWN_FAULT_CONFIG_KEYS.iter().copied());
        return Err(SpecError(format!(
            "unknown fault key {stray:?} (supported: {}){hint}",
            KNOWN_FAULT_CONFIG_KEYS.join(", ")
        )));
    }
    Ok((config, touched))
}

/// Parses the `faults` sweep axis: `"all"`, a mode label (`"none"`,
/// `"device"`, `"task"`, `"host"`), or an array of labels. Absent
/// means "derive from the schedule" — scenarios with `[[fault]]`
/// blocks or `fault.*` tuning run `"all"`, everything else `"none"`.
fn fault_modes_from(root: &Table) -> Result<Vec<FaultMode>, SpecError> {
    let parse_label = |s: &str| {
        FaultMode::parse(s).ok_or_else(|| {
            let hint = did_you_mean(s, FaultMode::ALL.iter().map(|m| m.label()));
            SpecError(format!("unknown fault mode {s:?}{hint}"))
        })
    };
    match root.get("faults") {
        None => Ok(Vec::new()),
        Some(Value::Str(s)) => parse_label(s).map(|m| vec![m]),
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| match v {
                Value::Str(s) => parse_label(s),
                other => Err(SpecError(format!(
                    "fault mode labels must be strings, got {other:?}"
                ))),
            })
            .collect(),
        Some(other) => Err(SpecError(format!(
            "faults must be \"all\", a mode label, or an array; got {other:?}"
        ))),
    }
}

const KNOWN_HOST_KEYS: [&str; 1] = ["devices"];

/// Builds one heterogeneous host's device count from a `[[host]]`
/// table.
fn host_from(h: &Table, index: usize) -> Result<usize, SpecError> {
    if let Some(stray) = h.keys().find(|k| !KNOWN_HOST_KEYS.contains(&k.as_str())) {
        return Err(SpecError(format!(
            "host {index}: unknown key {stray:?} (supported: {})",
            KNOWN_HOST_KEYS.join(", ")
        )));
    }
    Ok(get_u64(h, "devices")?.unwrap_or(1) as usize)
}

fn fleet_placements_from(root: &Table) -> Result<Vec<FleetPlacementKind>, SpecError> {
    let parse_label = |s: &str| {
        FleetPlacementKind::from_label(s)
            .ok_or_else(|| SpecError(format!("unknown fleet placement policy {s:?}")))
    };
    match root.get("fleet_placement") {
        None => Ok(vec![FleetPlacementKind::LeastLoaded]),
        Some(Value::Str(s)) => match s.as_str() {
            "all" => Ok(FleetPlacementKind::ALL.to_vec()),
            other => parse_label(other).map(|k| vec![k]),
        },
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| match v {
                Value::Str(s) => parse_label(s),
                other => Err(SpecError(format!(
                    "fleet placement labels must be strings, got {other:?}"
                ))),
            })
            .collect(),
        Some(other) => Err(SpecError(format!(
            "fleet_placement must be \"all\", a label, or an array; got {other:?}"
        ))),
    }
}

const KNOWN_CLUSTER_KEYS: [&str; 3] = ["cluster.network", "cluster.latency", "cluster.gbps"];

/// Applies top-level `cluster.*` keys (host-to-host transfer timing).
/// Returns the interconnect and whether any key was present.
fn cluster_from(root: &Table) -> Result<(ClusterInterconnect, bool), SpecError> {
    let mut touched = false;
    let mut cluster = match get_str(root, "cluster.network")? {
        None => ClusterInterconnect::free(),
        Some("free") => {
            touched = true;
            ClusterInterconnect::free()
        }
        Some("25g") => {
            touched = true;
            ClusterInterconnect::network_25g()
        }
        Some(other) => {
            return Err(SpecError(format!(
                "unknown cluster network {other:?} (supported: free, 25g)"
            )))
        }
    };
    if let Some(v) = get_duration(root, "cluster.latency")? {
        cluster.latency = v;
        touched = true;
    }
    if let Some(v) = get_f64(root, "cluster.gbps")? {
        if v <= 0.0 {
            return Err(SpecError(format!("cluster.gbps must be positive, got {v}")));
        }
        cluster.bpus = v * BPUS_PER_GBPS;
        touched = true;
    }
    if let Some(stray) = root
        .keys()
        .find(|k| k.starts_with("cluster.") && !KNOWN_CLUSTER_KEYS.contains(&k.as_str()))
    {
        return Err(SpecError(format!(
            "unknown cluster key {stray:?} (supported: {})",
            KNOWN_CLUSTER_KEYS.join(", ")
        )));
    }
    Ok((cluster, touched))
}

fn rebalances_from(root: &Table) -> Result<Vec<RebalanceKind>, SpecError> {
    let parse_label = |s: &str| {
        RebalanceKind::from_label(s)
            .ok_or_else(|| SpecError(format!("unknown rebalance policy {s:?}")))
    };
    match root.get("rebalance") {
        None => Ok(vec![RebalanceKind::Off]),
        // Legacy toggle: true was the count-diff heuristic.
        Some(Value::Bool(on)) => Ok(vec![RebalanceKind::from_legacy_bool(*on)]),
        Some(Value::Str(s)) => match s.as_str() {
            "all" => Ok(RebalanceKind::ALL.to_vec()),
            other => parse_label(other).map(|k| vec![k]),
        },
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| match v {
                Value::Str(s) => parse_label(s),
                other => Err(SpecError(format!(
                    "rebalance labels must be strings, got {other:?}"
                ))),
            })
            .collect(),
        Some(other) => Err(SpecError(format!(
            "rebalance must be \"all\", a label, an array, or a legacy boolean; got {other:?}"
        ))),
    }
}

fn seeds_from(root: &Table) -> Result<Vec<u64>, SpecError> {
    match root.get("seeds") {
        None => Ok(vec![0xA5D0]),
        Some(Value::Int(v)) if *v >= 0 => Ok(vec![*v as u64]),
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| match v {
                Value::Int(i) if *i >= 0 => Ok(*i as u64),
                other => Err(SpecError(format!("seeds must be integers, got {other:?}"))),
            })
            .collect(),
        Some(other) => Err(SpecError(format!(
            "seeds must be an integer array, got {other:?}"
        ))),
    }
}

// ----------------------------------------------------------------------
// Key strictness
// ----------------------------------------------------------------------
//
// Every table is checked against the full key vocabulary, so a typo or
// a key in the wrong place is an error with a pointed hint instead of a
// silent no-op. (`warmup_rounds` on a throttle group used to parse and
// do nothing — exactly the failure mode this closes.)

/// Top-level scalar keys.
const KNOWN_ROOT_KEYS: [&str; 13] = [
    "name",
    "horizon",
    "seeds",
    "schedulers",
    "devices",
    "hosts",
    "placement",
    "fleet_placement",
    "fleet_rebalance",
    "rebalance",
    "faults",
    "metrics",
    "sample_every",
];

/// Dotted-key families the root table accepts; each family's member
/// keys are validated by its own loader (`sched_params_from` etc.).
const KNOWN_ROOT_FAMILIES: [&str; 5] = ["params", "cost", "topology", "cluster", "fault"];

/// Group keys that are valid for every workload/arrival combination.
const KNOWN_GROUP_KEYS: [&str; 7] = [
    "name",
    "count",
    "workload",
    "arrival",
    "lifetime",
    "device",
    "working_set",
];

/// `(workload kind, keys only that arm reads)`.
const WORKLOAD_ARM_KEYS: [(&str, &[&str]); 6] = [
    ("throttle", &["request", "off_ratio", "jitter"]),
    ("fixed-loop", &["service", "gap", "rounds"]),
    ("app", &["app"]),
    ("batcher", &["batch"]),
    ("idle-burst", &["idle", "burst_requests", "request"]),
    ("infinite-loop", &["warmup_rounds", "request"]),
];

/// `(arrival kind, keys only that arm reads)`.
const ARRIVAL_ARM_KEYS: [(&str, &[&str]); 4] = [
    ("at-start", &[]),
    ("stagger", &["stagger"]),
    ("at", &["times"]),
    ("poisson", &["rate_hz", "arrival_start"]),
];

/// Levenshtein edit distance, for "did you mean" hints.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The closest candidate within edit distance 2, rendered as a
/// `; did you mean "x"?` suffix (empty when nothing is close).
fn did_you_mean<'a>(key: &str, candidates: impl Iterator<Item = &'a str>) -> String {
    candidates
        .map(|c| (edit_distance(key, c), c))
        .filter(|(d, _)| *d <= 2)
        .min()
        .map(|(_, c)| format!("; did you mean {c:?}?"))
        .unwrap_or_default()
}

/// Workload arms (other than `active`) that read `key`, as labels.
fn arms_reading(key: &str, active: &str) -> Vec<&'static str> {
    WORKLOAD_ARM_KEYS
        .iter()
        .filter(|(arm, keys)| *arm != active && keys.contains(&key))
        .map(|(arm, _)| *arm)
        .collect()
}

/// Rejects unknown top-level keys. Dotted families are validated
/// member-by-member in their own loaders; this pass catches unknown
/// families, bare-key typos, and group keys that drifted above the
/// first `[[group]]` header.
fn validate_root_keys(root: &Table) -> Result<(), SpecError> {
    for key in root.keys() {
        if let Some((family, _)) = key.split_once('.') {
            if !KNOWN_ROOT_FAMILIES.contains(&family) {
                let hint = did_you_mean(family, KNOWN_ROOT_FAMILIES.iter().copied());
                return Err(SpecError(format!(
                    "unknown key family {family:?} in {key:?} (supported: {}){hint}",
                    KNOWN_ROOT_FAMILIES.join(", ")
                )));
            }
            continue;
        }
        if KNOWN_ROOT_KEYS.contains(&key.as_str()) {
            continue;
        }
        let group_key = KNOWN_GROUP_KEYS.contains(&key.as_str())
            || WORKLOAD_ARM_KEYS
                .iter()
                .any(|(_, ks)| ks.contains(&key.as_str()))
            || ARRIVAL_ARM_KEYS
                .iter()
                .any(|(_, ks)| ks.contains(&key.as_str()));
        if group_key {
            return Err(SpecError(format!(
                "{key:?} is a group key; move it below a [[group]] header"
            )));
        }
        let hint = did_you_mean(key, KNOWN_ROOT_KEYS.iter().copied());
        return Err(SpecError(format!(
            "unknown top-level key {key:?} (supported: {}){hint}",
            KNOWN_ROOT_KEYS.join(", ")
        )));
    }
    Ok(())
}

/// Rejects unknown and misplaced keys in one `[[group]]` table, given
/// the group's resolved workload and arrival kinds. A key that belongs
/// to a *different* arm gets an error naming the arm that reads it —
/// the silent no-op this check exists to close.
fn validate_group_keys(
    g: &Table,
    group_name: &str,
    workload: &str,
    arrival: &str,
) -> Result<(), SpecError> {
    let workload_keys = WORKLOAD_ARM_KEYS
        .iter()
        .find(|(arm, _)| *arm == workload)
        .map(|(_, ks)| *ks)
        .unwrap_or(&[]);
    let arrival_keys = ARRIVAL_ARM_KEYS
        .iter()
        .find(|(arm, _)| *arm == arrival)
        .map(|(_, ks)| *ks)
        .unwrap_or(&[]);
    for key in g.keys() {
        let key = key.as_str();
        // params.* (and the cost.* rejection) are handled by the
        // override loaders, which already know their member keys.
        if key.contains('.') {
            continue;
        }
        if KNOWN_GROUP_KEYS.contains(&key)
            || workload_keys.contains(&key)
            || arrival_keys.contains(&key)
        {
            continue;
        }
        let other_workloads = arms_reading(key, workload);
        if !other_workloads.is_empty() {
            return Err(SpecError(format!(
                "group {group_name:?}: {key:?} is only used by workload = \"{}\" \
                 and does nothing under workload = \"{workload}\"; remove it or \
                 change the workload",
                other_workloads.join("\" / \"")
            )));
        }
        if let Some((arm, _)) = ARRIVAL_ARM_KEYS
            .iter()
            .find(|(arm, ks)| *arm != arrival && ks.contains(&key))
        {
            return Err(SpecError(format!(
                "group {group_name:?}: {key:?} is only used by arrival = \"{arm}\" \
                 and does nothing under arrival = \"{arrival}\"; remove it or \
                 change the arrival"
            )));
        }
        if KNOWN_ROOT_KEYS.contains(&key) {
            return Err(SpecError(format!(
                "group {group_name:?}: {key:?} is a top-level key; move it above \
                 the first [[group]] header"
            )));
        }
        let hint = did_you_mean(
            key,
            KNOWN_GROUP_KEYS
                .iter()
                .copied()
                .chain(workload_keys.iter().copied())
                .chain(arrival_keys.iter().copied()),
        );
        return Err(SpecError(format!(
            "group {group_name:?}: unknown key {key:?} (supported here: {}){hint}",
            KNOWN_GROUP_KEYS
                .iter()
                .copied()
                .chain(workload_keys.iter().copied())
                .chain(arrival_keys.iter().copied())
                .collect::<Vec<_>>()
                .join(", ")
        )));
    }
    Ok(())
}

fn workload_from(g: &Table) -> Result<WorkloadSpec, SpecError> {
    let kind = get_str(g, "workload")?.unwrap_or("throttle");
    match kind {
        "throttle" => Ok(WorkloadSpec::Throttle {
            request: require_duration(g, "request", "throttle")?,
            off_ratio: get_f64(g, "off_ratio")?.unwrap_or(0.0),
            jitter: get_f64(g, "jitter")?.unwrap_or(0.0),
        }),
        "fixed-loop" => Ok(WorkloadSpec::FixedLoop {
            service: require_duration(g, "service", "fixed-loop")?,
            gap: get_duration(g, "gap")?.unwrap_or(SimDuration::ZERO),
            rounds: get_u64(g, "rounds")?,
        }),
        "app" => Ok(WorkloadSpec::App {
            name: get_str(g, "app")?
                .ok_or_else(|| SpecError("app workload requires app = \"<Name>\"".into()))?
                .to_string(),
        }),
        "batcher" => Ok(WorkloadSpec::Batcher {
            batch: require_duration(g, "batch", "batcher")?,
        }),
        "idle-burst" => Ok(WorkloadSpec::IdleBurst {
            idle: require_duration(g, "idle", "idle-burst")?,
            burst_requests: get_u32(g, "burst_requests")?.unwrap_or(32),
            request: require_duration(g, "request", "idle-burst")?,
        }),
        "infinite-loop" => Ok(WorkloadSpec::InfiniteLoop {
            warmup_rounds: get_u32(g, "warmup_rounds")?.unwrap_or(50),
            request: require_duration(g, "request", "infinite-loop")?,
        }),
        other => Err(SpecError(format!("unknown workload kind {other:?}"))),
    }
}

fn arrival_from(g: &Table) -> Result<ArrivalSpec, SpecError> {
    let kind = get_str(g, "arrival")?.unwrap_or("at-start");
    match kind {
        "at-start" => Ok(ArrivalSpec::AtStart),
        "stagger" => Ok(ArrivalSpec::Staggered {
            gap: require_duration(g, "stagger", "stagger arrival")?,
        }),
        "at" => match g.get("times") {
            Some(Value::Array(items)) => {
                let times = items
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => parse_duration(s),
                        other => Err(SpecError(format!(
                            "arrival times must be duration strings, got {other:?}"
                        ))),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ArrivalSpec::At { times })
            }
            _ => Err(SpecError(
                "at arrival requires times = [\"<duration>\", ...]".into(),
            )),
        },
        "poisson" => Ok(ArrivalSpec::Poisson {
            rate_hz: get_f64(g, "rate_hz")?
                .ok_or_else(|| SpecError("poisson arrival requires rate_hz".into()))?,
            start: get_duration(g, "arrival_start")?.unwrap_or(SimDuration::ZERO),
        }),
        other => Err(SpecError(format!("unknown arrival kind {other:?}"))),
    }
}

fn lifetime_from(g: &Table) -> Result<LifetimeSpec, SpecError> {
    let Some(s) = get_str(g, "lifetime")? else {
        return Ok(LifetimeSpec::Forever);
    };
    if s == "forever" {
        return Ok(LifetimeSpec::Forever);
    }
    if let Some(body) = s.strip_prefix("exp(").and_then(|b| b.strip_suffix(')')) {
        return Ok(LifetimeSpec::Exponential {
            mean: parse_duration(body)?,
        });
    }
    Ok(LifetimeSpec::Fixed(parse_duration(s)?))
}

/// Parses scenario TOML text. `fallback_name` (usually the file stem)
/// names the scenario when the file has no `name` key.
pub fn from_toml(text: &str, fallback_name: &str) -> Result<ScenarioSpec, SpecError> {
    let (root, group_tables, device_tables, host_tables, fault_tables) = parse_document(text)?;
    validate_root_keys(&root)?;
    let name = get_str(&root, "name")?.unwrap_or(fallback_name).to_string();
    let horizon = require_duration(&root, "horizon", "scenario")?;
    // [[device]] blocks define the device count when the devices key
    // is absent; when both appear, validation checks they agree. The
    // hosts key and [[host]] blocks follow the same rule one level up.
    let devices = get_u64(&root, "devices")?
        .map(|d| d as usize)
        .unwrap_or_else(|| device_tables.len().max(1));
    let hosts = get_u64(&root, "hosts")?
        .map(|h| h as usize)
        .unwrap_or_else(|| host_tables.len().max(1));
    let mut spec = ScenarioSpec::new(name, horizon)
        .seeds(seeds_from(&root)?)
        .schedulers(schedulers_from(&root)?)
        .devices(devices)
        .hosts(hosts)
        .placements(placements_from(&root)?)
        .fleet_placements(fleet_placements_from(&root)?)
        .rebalances(rebalances_from(&root)?);
    for (i, h) in host_tables.iter().enumerate() {
        spec.host_devices.push(host_from(h, i)?);
    }
    for (i, f) in fault_tables.iter().enumerate() {
        let (at, kind) = fault_from(f, i)?;
        spec.faults.push(FaultEvent {
            at: neon_sim::SimTime::ZERO + at,
            kind,
        });
    }
    let (fault_config, fault_touched) = fault_config_from(&root)?;
    if fault_touched {
        spec.fault_config = fault_config;
    }
    spec.fault_modes = fault_modes_from(&root)?;
    if let Some(label) = get_str(&root, "fleet_rebalance")? {
        spec.fleet_rebalance = FleetRebalanceKind::from_label(label).ok_or_else(|| {
            SpecError(format!(
                "unknown fleet rebalance policy {label:?} (supported: off, count-diff)"
            ))
        })?;
    }
    let (cluster, cluster_touched) = cluster_from(&root)?;
    if cluster_touched {
        spec.cluster = Some(cluster);
    }
    if let Some(label) = get_str(&root, "metrics")? {
        let mode = MetricsMode::from_label(label).ok_or_else(|| {
            SpecError(format!(
                "unknown metrics mode {label:?} (supported: exact, streaming)"
            ))
        })?;
        spec = spec.metrics(mode);
    }
    if let Some(every) = get_duration(&root, "sample_every")? {
        spec = spec.sample_every(every);
    }
    for (i, d) in device_tables.iter().enumerate() {
        spec.device_slots.push(device_slot_from(d, i)?);
    }
    let (interconnect, interconnect_touched) = interconnect_from(&root)?;
    if interconnect_touched {
        spec.interconnect = Some(interconnect);
    }
    let (params, params_touched) = sched_params_from(&root, &SchedParams::default())?;
    if params_touched {
        spec.params = Some(params);
    }
    let (cost, cost_touched) = cost_from(&root)?;
    if cost_touched {
        spec.cost = Some(cost);
    }
    let scenario_params = spec.params.clone().unwrap_or_default();
    for (i, g) in group_tables.iter().enumerate() {
        let name = get_str(g, "name")?
            .map(str::to_string)
            .unwrap_or_else(|| format!("group{i}"));
        if let Some(stray) = g.keys().find(|k| k.starts_with("cost.")) {
            return Err(SpecError(format!(
                "group {name:?} sets {stray:?}: the cost model describes the \
                 simulated host and cannot vary per group; move it to the top level"
            )));
        }
        validate_group_keys(
            g,
            &name,
            get_str(g, "workload")?.unwrap_or("throttle"),
            get_str(g, "arrival")?.unwrap_or("at-start"),
        )?;
        let (params, params_touched) = sched_params_from(g, &scenario_params)?;
        let group = TenantGroup {
            name,
            count: get_u32(g, "count")?.unwrap_or(1),
            workload: workload_from(g)?,
            arrival: arrival_from(g)?,
            lifetime: lifetime_from(g)?,
            device: get_u32(g, "device")?,
            params: params_touched.then_some(params),
            working_set: get_str(g, "working_set")?.map(parse_size).transpose()?,
        };
        spec.groups.push(group);
    }
    if matches!(root.get("rebalance"), Some(Value::Bool(_))) {
        spec.compat_notes.push(
            "rebalance takes a policy label; the boolean form is legacy \
             (true → \"count-diff\", false → \"off\")"
                .to_string(),
        );
    }
    spec.validate()?;
    Ok(spec)
}

/// Loads a scenario from a `.toml` file.
pub fn from_file(path: &std::path::Path) -> Result<ScenarioSpec, SpecError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SpecError(format!("cannot read {}: {e}", path.display())))?;
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("scenario");
    from_toml(&text, stem)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHURN: &str = r#"
# A comment.
name = "unit-churn"
horizon = "200ms"
seeds = [1, 2]
schedulers = ["direct", "disengaged-fq"]

[[group]]
name = "resident"
count = 2
workload = "fixed-loop"
service = "100us"
gap = "10us"

[[group]]
name = "churner"          # trailing comment
count = 4
workload = "throttle"
request = "250us"
arrival = "poisson"
rate_hz = 50.0
lifetime = "exp(40ms)"
"#;

    #[test]
    fn full_scenario_round_trip() {
        let spec = from_toml(CHURN, "fallback").unwrap();
        assert_eq!(spec.name, "unit-churn");
        assert_eq!(spec.horizon, SimDuration::from_millis(200));
        assert_eq!(spec.seeds, vec![1, 2]);
        assert_eq!(spec.schedulers.len(), 2);
        assert_eq!(spec.groups.len(), 2);
        assert_eq!(spec.groups[0].count, 2);
        assert!(matches!(
            spec.groups[1].arrival,
            ArrivalSpec::Poisson { rate_hz, .. } if rate_hz == 50.0
        ));
        assert!(matches!(
            spec.groups[1].lifetime,
            LifetimeSpec::Exponential { mean } if mean == SimDuration::from_millis(40)
        ));
    }

    #[test]
    fn fallback_name_and_defaults_apply() {
        let text = "horizon = \"10ms\"\n[[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        let spec = from_toml(text, "stem").unwrap();
        assert_eq!(spec.name, "stem");
        assert_eq!(spec.schedulers.len(), 7, "defaults to every policy");
        assert_eq!(spec.seeds.len(), 1);
        assert!(matches!(spec.groups[0].arrival, ArrivalSpec::AtStart));
        assert!(matches!(spec.groups[0].lifetime, LifetimeSpec::Forever));
    }

    #[test]
    fn durations_parse_all_units() {
        assert_eq!(
            parse_duration("134ns").unwrap(),
            SimDuration::from_nanos(134)
        );
        assert_eq!(
            parse_duration("430us").unwrap(),
            SimDuration::from_micros(430)
        );
        assert_eq!(
            parse_duration("30ms").unwrap(),
            SimDuration::from_millis(30)
        );
        assert_eq!(parse_duration("2s").unwrap(), SimDuration::from_secs(2));
        assert_eq!(
            parse_duration("1.5ms").unwrap(),
            SimDuration::from_micros(1_500)
        );
        assert!(parse_duration("10").is_err(), "unit required");
        assert!(parse_duration("10fortnights").is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "horizon = \"10ms\"\nbogus line\n";
        let e = from_toml(text, "x").unwrap_err();
        assert!(e.0.contains("line 2"), "{e}");
    }

    #[test]
    fn unknown_scheduler_label_is_rejected() {
        let text =
            "horizon = \"10ms\"\nschedulers = [\"warp-drive\"]\n[[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        assert!(from_toml(text, "x").is_err());
    }

    const MULTI: &str = r#"
name = "multi"
horizon = "100ms"
devices = 4
placement = ["least-loaded", "round-robin", "pinned:2"]
rebalance = true
schedulers = ["disengaged-fq"]
params.sampling_max = "3ms"
params.freerun_max = "80ms"
cost.polling_period = "500us"

[[group]]
name = "floaters"
count = 6
workload = "throttle"
request = "200us"

[[group]]
name = "pinned-heavy"
count = 2
workload = "throttle"
request = "900us"
device = 3
params.sampling_requests = 96
"#;

    #[test]
    fn multi_device_scenario_round_trips() {
        let spec = from_toml(MULTI, "x").unwrap();
        assert_eq!(spec.devices, 4);
        assert_eq!(
            spec.rebalances,
            vec![RebalanceKind::CountDiff],
            "legacy rebalance = true maps to the count-diff heuristic"
        );
        assert_eq!(
            spec.placements,
            vec![
                PlacementKind::LeastLoaded,
                PlacementKind::RoundRobin,
                PlacementKind::Pinned(2)
            ]
        );
        assert_eq!(
            spec.params.as_ref().unwrap().sampling_max,
            SimDuration::from_millis(3)
        );
        assert_eq!(
            spec.params.as_ref().unwrap().freerun_max,
            SimDuration::from_millis(80)
        );
        assert_eq!(
            spec.cost.as_ref().unwrap().polling_period,
            SimDuration::from_micros(500)
        );
        assert_eq!(spec.groups[0].device, None);
        assert_eq!(spec.groups[1].device, Some(3));
        let group_params = spec.groups[1].params.as_ref().unwrap();
        assert_eq!(group_params.sampling_requests, 96);
        // Group overrides start from the scenario-level params.
        assert_eq!(group_params.sampling_max, SimDuration::from_millis(3));
        let per_device = spec.device_params();
        assert_eq!(per_device[3].sampling_requests, 96);
        assert_eq!(per_device[0].sampling_requests, 32);
        assert_eq!(spec.cell_count(), 3);
    }

    #[test]
    fn rebalance_axis_parses_labels_arrays_and_legacy_booleans() {
        let with_rebalance = |v: &str| {
            format!(
                "horizon = \"10ms\"\ndevices = 2\nrebalance = {v}\n\
                 [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n"
            )
        };
        let cases = [
            ("true", vec![RebalanceKind::CountDiff]),
            ("false", vec![RebalanceKind::Off]),
            ("\"cost\"", vec![RebalanceKind::CostAware]),
            ("\"cost-aware\"", vec![RebalanceKind::CostAware]),
            ("\"all\"", RebalanceKind::ALL.to_vec()),
            (
                "[\"count-diff\", \"cost-aware\"]",
                vec![RebalanceKind::CountDiff, RebalanceKind::CostAware],
            ),
        ];
        for (value, expected) in cases {
            let spec = from_toml(&with_rebalance(value), "x").unwrap();
            assert_eq!(spec.rebalances, expected, "rebalance = {value}");
        }
        // Missing key means off, and the axis multiplies the matrix.
        let spec = from_toml(&with_rebalance("\"all\""), "x").unwrap();
        assert_eq!(spec.cell_count(), 7 * 3, "schedulers x rebalances");
        let off = from_toml(
            "horizon = \"10ms\"\n[[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n",
            "x",
        )
        .unwrap();
        assert_eq!(off.rebalances, vec![RebalanceKind::Off]);
        assert!(from_toml(&with_rebalance("\"warp-drive\""), "x").is_err());
    }

    #[test]
    fn placement_all_and_unknown_labels() {
        let ok = "horizon = \"10ms\"\ndevices = 2\nplacement = \"all\"\n[[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        let spec = from_toml(ok, "x").unwrap();
        assert_eq!(spec.placements.len(), PlacementKind::ALL.len());
        let bad = "horizon = \"10ms\"\nplacement = \"warp-drive\"\n[[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        assert!(from_toml(bad, "x").is_err());
    }

    #[test]
    fn group_cost_overrides_are_rejected_with_guidance() {
        let text = "horizon = \"10ms\"\n[[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\ncost.polling_period = \"2ms\"\n";
        let e = from_toml(text, "x").unwrap_err();
        assert!(e.0.contains("cannot vary per group"), "{e}");
    }

    #[test]
    fn group_params_without_pin_are_rejected_not_ignored() {
        let text = "horizon = \"10ms\"\ndevices = 2\n[[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\nparams.sampling_requests = 96\n";
        let e = from_toml(text, "x").unwrap_err();
        assert!(e.0.contains("require device"), "{e}");
    }

    #[test]
    fn unknown_override_keys_are_rejected() {
        let text = "horizon = \"10ms\"\nparams.warp_factor = 9\n[[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        let e = from_toml(text, "x").unwrap_err();
        assert!(e.0.contains("unknown sched-param override"), "{e}");
        let text = "horizon = \"10ms\"\ncost.warp = \"1ms\"\n[[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        let e = from_toml(text, "x").unwrap_err();
        assert!(e.0.contains("unknown cost override"), "{e}");
    }

    const HETERO: &str = r#"
name = "hetero"
horizon = "50ms"
placement = ["locality-first", "cost-min"]
schedulers = ["direct"]
rebalance = true
topology.interconnect = "pcie-gen3"
topology.cross_numa_gbps = 4.0
topology.same_switch_latency = "5us"

[[device]]
numa = 0
switch = 0

[[device]]
channels = 48
contexts = 24
numa = 1
switch = 1

[[group]]
name = "tenants"
count = 4
workload = "throttle"
request = "300us"
working_set = "128MB"
"#;

    #[test]
    fn hetero_topology_scenario_round_trips() {
        let spec = from_toml(HETERO, "x").unwrap();
        assert_eq!(spec.devices, 2, "[[device]] blocks define the count");
        assert_eq!(spec.device_slots.len(), 2);
        assert_eq!(spec.device_slots[0].config.total_contexts, 48);
        assert_eq!(spec.device_slots[1].config.total_contexts, 24);
        assert_eq!(spec.device_slots[1].numa, 1);
        assert_eq!(
            spec.placements,
            vec![PlacementKind::LocalityFirst, PlacementKind::CostMin]
        );
        let inter = spec.interconnect.as_ref().unwrap();
        assert_eq!(inter.same_switch_latency, SimDuration::from_micros(5));
        // 4 GB/s ≈ 4295 bytes/µs.
        assert!((inter.cross_numa_bpus - 4294.967296).abs() < 1e-6);
        assert_eq!(spec.groups[0].working_set, Some(128 << 20));
        let topo = spec.topology().expect("topology present");
        assert_eq!(topo.len(), 2);
        assert_eq!(
            topo.tier(0, 1),
            neon_gpu::LinkTier::CrossNuma,
            "devices sit on different NUMA nodes"
        );
    }

    #[test]
    fn device_count_mismatch_and_bad_keys_are_rejected() {
        let text = "horizon = \"10ms\"\ndevices = 3\n[[device]]\nnuma = 0\n\
                    [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        let e = from_toml(text, "x").unwrap_err();
        assert!(e.0.contains("[[device]] block"), "{e}");

        let text = "horizon = \"10ms\"\n[[device]]\nwarp = 9\n\
                    [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        let e = from_toml(text, "x").unwrap_err();
        assert!(e.0.contains("unknown key"), "{e}");

        let text = "horizon = \"10ms\"\ntopology.warp = 9\n\
                    [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        let e = from_toml(text, "x").unwrap_err();
        assert!(e.0.contains("unknown topology key"), "{e}");

        let text = "horizon = \"10ms\"\ntopology.interconnect = \"carrier-pigeon\"\n\
                    [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        let e = from_toml(text, "x").unwrap_err();
        assert!(e.0.contains("unknown interconnect"), "{e}");
    }

    #[test]
    fn sizes_parse_all_units() {
        assert_eq!(parse_size("4096B").unwrap(), 4096);
        assert_eq!(parse_size("512KB").unwrap(), 512 << 10);
        assert_eq!(parse_size("64MB").unwrap(), 64 << 20);
        assert_eq!(parse_size("2GB").unwrap(), 2 << 30);
        assert_eq!(parse_size("1.5MB").unwrap(), 3 << 19);
        assert!(parse_size("64").is_err(), "unit required");
        assert!(parse_size("64parsecs").is_err());
    }

    #[test]
    fn telemetry_keys_parse_and_reject_bad_labels() {
        let with = |extra: &str| {
            format!(
                "horizon = \"10ms\"\n{extra}\n\
                 [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n"
            )
        };
        let spec = from_toml(&with(""), "x").unwrap();
        assert_eq!(spec.metrics, MetricsMode::Exact, "exact is the default");
        assert_eq!(spec.sample_every, None, "sampler is off by default");

        let spec = from_toml(&with("metrics = \"streaming\""), "x").unwrap();
        assert_eq!(spec.metrics, MetricsMode::Streaming);

        let spec = from_toml(&with("sample_every = \"500us\""), "x").unwrap();
        assert_eq!(spec.sample_every, Some(SimDuration::from_micros(500)));

        let e = from_toml(&with("metrics = \"approximate\""), "x").unwrap_err();
        assert!(e.0.contains("unknown metrics mode"), "{e}");
        let e = from_toml(&with("sample_every = \"0ms\""), "x").unwrap_err();
        assert!(e.0.contains("sample_every"), "{e}");
    }

    #[test]
    fn explicit_arrival_times_parse() {
        let text = "horizon = \"50ms\"\n[[group]]\ncount = 2\nworkload = \"throttle\"\nrequest = \"1ms\"\narrival = \"at\"\ntimes = [\"1ms\", \"2ms\"]\n";
        let spec = from_toml(text, "x").unwrap();
        assert!(matches!(
            &spec.groups[0].arrival,
            ArrivalSpec::At { times } if times.len() == 2
        ));
    }

    #[test]
    fn out_of_range_u32_values_are_rejected_naming_the_key() {
        // `device = 2^32` used to truncate silently to device 0 via
        // `as u32`; now every u32 site goes through the checked
        // helper and the error names the offending key.
        let with_group = |workload: &str, kv: &str| {
            format!(
                "horizon = \"10ms\"\ndevices = 2\n\
                 [[group]]\nworkload = \"{workload}\"\nrequest = \"1ms\"\n{kv}\n"
            )
        };
        let cases = [
            ("throttle", "device"),
            ("throttle", "count"),
            ("infinite-loop", "warmup_rounds"),
            ("idle-burst", "burst_requests"),
        ];
        for (workload, key) in cases {
            let text = if workload == "idle-burst" {
                with_group(workload, &format!("idle = \"1ms\"\n{key} = 4294967296"))
            } else {
                with_group(workload, &format!("{key} = 4294967296"))
            };
            let e = from_toml(&text, "x").unwrap_err();
            assert!(e.0.contains(key), "error must name {key}: {e}");
            assert!(e.0.contains("32-bit"), "{e}");
            assert!(e.0.contains("4294967296"), "{e}");
        }
        let e = from_toml(
            "horizon = \"10ms\"\n[[device]]\nnuma = 4294967296\n\
             [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("numa"), "{e}");
        // In-range values still parse.
        let spec = from_toml(&with_group("throttle", "device = 1"), "x").unwrap();
        assert_eq!(spec.groups[0].device, Some(1));
    }

    const FLEET: &str = r#"
name = "unit-fleet"
horizon = "50ms"
seeds = [7]
schedulers = ["direct"]
hosts = 3
fleet_placement = ["least-loaded", "round-robin"]
fleet_rebalance = "count-diff"
cluster.network = "25g"

[[group]]
name = "spread"
count = 6
workload = "throttle"
request = "200us"
"#;

    #[test]
    fn fleet_keys_round_trip() {
        let spec = from_toml(FLEET, "x").unwrap();
        assert_eq!(spec.hosts, 3);
        assert!(
            spec.host_devices.is_empty(),
            "uniform hosts carry no layout"
        );
        assert_eq!(
            spec.fleet_placements,
            vec![
                FleetPlacementKind::LeastLoaded,
                FleetPlacementKind::RoundRobin
            ]
        );
        assert_eq!(spec.fleet_rebalance, FleetRebalanceKind::CountDiff);
        let cluster = spec.cluster.clone().unwrap();
        assert!(!cluster.is_free(), "25g network must charge transfers");
        assert_eq!(spec.host_device_counts(), vec![1, 1, 1]);
        // fleet_placement is a sweep axis: 1 scheduler × 2 fleet
        // placements × 1 seed.
        assert_eq!(spec.cell_count(), 2);
    }

    #[test]
    fn host_blocks_size_a_heterogeneous_fleet() {
        let text = "horizon = \"10ms\"\n\
                    [[host]]\ndevices = 2\n[[host]]\ndevices = 1\n\
                    [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        let spec = from_toml(text, "x").unwrap();
        assert_eq!(spec.hosts, 2);
        assert_eq!(spec.host_device_counts(), vec![2, 1]);

        let e = from_toml(
            "horizon = \"10ms\"\n[[host]]\ndevices = 2\nbogus = 1\n\
             [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("bogus"), "{e}");
    }

    #[test]
    fn cluster_latency_and_gbps_keys_parse() {
        let text = "horizon = \"10ms\"\nhosts = 2\n\
                    cluster.latency = \"50us\"\ncluster.gbps = 100.0\n\
                    [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        let spec = from_toml(text, "x").unwrap();
        let cluster = spec.cluster.unwrap();
        assert!(!cluster.is_free());
        assert_eq!(cluster.latency, SimDuration::from_micros(50));

        let e = from_toml(
            "horizon = \"10ms\"\nhosts = 2\ncluster.gbps = -1.0\n\
             [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("cluster.gbps"), "{e}");
    }

    #[test]
    fn unknown_root_keys_get_did_you_mean_hints() {
        let e = from_toml(
            "horzon = \"10ms\"\n[[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("unknown top-level key"), "{e}");
        assert!(e.0.contains("did you mean \"horizon\"?"), "{e}");

        let e = from_toml(
            "horizon = \"10ms\"\ntopolgy.interconnect = \"free\"\n\
             [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("unknown key family"), "{e}");
        assert!(e.0.contains("did you mean \"topology\"?"), "{e}");
    }

    #[test]
    fn misplaced_workload_arm_keys_name_the_owning_arm() {
        // The PR 8 note: these used to parse and silently do nothing.
        let e = from_toml(
            "horizon = \"10ms\"\n[[group]]\nworkload = \"throttle\"\n\
             request = \"1ms\"\nwarmup_rounds = 10\n",
            "x",
        )
        .unwrap_err();
        assert!(
            e.0.contains("only used by workload = \"infinite-loop\""),
            "{e}"
        );
        assert!(
            e.0.contains("does nothing under workload = \"throttle\""),
            "{e}"
        );

        let e = from_toml(
            "horizon = \"10ms\"\n[[group]]\nworkload = \"fixed-loop\"\n\
             service = \"1ms\"\nburst_requests = 8\n",
            "x",
        )
        .unwrap_err();
        assert!(
            e.0.contains("only used by workload = \"idle-burst\""),
            "{e}"
        );

        // Keys are still accepted in their own arm.
        let ok = from_toml(
            "horizon = \"10ms\"\n[[group]]\nworkload = \"infinite-loop\"\n\
             request = \"1ms\"\nwarmup_rounds = 10\n",
            "x",
        );
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn misplaced_arrival_arm_keys_name_the_owning_arm() {
        let e = from_toml(
            "horizon = \"10ms\"\n[[group]]\nworkload = \"throttle\"\n\
             request = \"1ms\"\nrate_hz = 50.0\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("only used by arrival = \"poisson\""), "{e}");
    }

    #[test]
    fn keys_in_the_wrong_table_get_pointed_errors() {
        // A group key above the first [[group]] header.
        let e = from_toml(
            "horizon = \"10ms\"\nrequest = \"1ms\"\n\
             [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("group key"), "{e}");
        assert!(e.0.contains("[[group]]"), "{e}");

        // A top-level key inside a group.
        let e = from_toml(
            "horizon = \"10ms\"\n[[group]]\nworkload = \"throttle\"\n\
             request = \"1ms\"\nschedulers = \"all\"\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("top-level key"), "{e}");

        // A plain typo inside a group.
        let e = from_toml(
            "horizon = \"10ms\"\n[[group]]\nworkload = \"throttle\"\nrequst = \"1ms\"\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("unknown key"), "{e}");
        assert!(e.0.contains("did you mean \"request\"?"), "{e}");
    }

    #[test]
    fn legacy_rebalance_boolean_earns_a_compat_note() {
        let with_rebalance = |v: &str| {
            format!(
                "horizon = \"10ms\"\ndevices = 2\nrebalance = {v}\n\
                 [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n"
            )
        };
        let spec = from_toml(&with_rebalance("true"), "x").unwrap();
        assert_eq!(spec.compat_notes.len(), 1, "{:?}", spec.compat_notes);
        assert!(spec.compat_notes[0].contains("legacy"));
        let spec = from_toml(&with_rebalance("\"count-diff\""), "x").unwrap();
        assert!(spec.compat_notes.is_empty());
    }

    #[test]
    fn fleet_validation_rejects_ambiguous_layouts() {
        let e = from_toml(
            "horizon = \"10ms\"\nhosts = 2\n[[device]]\nnuma = 0\n[[device]]\nnuma = 0\n\
             [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("[[device]]"), "{e}");

        let e = from_toml(
            "horizon = \"10ms\"\nhosts = 2\ndevices = 2\n\
             [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\ndevice = 0\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("pins a device"), "{e}");

        let e = from_toml(
            "horizon = \"10ms\"\nhosts = 3\n[[host]]\ndevices = 1\n\
             [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("[[host]]"), "{e}");

        let e = from_toml(
            "horizon = \"10ms\"\nhosts = 0\n\
             [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("hosts"), "{e}");

        let e = from_toml(
            "horizon = \"10ms\"\nfleet_placement = \"most-loaded\"\n\
             [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("fleet placement"), "{e}");

        let e = from_toml(
            "horizon = \"10ms\"\nfleet_rebalance = \"sometimes\"\n\
             [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n",
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("off, count-diff"), "{e}");
    }

    const FAULTY: &str = r#"
name = "faulty"
horizon = "50ms"
devices = 2
schedulers = ["disengaged-fq"]
fault.watchdog = "5ms"
fault.retry_budget = 3
fault.backoff_base = "200us"
fault.backoff_cap = "4ms"

[[group]]
workload = "throttle"
request = "200us"
count = 3

[[fault]]
at = "10ms"
kind = "device-remove"
device = 1

[[fault]]
at = "20ms"
kind = "device-add"
device = 1

[[fault]]
at = "5ms"
kind = "hang"
"#;

    #[test]
    fn fault_blocks_and_config_round_trip() {
        let spec = from_toml(FAULTY, "x").unwrap();
        assert_eq!(spec.faults.len(), 3);
        assert!(matches!(
            spec.faults[0].kind,
            FaultKind::DeviceRemove { device } if device == DeviceId::new(1)
        ));
        assert!(matches!(
            spec.faults[2].kind,
            FaultKind::TaskHang { task: None }
        ));
        assert_eq!(
            spec.fault_config.watchdog,
            Some(SimDuration::from_millis(5))
        );
        assert_eq!(spec.fault_config.retry_budget, 3);
        assert_eq!(
            spec.fault_config.backoff_base,
            SimDuration::from_micros(200)
        );
        // No explicit axis: a faulted scenario defaults to one "all"
        // cell per (scheduler, seed).
        assert_eq!(spec.effective_fault_modes(), vec![FaultMode::All]);
        assert_eq!(spec.cell_count(), 1);
    }

    #[test]
    fn faults_axis_parses_labels_and_expands_cells() {
        let text = format!("faults = [\"none\", \"device\"]\n{}", FAULTY.trim_start());
        let spec = from_toml(&text, "x").unwrap();
        assert_eq!(spec.fault_modes, vec![FaultMode::None, FaultMode::Device]);
        assert_eq!(spec.cell_count(), 2);
        let e = from_toml(
            &format!("faults = \"devcie\"\n{}", FAULTY.trim_start()),
            "x",
        )
        .unwrap_err();
        assert!(e.0.contains("did you mean \"device\""), "{e}");
    }

    #[test]
    fn fault_blocks_reject_bad_kinds_operands_and_targets() {
        let bad_kind = "horizon = \"10ms\"\n[[group]]\nworkload = \"throttle\"\n\
             request = \"1ms\"\n[[fault]]\nat = \"1ms\"\nkind = \"explode\"\n";
        let e = from_toml(bad_kind, "x").unwrap_err();
        assert!(e.0.contains("unknown fault kind"), "{e}");

        let missing_device = "horizon = \"10ms\"\n[[group]]\nworkload = \"throttle\"\n\
             request = \"1ms\"\n[[fault]]\nat = \"1ms\"\nkind = \"device-remove\"\n";
        let e = from_toml(missing_device, "x").unwrap_err();
        assert!(e.0.contains("requires device"), "{e}");

        let wrong_operand = "horizon = \"10ms\"\n[[group]]\nworkload = \"throttle\"\n\
             request = \"1ms\"\n[[fault]]\nat = \"1ms\"\nkind = \"hang\"\ndevice = 0\n";
        let e = from_toml(wrong_operand, "x").unwrap_err();
        assert!(e.0.contains("does not take \"device\""), "{e}");

        // Out-of-range device target: caught by spec validation.
        let oob = "horizon = \"10ms\"\ndevices = 2\n[[group]]\nworkload = \"throttle\"\n\
             request = \"1ms\"\n[[fault]]\nat = \"1ms\"\nkind = \"device-remove\"\ndevice = 5\n";
        let e = from_toml(oob, "x").unwrap_err();
        assert!(e.0.contains("targets device 5"), "{e}");

        // Host faults need a multi-host scenario.
        let single_host = "horizon = \"10ms\"\n[[group]]\nworkload = \"throttle\"\n\
             request = \"1ms\"\n[[fault]]\nat = \"1ms\"\nkind = \"host-fail\"\nhost = 0\n";
        let e = from_toml(single_host, "x").unwrap_err();
        assert!(e.0.contains("hosts > 1"), "{e}");
    }

    #[test]
    fn fault_config_rejects_zero_durations_and_stray_keys() {
        let zero_watchdog = "fault.watchdog = \"0ms\"\nhorizon = \"10ms\"\n\
             [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        let e = from_toml(zero_watchdog, "x").unwrap_err();
        assert!(e.0.contains("fault.watchdog must be positive"), "{e}");

        let cap_below_base = "fault.backoff_base = \"4ms\"\nfault.backoff_cap = \"1ms\"\n\
             horizon = \"10ms\"\n[[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        let e = from_toml(cap_below_base, "x").unwrap_err();
        assert!(
            e.0.contains("fault.backoff_cap must be >= fault.backoff_base"),
            "{e}"
        );

        let stray = "fault.watchdgo = \"1ms\"\nhorizon = \"10ms\"\n\
             [[group]]\nworkload = \"throttle\"\nrequest = \"1ms\"\n";
        let e = from_toml(stray, "x").unwrap_err();
        assert!(e.0.contains("did you mean"), "{e}");
    }
}
