//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] describes a *dynamic* workload mix: groups of
//! tenants, each with a workload model, an arrival process (all at
//! start, staggered, explicit instants, or open-loop Poisson), and a
//! lifetime model (run forever, a fixed stay, or an exponentially
//! distributed stay). The spec also carries the sweep axes — seeds and
//! scheduler policies — so a single file defines a full experiment
//! matrix.
//!
//! Specs are built either programmatically (the builder methods here)
//! or from a TOML file ([`crate::toml_file`]).

use neon_core::cost::{CostModel, SchedParams};
use neon_core::fault::{FaultConfig, FaultEvent, FaultKind, FaultMode, FaultPlan};
use neon_core::fleet::{FleetPlacementKind, FleetRebalanceKind};
use neon_core::placement::PlacementKind;
use neon_core::rebalance::RebalanceKind;
use neon_core::sched::{Scheduler, SchedulerKind};
use neon_core::telemetry::MetricsMode;
use neon_core::workload::{BoxedWorkload, FixedLoop, WithWorkingSet};
use neon_gpu::{ClusterInterconnect, DeviceSlotSpec, GpuConfig, InterconnectParams, Topology};
use neon_sim::SimDuration;
use neon_workloads::adversary::{Batcher, IdleBurst, InfiniteLoop};
use neon_workloads::{app, Throttle};

/// A malformed scenario (unknown workload, empty matrix, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// The workload model a tenant group runs.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The paper's Throttle microbenchmark: back-to-back blocking
    /// requests of a fixed size, optionally with off periods/jitter.
    Throttle {
        /// Request service time.
        request: SimDuration,
        /// Fraction of each round spent sleeping (0 = saturating).
        off_ratio: f64,
        /// Uniform jitter spread applied to request sizes.
        jitter: f64,
    },
    /// A fixed submit/wait loop (one request per round).
    FixedLoop {
        /// Request service time.
        service: SimDuration,
        /// CPU gap between rounds.
        gap: SimDuration,
        /// Rounds before a voluntary exit; `None` loops forever.
        rounds: Option<u64>,
    },
    /// One of the Table 1 application models, by name.
    App {
        /// Application name as in `neon_workloads::app::all_apps`.
        name: String,
    },
    /// The greedy-batching adversary.
    Batcher {
        /// Device time per submitted batch.
        batch: SimDuration,
    },
    /// The idle-then-burst hoarder adversary.
    IdleBurst {
        /// Idle stretch between bursts.
        idle: SimDuration,
        /// Requests per burst.
        burst_requests: u32,
        /// Request service time within a burst.
        request: SimDuration,
    },
    /// The infinite-loop adversary: behaves for `warmup_rounds`, then
    /// submits an unbounded request (schedulers must kill or preempt).
    InfiniteLoop {
        /// Well-behaved rounds before the attack.
        warmup_rounds: u32,
        /// Service time of the well-behaved warmup requests.
        request: SimDuration,
    },
}

impl WorkloadSpec {
    /// Instantiates the workload model.
    ///
    /// Parameters the underlying constructors would `assert!` on are
    /// range-checked here first, so invalid scenario-file input
    /// surfaces as a [`SpecError`] instead of a panic.
    pub fn build(&self) -> Result<BoxedWorkload, SpecError> {
        match self {
            WorkloadSpec::Throttle {
                request,
                off_ratio,
                jitter,
            } => {
                if request.is_zero() {
                    return Err(err("throttle request must be positive"));
                }
                if !(0.0..1.0).contains(off_ratio) {
                    return Err(err(format!(
                        "throttle off_ratio must be in [0, 1), got {off_ratio}"
                    )));
                }
                Ok(Box::new(
                    Throttle::new(*request)
                        .with_off_ratio(*off_ratio)
                        .with_jitter(*jitter),
                ))
            }
            WorkloadSpec::FixedLoop {
                service,
                gap,
                rounds,
            } => Ok(match rounds {
                Some(n) => Box::new(FixedLoop::new("fixed-loop", *service, *gap, *n)),
                None => Box::new(FixedLoop::endless("fixed-loop", *service, *gap)),
            }),
            WorkloadSpec::App { name } => {
                let spec = app::app_by_name(name)
                    .ok_or_else(|| err(format!("unknown application {name:?}")))?;
                Ok(Box::new(spec.build()))
            }
            WorkloadSpec::Batcher { batch } => {
                if batch.is_zero() {
                    return Err(err("batcher batch must be positive"));
                }
                Ok(Box::new(Batcher::new(*batch)))
            }
            WorkloadSpec::IdleBurst {
                idle,
                burst_requests,
                request,
            } => {
                if *burst_requests == 0 {
                    return Err(err("idle-burst burst_requests must be positive"));
                }
                Ok(Box::new(IdleBurst::new(*idle, *burst_requests, *request)))
            }
            WorkloadSpec::InfiniteLoop {
                warmup_rounds,
                request,
            } => Ok(Box::new(InfiniteLoop::new(*warmup_rounds, *request))),
        }
    }
}

/// When a group's members show up.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// Every member is present at time zero (closed-loop start).
    AtStart,
    /// Member `i` arrives at `i * gap`.
    Staggered {
        /// Spacing between consecutive members.
        gap: SimDuration,
    },
    /// Explicit arrival instants, one per member.
    At {
        /// Arrival times (offsets from simulation start).
        times: Vec<SimDuration>,
    },
    /// Open-loop Poisson arrivals at `rate_hz`, beginning at `start`.
    Poisson {
        /// Mean arrivals per simulated second.
        rate_hz: f64,
        /// Offset of the first possible arrival.
        start: SimDuration,
    },
}

/// How long a member stays once admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum LifetimeSpec {
    /// Until its workload finishes or the horizon ends the run.
    Forever,
    /// Departs exactly this long after admission.
    Fixed(SimDuration),
    /// Departs after an exponentially distributed stay.
    Exponential {
        /// Mean stay.
        mean: SimDuration,
    },
}

/// A group of identically configured tenants.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantGroup {
    /// Group name (reports and traces).
    pub name: String,
    /// Number of members.
    pub count: u32,
    /// The workload each member runs.
    pub workload: WorkloadSpec,
    /// The arrival process.
    pub arrival: ArrivalSpec,
    /// The lifetime model.
    pub lifetime: LifetimeSpec,
    /// Pins every member to this device index, bypassing the placement
    /// policy (and rebalancing). `None` lets the policy place them.
    pub device: Option<u32>,
    /// Overrides the [`SchedParams`] of the device the group is pinned
    /// to — per-device scheduler tuning. Requires
    /// [`TenantGroup::device`]: params belong to a device's scheduler
    /// instance, so an unpinned group has no device to attach them to
    /// (validation rejects that combination cleanly).
    pub params: Option<SchedParams>,
    /// Overrides each member's device-resident working-set size in
    /// bytes — what topology-aware placement and migration charge to
    /// move. `None` keeps the workload's own default (64 MiB).
    pub working_set: Option<u64>,
}

impl TenantGroup {
    /// A single-member group present from the start, forever.
    pub fn new(name: impl Into<String>, workload: WorkloadSpec) -> Self {
        TenantGroup {
            name: name.into(),
            count: 1,
            workload,
            arrival: ArrivalSpec::AtStart,
            lifetime: LifetimeSpec::Forever,
            device: None,
            params: None,
            working_set: None,
        }
    }

    /// Sets the member count.
    pub fn count(mut self, n: u32) -> Self {
        self.count = n;
        self
    }

    /// Sets the arrival process.
    pub fn arrival(mut self, arrival: ArrivalSpec) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the lifetime model.
    pub fn lifetime(mut self, lifetime: LifetimeSpec) -> Self {
        self.lifetime = lifetime;
        self
    }

    /// Pins the group to a device.
    pub fn device(mut self, device: u32) -> Self {
        self.device = Some(device);
        self
    }

    /// Overrides the pinned device's scheduler parameters.
    pub fn params(mut self, params: SchedParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Overrides each member's working-set size (bytes).
    pub fn working_set(mut self, bytes: u64) -> Self {
        self.working_set = Some(bytes);
        self
    }

    /// Instantiates one member's workload, applying the group's
    /// working-set override. Call only on a validated spec.
    pub fn build_member(&self) -> Result<BoxedWorkload, SpecError> {
        let workload = self.workload.build()?;
        Ok(match self.working_set {
            Some(bytes) => Box::new(WithWorkingSet::new(workload, bytes)),
            None => workload,
        })
    }
}

/// A custom scheduler factory (see [`ScenarioSpec::custom_scheduler`]).
/// Wraps a plain `fn` pointer so the spec stays `Clone` and
/// `PartialEq`; equality compares factory addresses, which is exactly
/// the "same experiment hook installed" question the sweep cares about.
#[derive(Debug, Clone, Copy)]
pub struct CustomScheduler(pub fn(SchedParams) -> Box<dyn Scheduler>);

impl CustomScheduler {
    /// Builds the scheduler for one device.
    pub fn build(&self, params: SchedParams) -> Box<dyn Scheduler> {
        (self.0)(params)
    }
}

impl PartialEq for CustomScheduler {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::fn_addr_eq(self.0, other.0)
    }
}

/// A complete scenario: workload dynamics plus the sweep matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (reports, file stem by default).
    pub name: String,
    /// Simulated duration of each run.
    pub horizon: SimDuration,
    /// Seeds to sweep (one run per seed per scheduler per placement).
    pub seeds: Vec<u64>,
    /// Scheduler policies to sweep.
    pub schedulers: Vec<SchedulerKind>,
    /// Number of devices in each cell's world (default 1).
    pub devices: usize,
    /// Per-device heterogeneous slots (`[[device]]` blocks in TOML):
    /// each names a [`GpuConfig`] and a `(numa, switch)` interconnect
    /// coordinate. Empty means [`ScenarioSpec::devices`] identical
    /// default devices on one switch.
    pub device_slots: Vec<DeviceSlotSpec>,
    /// Interconnect transfer timing (the `topology.*` keys in TOML).
    /// `None` means free data movement — the flat pre-topology model.
    pub interconnect: Option<InterconnectParams>,
    /// Number of hosts in each cell's fleet (default 1 — one bare
    /// [`neon_core::world::World`], the untouched single-host path).
    /// With more, every cell builds a [`neon_core::fleet::Fleet`] of
    /// identical hosts, each with [`ScenarioSpec::devices`] devices.
    pub hosts: usize,
    /// Per-host device counts (`[[host]]` blocks in TOML) for
    /// heterogeneous host sizes. Empty means [`ScenarioSpec::hosts`]
    /// identical hosts.
    pub host_devices: Vec<usize>,
    /// Fleet placement policies to sweep (default least-loaded only;
    /// moot — but harmless — on single-host scenarios).
    pub fleet_placements: Vec<FleetPlacementKind>,
    /// Cross-host rebalancing policy (default off). A single value,
    /// not an axis: cross-host migration is an operational switch, not
    /// usually a comparison dimension.
    pub fleet_rebalance: FleetRebalanceKind,
    /// Host-to-host transfer timing (the `cluster.*` keys in TOML).
    /// `None` means free cross-host movement.
    pub cluster: Option<ClusterInterconnect>,
    /// Placement policies to sweep (default least-loaded only; moot —
    /// but harmless — on single-device scenarios).
    pub placements: Vec<PlacementKind>,
    /// Rebalancing policies to sweep (default off only). TOML's legacy
    /// `rebalance = true` maps to a single [`RebalanceKind::CountDiff`]
    /// entry.
    pub rebalances: Vec<RebalanceKind>,
    /// Scenario-wide [`SchedParams`] override (every device, unless a
    /// pinned group overrides its device).
    pub params: Option<SchedParams>,
    /// Scenario-wide [`CostModel`] override. The cost model describes
    /// the simulated *host* (fault costs, polling cadence), so there is
    /// deliberately no per-group or per-device form.
    pub cost: Option<CostModel>,
    /// How per-task latency samples are aggregated:
    /// [`MetricsMode::Exact`] (the default; unbounded per-task vectors,
    /// the oracle) or [`MetricsMode::Streaming`] (fixed-memory
    /// histograms — required for open-loop runs of arbitrary length).
    pub metrics: MetricsMode,
    /// Telemetry sampler cadence ([`neon_core::world::WorldConfig::sample_every`]);
    /// `None` (the default) disables the sampler entirely.
    pub sample_every: Option<SimDuration>,
    /// Capture each cell's event trace for export (`neon run
    /// --trace-out`). CLI-driven; not a TOML key, since traces are a
    /// per-invocation debugging concern, not part of the experiment.
    pub capture_trace: bool,
    /// Record per-request submission/service logs
    /// ([`neon_core::world::WorldConfig::record_requests`]) — the
    /// Figure 2 / Table 1 calibration harnesses need them; costs memory
    /// on long runs, so off by default and not a TOML key.
    pub record_requests: bool,
    /// Experiment hook: a factory that replaces the scheduler axis with
    /// a custom policy (e.g. §3's trap-per-request stack). When set,
    /// every cell runs this scheduler and the cell's
    /// [`SchedulerKind`] is only a label. A plain `fn` pointer keeps
    /// the spec `Clone`/`PartialEq`; not expressible in TOML by design.
    pub custom_scheduler: Option<CustomScheduler>,
    /// The deterministic fault schedule (`[[fault]]` blocks in TOML),
    /// in time order. Empty means no faults — every cell runs the
    /// fault-free model byte-identically.
    pub faults: Vec<FaultEvent>,
    /// Recovery tuning for the fault machinery (the `fault.*` keys in
    /// TOML: watchdog timeout, retry budget, backoff curve).
    pub fault_config: FaultConfig,
    /// The `faults` sweep axis: which categories of the schedule each
    /// cell injects. Empty (the default) resolves to a single mode —
    /// [`FaultMode::All`] when the scenario declares faults,
    /// [`FaultMode::None`] otherwise — so the cell count of fault-free
    /// scenarios is unchanged (see
    /// [`ScenarioSpec::effective_fault_modes`]).
    pub fault_modes: Vec<FaultMode>,
    /// The tenant groups.
    pub groups: Vec<TenantGroup>,
    /// Compatibility notes collected while loading (e.g. the legacy
    /// `rebalance = true` boolean). Harmless by default; `neon check`
    /// prints them as warnings and `--strict` turns them into errors.
    pub compat_notes: Vec<String>,
}

impl ScenarioSpec {
    /// A scenario with the default matrix: one seed, every policy, one
    /// device.
    pub fn new(name: impl Into<String>, horizon: SimDuration) -> Self {
        ScenarioSpec {
            name: name.into(),
            horizon,
            seeds: vec![0xA5D0],
            schedulers: SchedulerKind::ALL.to_vec(),
            devices: 1,
            device_slots: Vec::new(),
            interconnect: None,
            hosts: 1,
            host_devices: Vec::new(),
            fleet_placements: vec![FleetPlacementKind::LeastLoaded],
            fleet_rebalance: FleetRebalanceKind::Off,
            cluster: None,
            placements: vec![PlacementKind::LeastLoaded],
            rebalances: vec![RebalanceKind::Off],
            params: None,
            cost: None,
            metrics: MetricsMode::Exact,
            sample_every: None,
            capture_trace: false,
            record_requests: false,
            custom_scheduler: None,
            faults: Vec::new(),
            fault_config: FaultConfig::default(),
            fault_modes: Vec::new(),
            groups: Vec::new(),
            compat_notes: Vec::new(),
        }
    }

    /// Appends a fault event to the schedule.
    pub fn fault(mut self, at: SimDuration, kind: FaultKind) -> Self {
        self.faults.push(FaultEvent {
            at: neon_sim::SimTime::ZERO + at,
            kind,
        });
        self
    }

    /// Sets the recovery tuning (watchdog, retry budget, backoff).
    pub fn fault_config(mut self, config: FaultConfig) -> Self {
        self.fault_config = config;
        self
    }

    /// Replaces the fault-mode axis.
    pub fn fault_modes(mut self, modes: Vec<FaultMode>) -> Self {
        self.fault_modes = modes;
        self
    }

    /// `true` if the scenario engages the fault machinery at all:
    /// scheduled events, or a non-default recovery config (e.g. a
    /// watchdog armed with no injected faults).
    pub fn has_faults(&self) -> bool {
        !self.faults.is_empty() || self.fault_config != FaultConfig::default()
    }

    /// The resolved `faults` axis: the explicit modes when given,
    /// otherwise a single mode — [`FaultMode::All`] if the scenario
    /// declares faults, [`FaultMode::None`] if not — so fault-free
    /// scenarios keep their exact cell count (and bytes).
    pub fn effective_fault_modes(&self) -> Vec<FaultMode> {
        if !self.fault_modes.is_empty() {
            self.fault_modes.clone()
        } else if self.has_faults() {
            vec![FaultMode::All]
        } else {
            vec![FaultMode::None]
        }
    }

    /// The scenario's full fault plan (schedule + recovery config).
    /// Cells filter it by their [`FaultMode`].
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new(self.fault_config.clone());
        for ev in &self.faults {
            plan.push(ev.at, ev.kind);
        }
        plan
    }

    /// Enables per-request submission/service logging in every cell.
    pub fn record_requests(mut self, record: bool) -> Self {
        self.record_requests = record;
        self
    }

    /// Installs a custom scheduler factory overriding the scheduler
    /// axis (see [`ScenarioSpec::custom_scheduler`]).
    pub fn custom_scheduler(mut self, factory: fn(SchedParams) -> Box<dyn Scheduler>) -> Self {
        self.custom_scheduler = Some(CustomScheduler(factory));
        self
    }

    /// Sets the metrics aggregation mode.
    pub fn metrics(mut self, mode: MetricsMode) -> Self {
        self.metrics = mode;
        self
    }

    /// Enables the periodic telemetry sampler at this cadence.
    pub fn sample_every(mut self, every: SimDuration) -> Self {
        self.sample_every = Some(every);
        self
    }

    /// Enables per-cell trace capture (for `--trace-out`).
    pub fn capture_trace(mut self, capture: bool) -> Self {
        self.capture_trace = capture;
        self
    }

    /// Replaces the seed axis.
    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Replaces the scheduler axis.
    pub fn schedulers(mut self, schedulers: Vec<SchedulerKind>) -> Self {
        self.schedulers = schedulers;
        self
    }

    /// Sets the device count.
    pub fn devices(mut self, devices: usize) -> Self {
        self.devices = devices;
        self
    }

    /// Adds a heterogeneous device slot; the device count follows the
    /// slot list.
    pub fn device_slot(mut self, slot: DeviceSlotSpec) -> Self {
        self.device_slots.push(slot);
        self.devices = self.device_slots.len();
        self
    }

    /// Sets the interconnect transfer timing.
    pub fn interconnect(mut self, params: InterconnectParams) -> Self {
        self.interconnect = Some(params);
        self
    }

    /// The host topology this scenario describes, if it describes one:
    /// `None` when there are neither device slots nor interconnect
    /// parameters (the flat legacy path). Call only on a validated
    /// spec.
    pub fn topology(&self) -> Option<Topology> {
        if self.device_slots.is_empty() && self.interconnect.is_none() {
            return None;
        }
        let slots = if self.device_slots.is_empty() {
            (0..self.devices)
                .map(|_| DeviceSlotSpec::near(GpuConfig::default()))
                .collect()
        } else {
            self.device_slots.clone()
        };
        Some(Topology::new(
            slots,
            self.interconnect
                .clone()
                .unwrap_or_else(InterconnectParams::free),
        ))
    }

    /// Sets the host count (identical hosts).
    pub fn hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts;
        self
    }

    /// Adds a heterogeneous host with this many devices; the host
    /// count follows the list.
    pub fn host_with_devices(mut self, devices: usize) -> Self {
        self.host_devices.push(devices);
        self.hosts = self.host_devices.len();
        self
    }

    /// Replaces the fleet placement axis.
    pub fn fleet_placements(mut self, kinds: Vec<FleetPlacementKind>) -> Self {
        self.fleet_placements = kinds;
        self
    }

    /// Sets the cross-host rebalancing policy.
    pub fn fleet_rebalance(mut self, kind: FleetRebalanceKind) -> Self {
        self.fleet_rebalance = kind;
        self
    }

    /// Sets the host-to-host transfer timing.
    pub fn cluster(mut self, cluster: ClusterInterconnect) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Device count of every host, in host order. Call only on a
    /// validated spec.
    pub fn host_device_counts(&self) -> Vec<usize> {
        if self.host_devices.is_empty() {
            vec![self.devices; self.hosts]
        } else {
            self.host_devices.clone()
        }
    }

    /// Replaces the placement axis.
    pub fn placements(mut self, placements: Vec<PlacementKind>) -> Self {
        self.placements = placements;
        self
    }

    /// Sets a single rebalancing policy.
    pub fn rebalance(mut self, kind: RebalanceKind) -> Self {
        self.rebalances = vec![kind];
        self
    }

    /// Replaces the rebalancing axis.
    pub fn rebalances(mut self, kinds: Vec<RebalanceKind>) -> Self {
        self.rebalances = kinds;
        self
    }

    /// Sets the scenario-wide scheduler-parameter override.
    pub fn params(mut self, params: SchedParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Sets the scenario-wide cost-model override.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Adds a tenant group.
    pub fn group(mut self, group: TenantGroup) -> Self {
        self.groups.push(group);
        self
    }

    /// Number of sweep cells this scenario expands to.
    pub fn cell_count(&self) -> usize {
        self.seeds.len()
            * self.schedulers.len()
            * self.placements.len()
            * self.fleet_placements.len()
            * self.rebalances.len()
            * self.effective_fault_modes().len()
    }

    /// Effective [`SchedParams`] per device: the scenario-wide override
    /// (or the defaults), with pinned-group overrides applied to their
    /// devices. Call only on a validated spec.
    pub fn device_params(&self) -> Vec<SchedParams> {
        let base = self.params.clone().unwrap_or_default();
        let mut per_device = vec![base; self.devices];
        for g in &self.groups {
            if let (Some(d), Some(p)) = (g.device, &g.params) {
                per_device[d as usize] = p.clone();
            }
        }
        per_device
    }

    /// Checks the spec for structural problems, including that every
    /// workload is instantiable.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.horizon.is_zero() {
            return Err(err("horizon must be positive"));
        }
        if self.seeds.is_empty() {
            return Err(err("at least one seed required"));
        }
        if self.sample_every.is_some_and(|d| d.is_zero()) {
            return Err(err("sample_every must be positive"));
        }
        if self.schedulers.is_empty() {
            return Err(err("at least one scheduler required"));
        }
        if self.devices == 0 {
            return Err(err("devices must be at least 1"));
        }
        if !self.device_slots.is_empty() && self.device_slots.len() != self.devices {
            return Err(err(format!(
                "{} [[device]] block(s) but devices = {}; drop the devices key or \
                 make them match",
                self.device_slots.len(),
                self.devices
            )));
        }
        for (i, a) in self.device_slots.iter().enumerate() {
            for b in &self.device_slots[..i] {
                if a.switch_id == b.switch_id && a.numa != b.numa {
                    return Err(err(format!(
                        "switch {} spans NUMA nodes {} and {}: a PCIe switch \
                         lives on one NUMA node",
                        a.switch_id, a.numa, b.numa
                    )));
                }
            }
        }
        if self.hosts == 0 {
            return Err(err("hosts must be at least 1"));
        }
        if !self.host_devices.is_empty() && self.host_devices.len() != self.hosts {
            return Err(err(format!(
                "{} [[host]] block(s) but hosts = {}; drop the hosts key or \
                 make them match",
                self.host_devices.len(),
                self.hosts
            )));
        }
        if let Some(i) = self.host_devices.iter().position(|&d| d == 0) {
            return Err(err(format!("host {i} has devices = 0")));
        }
        if self.fleet_placements.is_empty() {
            return Err(err("at least one fleet placement policy required"));
        }
        if self.hosts > 1 {
            if !self.device_slots.is_empty() {
                return Err(err(
                    "[[device]] blocks describe one host's topology and cannot be \
                     combined with hosts > 1; size hosts with [[host]] blocks instead",
                ));
            }
            if let Some(g) = self.groups.iter().find(|g| g.device.is_some()) {
                return Err(err(format!(
                    "group {:?} pins a device, but with hosts > 1 a device index is \
                     ambiguous across hosts; drop the pin and let fleet placement route it",
                    g.name
                )));
            }
        }
        if self.placements.is_empty() {
            return Err(err("at least one placement policy required"));
        }
        if self.rebalances.is_empty() {
            return Err(err("at least one rebalance policy required"));
        }
        // Fault schedule sanity: recovery knobs must be positive (the
        // plan reports the offending key), and every event must target
        // something the scenario actually has.
        self.fault_plan().validate().map_err(err)?;
        for (i, ev) in self.faults.iter().enumerate() {
            match ev.kind {
                FaultKind::DeviceRemove { device } | FaultKind::DeviceAdd { device } => {
                    if device.index() >= self.devices {
                        return Err(err(format!(
                            "fault[{i}] targets device {} but the scenario has {} device(s)",
                            device.index(),
                            self.devices
                        )));
                    }
                }
                FaultKind::HostFail { host } | FaultKind::HostRecover { host } => {
                    if self.hosts <= 1 {
                        return Err(err(format!(
                            "fault[{i}] is host-scope ({}) but the scenario has one host; \
                             host faults need hosts > 1 so tenants can re-admit elsewhere",
                            ev.kind.label()
                        )));
                    }
                    if host as usize >= self.hosts {
                        return Err(err(format!(
                            "fault[{i}] targets host {host} but the scenario has {} host(s)",
                            self.hosts
                        )));
                    }
                }
                FaultKind::TaskHang { .. }
                | FaultKind::TaskCrash { .. }
                | FaultKind::SubmitError { .. } => {}
            }
        }
        for p in &self.placements {
            if let PlacementKind::Pinned(d) = p {
                if *d as usize >= self.devices {
                    return Err(err(format!(
                        "placement pinned:{d} names a device outside 0..{}",
                        self.devices
                    )));
                }
            }
        }
        if self.groups.is_empty() {
            return Err(err("at least one [[group]] required"));
        }
        let mut device_params: Vec<Option<(&str, &SchedParams)>> = vec![None; self.devices];
        for g in &self.groups {
            if let Some(d) = g.device {
                if d as usize >= self.devices {
                    return Err(err(format!(
                        "group {:?} pinned to device {d}, but the scenario has {} device(s)",
                        g.name, self.devices
                    )));
                }
            }
            if let Some(params) = &g.params {
                // Per-group SchedParams attach to the pinned device's
                // scheduler instance; without a pin there is no device
                // to carry them — reject instead of silently ignoring.
                let Some(d) = g.device else {
                    return Err(err(format!(
                        "group {:?} overrides sched params but is not pinned to a \
                         device; per-group params require device = <index>",
                        g.name
                    )));
                };
                match &device_params[d as usize] {
                    Some((other, existing)) if *existing != params => {
                        return Err(err(format!(
                            "groups {:?} and {:?} pin conflicting sched-param \
                             overrides to device {d}",
                            other, g.name
                        )));
                    }
                    _ => device_params[d as usize] = Some((&g.name, params)),
                }
            }
        }
        for g in &self.groups {
            if g.count == 0 {
                return Err(err(format!("group {:?} has count 0", g.name)));
            }
            g.workload.build()?;
            match &g.arrival {
                ArrivalSpec::Poisson { rate_hz, .. } if *rate_hz <= 0.0 => {
                    return Err(err(format!(
                        "group {:?}: poisson rate must be positive",
                        g.name
                    )));
                }
                ArrivalSpec::At { times } if times.len() != g.count as usize => {
                    return Err(err(format!(
                        "group {:?}: {} arrival times for {} members",
                        g.name,
                        times.len(),
                        g.count
                    )));
                }
                _ => {}
            }
            if let LifetimeSpec::Exponential { mean } = &g.lifetime {
                if mean.is_zero() {
                    return Err(err(format!(
                        "group {:?}: exponential lifetime needs a positive mean",
                        g.name
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn builder_produces_a_valid_spec() {
        let spec = ScenarioSpec::new("t", SimDuration::from_millis(100))
            .seeds(vec![1, 2])
            .schedulers(vec![SchedulerKind::Direct])
            .group(
                TenantGroup::new(
                    "small",
                    WorkloadSpec::Throttle {
                        request: us(50),
                        off_ratio: 0.0,
                        jitter: 0.0,
                    },
                )
                .count(3)
                .arrival(ArrivalSpec::Poisson {
                    rate_hz: 100.0,
                    start: SimDuration::ZERO,
                })
                .lifetime(LifetimeSpec::Fixed(SimDuration::from_millis(20))),
            );
        assert!(spec.validate().is_ok());
        assert_eq!(spec.cell_count(), 2);
    }

    #[test]
    fn validation_rejects_structural_problems() {
        let base = ScenarioSpec::new("t", SimDuration::from_millis(10));
        assert!(base.clone().validate().is_err(), "no groups");

        let g = TenantGroup::new(
            "g",
            WorkloadSpec::App {
                name: "NoSuchApp".into(),
            },
        );
        assert!(base.clone().group(g).validate().is_err(), "unknown app");

        let g = TenantGroup::new(
            "g",
            WorkloadSpec::FixedLoop {
                service: us(10),
                gap: us(0),
                rounds: None,
            },
        )
        .count(2)
        .arrival(ArrivalSpec::At {
            times: vec![SimDuration::ZERO],
        });
        assert!(
            base.clone().group(g).validate().is_err(),
            "times/count mismatch"
        );

        let g = TenantGroup::new(
            "g",
            WorkloadSpec::Batcher {
                batch: SimDuration::from_millis(5),
            },
        )
        .arrival(ArrivalSpec::Poisson {
            rate_hz: 0.0,
            start: SimDuration::ZERO,
        });
        assert!(base.group(g).validate().is_err(), "zero rate");
    }

    #[test]
    fn out_of_range_parameters_error_instead_of_panicking() {
        // These would trip constructor asserts if passed through raw.
        let bad = [
            WorkloadSpec::Throttle {
                request: us(100),
                off_ratio: 1.0,
                jitter: 0.0,
            },
            WorkloadSpec::Throttle {
                request: us(100),
                off_ratio: -0.1,
                jitter: 0.0,
            },
            WorkloadSpec::Throttle {
                request: SimDuration::ZERO,
                off_ratio: 0.0,
                jitter: 0.0,
            },
            WorkloadSpec::Batcher {
                batch: SimDuration::ZERO,
            },
            WorkloadSpec::IdleBurst {
                idle: us(100),
                burst_requests: 0,
                request: us(100),
            },
        ];
        for w in &bad {
            assert!(w.build().is_err(), "{w:?} should be a SpecError");
        }
    }

    #[test]
    fn multi_device_validation_catches_bad_pins_and_params() {
        let throttle = WorkloadSpec::Throttle {
            request: us(100),
            off_ratio: 0.0,
            jitter: 0.0,
        };
        let base = ScenarioSpec::new("md", SimDuration::from_millis(10)).devices(2);

        // Pin outside the device range.
        let spec = base
            .clone()
            .group(TenantGroup::new("g", throttle.clone()).device(2));
        assert!(spec.validate().is_err(), "pin past device count");

        // Pinned placement outside the range.
        let spec = base
            .clone()
            .placements(vec![PlacementKind::Pinned(5)])
            .group(TenantGroup::new("g", throttle.clone()));
        assert!(spec.validate().is_err(), "pinned placement out of range");

        // Per-group params without a pin: rejected, not ignored.
        let spec = base
            .clone()
            .group(TenantGroup::new("g", throttle.clone()).params(SchedParams {
                sampling_requests: 96,
                ..SchedParams::default()
            }));
        let e = spec.validate().unwrap_err();
        assert!(e.0.contains("not pinned"), "{e}");

        // Conflicting per-device params from two groups.
        let p96 = SchedParams {
            sampling_requests: 96,
            ..SchedParams::default()
        };
        let p64 = SchedParams {
            sampling_requests: 64,
            ..SchedParams::default()
        };
        let spec = base
            .clone()
            .group(
                TenantGroup::new("a", throttle.clone())
                    .device(0)
                    .params(p96.clone()),
            )
            .group(
                TenantGroup::new("b", throttle.clone())
                    .device(0)
                    .params(p64),
            );
        assert!(spec.validate().is_err(), "conflicting device params");

        // A consistent multi-device spec passes, and the per-device
        // params table reflects the override.
        let spec = base
            .group(
                TenantGroup::new("a", throttle.clone())
                    .device(0)
                    .params(p96.clone()),
            )
            .group(TenantGroup::new("b", throttle));
        spec.validate().unwrap();
        let params = spec.device_params();
        assert_eq!(params[0].sampling_requests, 96);
        assert_eq!(params[1].sampling_requests, 32);
        assert_eq!(spec.cell_count(), 7, "placement axis multiplies cells");
    }

    #[test]
    fn every_workload_kind_builds() {
        let specs = [
            WorkloadSpec::Throttle {
                request: us(100),
                off_ratio: 0.5,
                jitter: 0.1,
            },
            WorkloadSpec::FixedLoop {
                service: us(10),
                gap: us(1),
                rounds: Some(5),
            },
            WorkloadSpec::App {
                name: "BitonicSort".into(),
            },
            WorkloadSpec::Batcher {
                batch: SimDuration::from_millis(20),
            },
            WorkloadSpec::IdleBurst {
                idle: SimDuration::from_millis(10),
                burst_requests: 16,
                request: us(500),
            },
            WorkloadSpec::InfiniteLoop {
                warmup_rounds: 10,
                request: us(200),
            },
        ];
        for w in &specs {
            assert!(w.build().is_ok(), "{w:?} failed to build");
        }
    }
}
