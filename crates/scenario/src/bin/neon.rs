//! `neon` — run scenario sweeps from the command line.
//!
//! ```text
//! neon run <scenario.toml>... [--serial] [--threads N] [--out FILE] [--csv FILE] [--quiet]
//! neon check <scenario.toml>...
//! neon bench <scenario.toml>...
//! ```
//!
//! - `run` executes every (scenario × scheduler × seed) cell —
//!   in parallel by default — prints a summary table, and emits the
//!   JSON document (stdout, or `--out`).
//! - `check` parses and validates files and prints the expanded plan.
//! - `bench` runs the same plan serially and in parallel and reports
//!   the wall-clock speedup.

use std::path::PathBuf;
use std::process::ExitCode;

use neon_scenario::{emit, sweep, toml_file, ScenarioSpec};

struct Options {
    files: Vec<PathBuf>,
    serial: bool,
    threads: Option<usize>,
    out: Option<PathBuf>,
    csv: Option<PathBuf>,
    quiet: bool,
}

const USAGE: &str = "usage:
  neon run <scenario.toml>... [--serial] [--threads N] [--out FILE] [--csv FILE] [--quiet]
  neon check <scenario.toml>...
  neon bench <scenario.toml>...

Scenario files describe tenant groups (workload, arrival process,
lifetime) and the sweep axes (seeds, schedulers); see
examples/scenarios/ for the format.";

fn fail(msg: &str) -> ExitCode {
    eprintln!("neon: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        serial: false,
        threads: None,
        out: None,
        csv: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--serial" => opts.serial = true,
            "--quiet" => opts.quiet = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                opts.threads = Some(v.parse().map_err(|_| "bad --threads value".to_string())?);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a path")?;
                opts.out = Some(PathBuf::from(v));
            }
            "--csv" => {
                let v = it.next().ok_or("--csv needs a path")?;
                opts.csv = Some(PathBuf::from(v));
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag}"));
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    if opts.files.is_empty() {
        return Err("at least one scenario file required".into());
    }
    Ok(opts)
}

fn load_specs(files: &[PathBuf]) -> Result<Vec<ScenarioSpec>, String> {
    files
        .iter()
        .map(|f| toml_file(f).map_err(|e| format!("{}: {e}", f.display())))
        .collect()
}

fn cmd_check(opts: &Options) -> ExitCode {
    match load_specs(&opts.files) {
        Ok(specs) => {
            for spec in &specs {
                println!(
                    "{}: {} group(s), horizon {}, {} scheduler(s) × {} seed(s) = {} cells",
                    spec.name,
                    spec.groups.len(),
                    spec.horizon,
                    spec.schedulers.len(),
                    spec.seeds.len(),
                    spec.cell_count(),
                );
                for g in &spec.groups {
                    println!(
                        "  group {:>12}: count {:>3}, {:?}",
                        g.name, g.count, g.workload
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("neon: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_run(opts: &Options) -> ExitCode {
    let specs = match load_specs(&opts.files) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("neon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cells = sweep::plan(specs);
    let outcome = if opts.serial {
        sweep::run_serial(&cells)
    } else {
        sweep::run_parallel(&cells, opts.threads)
    };
    if !opts.quiet {
        eprintln!(
            "{} cells on {} thread(s) in {:.1} ms",
            outcome.results.len(),
            outcome.threads,
            outcome.wall.as_secs_f64() * 1e3
        );
        eprintln!("{}", emit::to_table(&outcome));
    }
    let json = emit::to_json(&outcome);
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("neon: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            if !opts.quiet {
                eprintln!("JSON written to {}", path.display());
            }
        }
        None => print!("{json}"),
    }
    if let Some(path) = &opts.csv {
        if let Err(e) = std::fs::write(path, emit::to_csv(&outcome)) {
            eprintln!("neon: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !opts.quiet {
            eprintln!("CSV written to {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_bench(opts: &Options) -> ExitCode {
    let specs = match load_specs(&opts.files) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("neon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cells = sweep::plan(specs);
    eprintln!("benchmarking {} cells: serial first...", cells.len());
    let serial = sweep::run_serial(&cells);
    eprintln!("  serial:   {:>9.1} ms", serial.wall.as_secs_f64() * 1e3);
    let parallel = sweep::run_parallel(&cells, opts.threads);
    eprintln!(
        "  parallel: {:>9.1} ms on {} threads",
        parallel.wall.as_secs_f64() * 1e3,
        parallel.threads
    );
    let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9);
    println!("speedup: {speedup:.2}x");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return fail("missing command");
    };
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    match command.as_str() {
        "run" => cmd_run(&opts),
        "check" => cmd_check(&opts),
        "bench" => cmd_bench(&opts),
        other => fail(&format!("unknown command {other:?}")),
    }
}
