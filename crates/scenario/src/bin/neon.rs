//! `neon` — run scenario sweeps from the command line.
//!
//! ```text
//! neon run <scenario.toml>... [--serial] [--threads N] [--out FILE] [--csv FILE]
//!                             [--devices N] [--hosts N] [--placement P[,P...]]
//!                             [--fleet-placement F[,F...]]
//!                             [--rebalance R[,R...]] [--faults M[,M...]] [--quiet]
//!                             [--metrics exact|streaming] [--sample-every DUR]
//!                             [--timeline FILE] [--trace-out FILE]
//! neon check <scenario.toml>... [--strict]
//! neon bench <scenario.toml>... [--threads N[,N...]] [--out FILE]
//! ```
//!
//! - `run` executes every (scenario × scheduler × placement × fleet
//!   placement × rebalance × seed) cell — in parallel by default —
//!   prints a summary table, and emits the JSON document (stdout, or
//!   `--out`).
//! - `check` parses and validates files and prints the expanded plan.
//!   The loader rejects unknown or misplaced keys outright (with a
//!   "did you mean" hint); `--strict` additionally turns compatibility
//!   notes — legacy spellings that still parse — into errors.
//! - `bench` runs the same plan serially, then once in parallel per
//!   requested thread count (`--threads 1,2,4,8`; default: one run at
//!   the host's available parallelism), reports the wall-clock
//!   speedups and simulator throughput (simulated events per host
//!   second), and emits the machine-readable perf-trajectory document
//!   (stdout, or `--out BENCH_core.json`).
//!
//! `--devices`, `--hosts`, `--placement`, `--fleet-placement`,
//! `--rebalance` and `--faults` override the scenario files, so any
//! scenario can be rerun on a larger topology, a whole fleet of
//! hosts, a different migration policy, or a different slice of its
//! fault schedule (`--faults none,device,task,host,all`) without
//! editing it. The telemetry
//! flags do the same for the observability axis: `--metrics` selects
//! the exact or streaming pipeline, `--timeline FILE` turns on the
//! periodic device sampler and writes the timelines (JSON, or CSV
//! when FILE ends in `.csv`), `--sample-every DUR` sets its cadence
//! (default: horizon/200), and `--trace-out FILE` captures the
//! per-cell event traces as JSONL.

use std::path::PathBuf;
use std::process::ExitCode;

use neon_core::fault::FaultMode;
use neon_core::fleet::FleetPlacementKind;
use neon_core::placement::PlacementKind;
use neon_core::rebalance::RebalanceKind;
use neon_core::telemetry::MetricsMode;
use neon_scenario::{emit, parse_duration, sweep, toml_file, ScenarioSpec};
use neon_sim::SimDuration;

struct Options {
    files: Vec<PathBuf>,
    serial: bool,
    /// `check --strict`: compatibility notes become errors.
    strict: bool,
    /// `--threads` accepts a comma list; `run` requires a single
    /// value, `bench` sweeps one parallel run per entry.
    threads: Option<Vec<usize>>,
    out: Option<PathBuf>,
    csv: Option<PathBuf>,
    quiet: bool,
    devices: Option<usize>,
    hosts: Option<usize>,
    placements: Option<Vec<PlacementKind>>,
    fleet_placements: Option<Vec<FleetPlacementKind>>,
    rebalances: Option<Vec<RebalanceKind>>,
    faults: Option<Vec<FaultMode>>,
    metrics: Option<MetricsMode>,
    sample_every: Option<SimDuration>,
    timeline: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

const USAGE: &str = "usage:
  neon run <scenario.toml>... [--serial] [--threads N] [--out FILE] [--csv FILE]
                              [--devices N] [--hosts N] [--placement P[,P...]]
                              [--fleet-placement F[,F...]]
                              [--rebalance R[,R...]] [--faults M[,M...]] [--quiet]
                              [--metrics exact|streaming] [--sample-every DUR]
                              [--timeline FILE] [--trace-out FILE]
  neon check <scenario.toml>... [--strict] [--devices N] [--hosts N] [--placement P[,P...]]
                                [--fleet-placement F[,F...]] [--rebalance R[,R...]]
                                [--faults M[,M...]]
  neon bench <scenario.toml>... [--out FILE] [--threads N[,N...]]
                                [--devices N] [--placement P[,P...]] [--rebalance R[,R...]]

Scenario files describe tenant groups (workload, arrival process,
lifetime, optional device pinning, working_set), the host topology
([[device]] blocks with numa/switch coordinates plus topology.* keys),
the fleet (hosts = N or [[host]] blocks, fleet_placement,
cluster.* keys), and the sweep axes (seeds, schedulers, placement
policies, fleet placement policies, rebalance policies); see
examples/scenarios/ for the format. --devices, --hosts, --placement,
--fleet-placement and --rebalance override the scenario files, e.g.
--devices 4 --placement least-loaded,round-robin --rebalance
count-diff,cost-aware (placements: least-loaded, round-robin,
fewest-tenants, locality-first, cost-min, pinned:<device>, all;
fleet placements: least-loaded, round-robin, fewest-tenants, all;
rebalance policies: off, count-diff, cost-aware, all). --faults
selects which categories of a scenario's [[fault]] schedule to
inject (none, device, task, host, all) and is a sweep axis like the
others. --devices
replaces heterogeneous [[device]] topologies and any topology.*
interconnect timing with a flat free-interconnect host of that size;
--hosts N replaces any [[host]] blocks with N identical hosts of
--devices (or the scenario's devices =) GPUs each.
Telemetry: --metrics exact|streaming picks the percentile pipeline
(streaming bounds per-task memory), --timeline FILE enables the
periodic device sampler and writes its output (JSON, or CSV when FILE
ends in .csv), --sample-every DUR (e.g. 500us) sets the sampler
cadence (default horizon/200), and --trace-out FILE writes per-cell
event traces as JSONL.";

fn fail(msg: &str) -> ExitCode {
    eprintln!("neon: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        serial: false,
        strict: false,
        threads: None,
        out: None,
        csv: None,
        quiet: false,
        devices: None,
        hosts: None,
        placements: None,
        fleet_placements: None,
        rebalances: None,
        faults: None,
        metrics: None,
        sample_every: None,
        timeline: None,
        trace_out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--serial" => opts.serial = true,
            "--strict" => opts.strict = true,
            "--quiet" => opts.quiet = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let list: Result<Vec<usize>, _> = v.split(',').map(str::parse).collect();
                let list = list.map_err(|_| "bad --threads value".to_string())?;
                if list.is_empty() || list.contains(&0) {
                    return Err("--threads entries must be at least 1".into());
                }
                opts.threads = Some(list);
            }
            "--devices" => {
                let v = it.next().ok_or("--devices needs a value")?;
                let n: usize = v.parse().map_err(|_| "bad --devices value".to_string())?;
                if n == 0 {
                    return Err("--devices must be at least 1".into());
                }
                opts.devices = Some(n);
            }
            "--hosts" => {
                let v = it.next().ok_or("--hosts needs a value")?;
                let n: usize = v.parse().map_err(|_| "bad --hosts value".to_string())?;
                if n == 0 {
                    return Err("--hosts must be at least 1".into());
                }
                opts.hosts = Some(n);
            }
            "--fleet-placement" => {
                let v = it.next().ok_or("--fleet-placement needs a value")?;
                let mut kinds = Vec::new();
                for label in v.split(',') {
                    if label == "all" {
                        kinds.extend(FleetPlacementKind::ALL);
                        continue;
                    }
                    kinds.push(
                        FleetPlacementKind::from_label(label)
                            .ok_or_else(|| format!("unknown fleet placement policy {label:?}"))?,
                    );
                }
                opts.fleet_placements = Some(kinds);
            }
            "--placement" => {
                let v = it.next().ok_or("--placement needs a value")?;
                let mut kinds = Vec::new();
                for label in v.split(',') {
                    if label == "all" {
                        kinds.extend(PlacementKind::ALL);
                        continue;
                    }
                    kinds.push(
                        PlacementKind::from_label(label)
                            .ok_or_else(|| format!("unknown placement policy {label:?}"))?,
                    );
                }
                opts.placements = Some(kinds);
            }
            "--rebalance" => {
                let v = it.next().ok_or("--rebalance needs a value")?;
                let mut kinds = Vec::new();
                for label in v.split(',') {
                    if label == "all" {
                        kinds.extend(RebalanceKind::ALL);
                        continue;
                    }
                    kinds.push(
                        RebalanceKind::from_label(label)
                            .ok_or_else(|| format!("unknown rebalance policy {label:?}"))?,
                    );
                }
                opts.rebalances = Some(kinds);
            }
            "--faults" => {
                let v = it.next().ok_or("--faults needs a value")?;
                let mut modes = Vec::new();
                for label in v.split(',') {
                    modes.push(
                        FaultMode::parse(label)
                            .ok_or_else(|| format!("unknown fault mode {label:?}"))?,
                    );
                }
                opts.faults = Some(modes);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a path")?;
                opts.out = Some(PathBuf::from(v));
            }
            "--csv" => {
                let v = it.next().ok_or("--csv needs a path")?;
                opts.csv = Some(PathBuf::from(v));
            }
            "--metrics" => {
                let v = it.next().ok_or("--metrics needs exact or streaming")?;
                opts.metrics = Some(
                    MetricsMode::from_label(v)
                        .ok_or_else(|| format!("unknown metrics mode {v:?}"))?,
                );
            }
            "--sample-every" => {
                let v = it.next().ok_or("--sample-every needs a duration")?;
                let d = parse_duration(v).map_err(|e| e.to_string())?;
                if d.is_zero() {
                    return Err("--sample-every must be positive".into());
                }
                opts.sample_every = Some(d);
            }
            "--timeline" => {
                let v = it.next().ok_or("--timeline needs a path")?;
                opts.timeline = Some(PathBuf::from(v));
            }
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a path")?;
                opts.trace_out = Some(PathBuf::from(v));
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag}"));
            }
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    if opts.files.is_empty() {
        return Err("at least one scenario file required".into());
    }
    Ok(opts)
}

fn load_specs(opts: &Options) -> Result<Vec<ScenarioSpec>, String> {
    opts.files
        .iter()
        .map(|f| {
            let mut spec = toml_file(f).map_err(|e| format!("{}: {e}", f.display()))?;
            if let Some(devices) = opts.devices {
                spec.devices = devices;
                // A size override replaces any heterogeneous [[device]]
                // layout AND the interconnect timing with a flat
                // free-interconnect host of that size, so overridden
                // runs compare cleanly against other flat runs.
                spec.device_slots.clear();
                spec.interconnect = None;
            }
            if let Some(hosts) = opts.hosts {
                // A fleet-size override replaces any [[host]] layout
                // with N identical hosts of `devices` GPUs each.
                spec.hosts = hosts;
                spec.host_devices.clear();
            }
            if let Some(placements) = &opts.placements {
                spec.placements = placements.clone();
            }
            if let Some(fleet_placements) = &opts.fleet_placements {
                spec.fleet_placements = fleet_placements.clone();
            }
            if let Some(rebalances) = &opts.rebalances {
                spec.rebalances = rebalances.clone();
            }
            if let Some(faults) = &opts.faults {
                spec.fault_modes = faults.clone();
            }
            if let Some(mode) = opts.metrics {
                spec.metrics = mode;
            }
            if let Some(every) = opts.sample_every {
                spec.sample_every = Some(every);
            }
            if opts.timeline.is_some() && spec.sample_every.is_none() {
                // --timeline without an explicit cadence: 200 samples
                // across the horizon, clamped to at least one tick.
                let every = spec.horizon.mul_f64(1.0 / 200.0);
                spec.sample_every = Some(every.max(SimDuration::from_nanos(1)));
            }
            if opts.trace_out.is_some() {
                spec.capture_trace = true;
            }
            if opts.devices.is_some()
                || opts.hosts.is_some()
                || opts.placements.is_some()
                || opts.fleet_placements.is_some()
                || opts.rebalances.is_some()
                || opts.faults.is_some()
            {
                // Re-check: an override can invalidate pins or
                // pinned placements.
                spec.validate()
                    .map_err(|e| format!("{}: after overrides: {e}", f.display()))?;
            }
            Ok(spec)
        })
        .collect()
}

fn cmd_check(opts: &Options) -> ExitCode {
    match load_specs(opts) {
        Ok(specs) => {
            let mut notes = 0usize;
            for spec in &specs {
                for note in &spec.compat_notes {
                    notes += 1;
                    eprintln!("{}: note: {note}", spec.name);
                }
                println!(
                    "{}: {} group(s), horizon {}, {} host(s) × {} device(s), \
                     {} scheduler(s) × {} placement(s) × {} fleet placement(s) × \
                     {} rebalance(s) × {} fault mode(s) × {} seed(s) = {} cells",
                    spec.name,
                    spec.groups.len(),
                    spec.horizon,
                    spec.hosts,
                    spec.devices,
                    spec.schedulers.len(),
                    spec.placements.len(),
                    spec.fleet_placements.len(),
                    spec.rebalances.len(),
                    spec.effective_fault_modes().len(),
                    spec.seeds.len(),
                    spec.cell_count(),
                );
                for g in &spec.groups {
                    let pin = match g.device {
                        Some(d) => format!(" (pinned dev{d})"),
                        None => String::new(),
                    };
                    println!(
                        "  group {:>12}: count {:>3}{pin}, {:?}",
                        g.name, g.count, g.workload
                    );
                }
            }
            if opts.strict && notes > 0 {
                eprintln!("neon: --strict: {notes} compatibility note(s) above are fatal");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("neon: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_run(opts: &Options) -> ExitCode {
    let specs = match load_specs(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("neon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let threads = match opts.threads.as_deref() {
        Some([t]) => Some(*t),
        Some(_) => {
            eprintln!("neon: run takes a single --threads value (a list is for bench)");
            return ExitCode::FAILURE;
        }
        None => None,
    };
    let cells = sweep::plan(specs);
    let outcome = if opts.serial {
        sweep::run_serial(&cells)
    } else {
        sweep::run_parallel(&cells, threads)
    };
    if !opts.quiet {
        eprintln!(
            "{} cells on {} thread(s) in {:.1} ms",
            outcome.results.len(),
            outcome.threads,
            outcome.wall.as_secs_f64() * 1e3
        );
        eprintln!("{}", emit::to_table(&outcome));
    }
    let json = emit::to_json(&outcome);
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("neon: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            if !opts.quiet {
                eprintln!("JSON written to {}", path.display());
            }
        }
        None => print!("{json}"),
    }
    if let Some(path) = &opts.csv {
        if let Err(e) = std::fs::write(path, emit::to_csv(&outcome)) {
            eprintln!("neon: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !opts.quiet {
            eprintln!("CSV written to {}", path.display());
        }
    }
    if let Some(path) = &opts.timeline {
        let text = if path.extension().is_some_and(|e| e == "csv") {
            emit::timeline_csv(&outcome)
        } else {
            emit::timeline_json(&outcome)
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("neon: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !opts.quiet {
            eprintln!("timeline written to {}", path.display());
        }
    }
    if let Some(path) = &opts.trace_out {
        // One JSONL stream: each cell contributes a "cell" record
        // naming its sweep coordinates, then its trace's own header
        // and entry records.
        let mut text = String::new();
        for r in &outcome.results {
            if let Some(jsonl) = &r.trace_jsonl {
                let s = &r.summary;
                let scenario = s.scenario.replace('\\', "\\\\").replace('"', "\\\"");
                text.push_str(&format!(
                    "{{\"record\": \"cell\", \"scenario\": \"{scenario}\", \
\"scheduler\": \"{}\", \"placement\": \"{}\", \"rebalance\": \"{}\", \"seed\": {}}}\n",
                    s.scheduler.label(),
                    s.placement,
                    s.rebalance,
                    s.seed,
                ));
                text.push_str(jsonl);
            }
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("neon: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !opts.quiet {
            eprintln!("trace JSONL written to {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_bench(opts: &Options) -> ExitCode {
    let specs = match load_specs(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("neon: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cells = sweep::plan(specs);
    eprintln!("benchmarking {} cells: serial first...", cells.len());
    let serial = sweep::run_serial(&cells);
    eprintln!("  serial:     {:>9.1} ms", serial.wall.as_secs_f64() * 1e3);
    let events: u64 = serial.results.iter().map(|r| r.report.events).sum();
    // One parallel run per requested thread count (default: one run
    // at the host's available parallelism). Progress goes to stderr;
    // stdout carries only the JSON document (when no --out is given),
    // so `neon bench ... > file.json` works.
    let thread_counts: Vec<Option<usize>> = match &opts.threads {
        Some(list) => list.iter().map(|&t| Some(t)).collect(),
        None => vec![None],
    };
    let mut parallel_runs = Vec::with_capacity(thread_counts.len());
    let mut row_rss = Vec::with_capacity(thread_counts.len());
    for want in thread_counts {
        let run = sweep::run_parallel(&cells, want);
        // Per-row footprint: an instantaneous RSS sample taken as this
        // run completes, so rows don't inherit the process high-water
        // mark reached by earlier (or wider) runs.
        row_rss.push(neon_scenario::current_rss_bytes());
        let speedup = serial.wall.as_secs_f64() / run.wall.as_secs_f64().max(1e-9);
        eprintln!(
            "  threads {:>2}: {:>9.1} ms, speedup {speedup:.2}x",
            run.threads,
            run.wall.as_secs_f64() * 1e3,
        );
        parallel_runs.push(run);
    }
    eprintln!(
        "  {:.2}M simulated events, {:.2}M events/s serial",
        events as f64 / 1e6,
        events as f64 / 1e6 / serial.wall.as_secs_f64().max(1e-9),
    );
    // The perf-trajectory document (conventionally BENCH_core.json):
    // events/sec and wall time, overall, per thread count, and per
    // reference scenario.
    let json = emit::bench_json(&serial, &parallel_runs, &row_rss);
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("neon: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("bench JSON written to {}", path.display());
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return fail("missing command");
    };
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    match command.as_str() {
        "run" => cmd_run(&opts),
        "check" => cmd_check(&opts),
        "bench" => cmd_bench(&opts),
        other => fail(&format!("unknown command {other:?}")),
    }
}
