//! Executes one scenario cell: a (scenario, scheduler, placement,
//! fleet placement, rebalance, seed) tuple.
//!
//! The driver expands every tenant group into concrete arrival
//! instants and lifetimes (deterministically, from the cell's seed),
//! stages them on a [`World`] — single- or multi-device, per the
//! spec's `devices` — or, when the spec asks for `hosts > 1`, on a
//! [`Fleet`] of worlds behind cluster-level placement — runs to the
//! horizon, and condenses the [`RunReport`] (or [`FleetReport`]) into
//! a [`CellSummary`] suitable for tables and JSON.
//!
//! Arrival and lifetime draws depend only on (seed, group index,
//! member index) — never on the scheduler, placement policy, or host
//! count — so every policy in a sweep faces exactly the same churn.

use std::time::Instant;

use neon_core::fault::{FaultMode, FaultPlan};
use neon_core::fleet::{Fleet, FleetPlacementKind, FleetReport, WorkloadFactory};
use neon_core::placement::PlacementKind;
use neon_core::rebalance::RebalanceKind;
use neon_core::sched::SchedulerKind;
use neon_core::world::{World, WorldConfig};
use neon_core::RunReport;
use neon_gpu::{DeviceId, DeviceSlotSpec, GpuConfig, Topology};
use neon_metrics::jain_index;
use neon_sim::{DetRng, SimDuration, SimTime};

/// A field of `/proc/self/status`, parsed as bytes.
#[cfg(target_os = "linux")]
fn proc_status_bytes(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Peak resident-set size of *this process* in bytes (Linux `VmHWM`),
/// `None` where unavailable. A process-wide high-water mark: on a
/// sweep it is monotone across cells, so per-cell values show which
/// cell first pushed the peak, not independent footprints. For
/// comparable per-row figures use [`current_rss_bytes`].
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        proc_status_bytes("VmHWM:")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Current resident-set size of *this process* in bytes (Linux
/// `VmRSS`), `None` where unavailable. An instantaneous sample, not a
/// high-water mark: sampling it after each sweep in a series yields
/// per-row figures that are independently comparable instead of each
/// inheriting every earlier row's peak.
pub fn current_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        proc_status_bytes("VmRSS:")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

use crate::spec::{ArrivalSpec, LifetimeSpec, ScenarioSpec, TenantGroup};

/// Per-device slice of a [`CellSummary`].
#[derive(Debug, Clone)]
pub struct DeviceSummary {
    /// The device.
    pub device: DeviceId,
    /// Compute-engine utilization of this device over the horizon.
    pub utilization: f64,
    /// Admissions this device refused.
    pub rejected: u64,
    /// Live tenants on the device at the horizon.
    pub tenants: usize,
    /// Tasks migrated onto this device by rebalancing.
    pub migrations_in: u64,
    /// Tasks rebalancing moved off this device.
    pub migrations_out: u64,
    /// Working-set movement charged on this device (staging onto it
    /// plus migration transfers landing here).
    pub transfer_stall: SimDuration,
}

/// Per-host slice of a fleet cell's [`CellSummary`].
#[derive(Debug, Clone)]
pub struct HostSummary {
    /// Host index within the fleet.
    pub host: usize,
    /// Devices this host exposes.
    pub devices: usize,
    /// Mean compute utilization across the host's devices.
    pub utilization: f64,
    /// Tasks this host admitted over the run.
    pub admitted: usize,
    /// Admissions the host's own (ground-truth) control refused.
    pub rejected: u64,
    /// Rounds completed on this host.
    pub rounds: u64,
}

/// Condensed outcome of one cell, cheap to tabulate and serialize.
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// Scenario name.
    pub scenario: String,
    /// Policy under test.
    pub scheduler: SchedulerKind,
    /// Placement policy under test.
    pub placement: PlacementKind,
    /// Fleet placement policy under test (a pure label on single-host
    /// cells, where no cluster decision exists).
    pub fleet_placement: FleetPlacementKind,
    /// Rebalancing policy under test.
    pub rebalance: RebalanceKind,
    /// Which categories of the scenario's fault schedule this cell
    /// injected ([`FaultMode::None`] on fault-free cells).
    pub faults_mode: FaultMode,
    /// Cell seed.
    pub seed: u64,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Devices in the cell's world (summed across hosts on fleet
    /// cells).
    pub devices: usize,
    /// Hosts in the cell (1 = one bare world, the legacy path).
    pub hosts: usize,
    /// Tasks admitted over the run (including those that departed).
    pub admitted: usize,
    /// Arrivals turned away because the device was exhausted.
    pub rejected: u64,
    /// Tasks that left gracefully (scheduled departure or finished
    /// workload) before the horizon.
    pub departed: usize,
    /// Tasks killed by the policy (over-long requests).
    pub killed: usize,
    /// Rounds completed across all tasks.
    pub total_rounds: u64,
    /// Requests completed across all tasks.
    pub completed_requests: u64,
    /// Interceptions (page faults) taken.
    pub faults: u64,
    /// Unintercepted submissions.
    pub direct_submits: u64,
    /// Compute-engine utilization over the horizon (mean across
    /// devices).
    pub utilization: f64,
    /// Jain fairness index over per-task device usage normalized by
    /// presence time (tasks present under 5 % of the horizon are
    /// excluded as noise). 1.0 = perfectly equal shares.
    pub fairness: f64,
    /// Median completed-round time across all tasks.
    pub round_p50: SimDuration,
    /// 95th-percentile round time.
    pub round_p95: SimDuration,
    /// 99th-percentile round time.
    pub round_p99: SimDuration,
    /// Tasks migrated between devices by rebalancing.
    pub migrations: u64,
    /// Total simulated time tasks spent stalled on working-set
    /// movement (admission staging + migration transfers); zero on
    /// flat topologies.
    pub transfer_stall: SimDuration,
    /// Tenants the fleet moved between hosts (0 on single-host cells).
    pub cross_host_migrations: u64,
    /// Simulated time spent in cross-host working-set transfers.
    pub cluster_transfer_stall: SimDuration,
    /// Arrivals rejected at the cluster boundary (no host's capacity
    /// ledger had room); host-level rejections stay in
    /// [`CellSummary::rejected`]'s total.
    pub fleet_rejected: u64,
    /// Fault events injected (world-level, plus host failures on fleet
    /// cells).
    pub injected_faults: u64,
    /// Watchdog kill-and-requeues.
    pub watchdog_kills: u64,
    /// Recovery retries scheduled (watchdog requeues, transient
    /// submission-error retries, park retries).
    pub fault_retries: u64,
    /// Tasks recovered from faults (drain-migrated, re-staged, or
    /// re-admitted cross-host).
    pub recovered_tasks: u64,
    /// Tasks lost to faults (crashes, exhausted retry budgets,
    /// unplaceable host-failure victims).
    pub lost_tasks: u64,
    /// Device hot-remove events injected.
    pub hot_removes: u64,
    /// Degraded-capacity time: device-offline spans summed across
    /// devices (plus host outages on fleet cells).
    pub degraded: SimDuration,
    /// Per-device utilization/rejection breakdown, in device order
    /// (hosts concatenated in host order on fleet cells).
    pub per_device: Vec<DeviceSummary>,
    /// Per-host breakdown, in host order; empty on single-host cells.
    pub per_host: Vec<HostSummary>,
    /// Host wall-clock time this cell took to simulate.
    pub elapsed: std::time::Duration,
    /// Process peak RSS in bytes when this cell finished (see
    /// [`peak_rss_bytes`]); `None` off Linux.
    pub peak_rss_bytes: Option<u64>,
}

/// Full outcome of one cell: the summary plus the raw report for
/// harnesses that need per-task details.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Condensed outcome.
    pub summary: CellSummary,
    /// The raw simulation report. On fleet cells (`hosts > 1`) this is
    /// host 0's report; the full picture is in [`CellResult::fleet`].
    pub report: RunReport,
    /// The cell's event trace rendered as JSON Lines, when the spec
    /// asked for capture ([`ScenarioSpec::capture_trace`] /
    /// `neon run --trace-out`). `None` otherwise (traces are per-world,
    /// so fleet cells don't capture one).
    pub trace_jsonl: Option<String>,
    /// The whole-fleet outcome when the cell ran a multi-host fleet;
    /// `None` on the single-host path.
    pub fleet: Option<FleetReport>,
}

/// A uniform draw in `(0, 1]`, for inverse-transform sampling.
fn unit_open(rng: &mut DetRng) -> f64 {
    let u = (rng.raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (1.0 - u).max(f64::MIN_POSITIVE)
}

/// An exponential draw with the given mean.
fn exponential(rng: &mut DetRng, mean: SimDuration) -> SimDuration {
    SimDuration::from_micros_f64(-unit_open(rng).ln() * mean.as_micros_f64())
}

/// Expands a group's arrival process into one instant per member.
fn arrival_times(group: &TenantGroup, rng: &mut DetRng) -> Vec<SimTime> {
    match &group.arrival {
        ArrivalSpec::AtStart => vec![SimTime::ZERO; group.count as usize],
        ArrivalSpec::Staggered { gap } => (0..group.count)
            .map(|i| SimTime::ZERO + *gap * i as u64)
            .collect(),
        ArrivalSpec::At { times } => times.iter().map(|&t| SimTime::ZERO + t).collect(),
        ArrivalSpec::Poisson { rate_hz, start } => {
            let mean = SimDuration::from_micros_f64(1e6 / rate_hz);
            let mut at = SimTime::ZERO + *start;
            (0..group.count)
                .map(|_| {
                    at += exponential(rng, mean);
                    at
                })
                .collect()
        }
    }
}

/// Draws a member's stay; `None` means it runs to workload completion
/// or the horizon.
fn lifetime(group: &TenantGroup, rng: &mut DetRng) -> Option<SimDuration> {
    match &group.lifetime {
        LifetimeSpec::Forever => None,
        LifetimeSpec::Fixed(d) => Some(*d),
        LifetimeSpec::Exponential { mean } => Some(exponential(rng, *mean)),
    }
}

/// Nearest-rank percentile of a sorted sample (`q` in percent). The
/// summary path now goes through [`RunReport::round_distribution`];
/// this stays as the tests' independent oracle.
#[cfg(test)]
fn percentile(sorted: &[SimDuration], q: f64) -> SimDuration {
    if sorted.is_empty() {
        return SimDuration::ZERO;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The scenario's fault plan filtered to `faults`, or `None` when the
/// mode (or the plan) injects nothing — keeping fault-free cells on
/// the exact pre-fault code path.
fn cell_fault_plan(spec: &ScenarioSpec, faults: FaultMode) -> Option<FaultPlan> {
    if faults == FaultMode::None {
        return None;
    }
    Some(spec.fault_plan().filtered(faults).world_plan())
}

/// The [`WorldConfig`] a cell's world runs under.
fn cell_config(
    spec: &ScenarioSpec,
    rebalance: RebalanceKind,
    faults: FaultMode,
    seed: u64,
    device_params: &[neon_core::cost::SchedParams],
) -> WorldConfig {
    let topology = spec.topology();
    WorldConfig {
        faults: cell_fault_plan(spec, faults),
        devices: if topology.is_none() && spec.devices > 1 {
            vec![neon_gpu::GpuConfig::default(); spec.devices]
        } else {
            Vec::new()
        },
        topology,
        cost: spec.cost.clone().unwrap_or_default(),
        params: spec.params.clone().unwrap_or_default(),
        device_params: device_params.to_vec(),
        rebalance,
        seed,
        record_requests: spec.record_requests,
        metrics: spec.metrics,
        sample_every: spec.sample_every,
        ..WorldConfig::default()
    }
}

/// The per-device scheduler a cell runs: the sweep axis policy, or the
/// spec's custom factory when one is installed.
fn cell_scheduler(
    spec: &ScenarioSpec,
    scheduler: SchedulerKind,
    device_params: &[neon_core::cost::SchedParams],
    dev: DeviceId,
) -> Box<dyn neon_core::sched::Scheduler> {
    let params = device_params[dev.index()].clone();
    match spec.custom_scheduler {
        Some(factory) => factory.build(params),
        None => scheduler.build(params),
    }
}

/// Stages the spec's tenant groups on `world` and runs to the horizon.
/// Returns the report plus the count of closed-loop members turned
/// away before the run started.
fn stage_and_run(world: &mut World, spec: &ScenarioSpec, seed: u64) -> (RunReport, u64) {
    let mut prerun_rejected = 0u64;
    let mut root = DetRng::seed_from(seed ^ 0x5CEA_7A11);
    for (gi, group) in spec.groups.iter().enumerate() {
        let mut rng = root.fork(gi as u64 + 1);
        let arrivals = arrival_times(group, &mut rng);
        let pin = group.device.map(DeviceId::new);
        for at in arrivals {
            let workload = group
                .build_member()
                // lint: allow(unchecked-unwrap) — spec.validate() ran before
                // any workload build on this path
                .expect("validated spec workloads must build");
            let stay = lifetime(group, &mut rng);
            if at == SimTime::ZERO && stay.is_none() {
                // Closed-loop members present from the start take the
                // classic admission path (staggered first steps), so a
                // purely static scenario reproduces the legacy
                // harnesses byte for byte.
                let admitted = match pin {
                    Some(d) => world.add_task_pinned(workload, d),
                    None => world.add_task(workload),
                };
                if admitted.is_err() {
                    prerun_rejected += 1;
                }
            } else {
                match (stay, pin) {
                    (Some(stay), Some(d)) => world.spawn_task_for_on(at, workload, stay, d),
                    (Some(stay), None) => world.spawn_task_for(at, workload, stay),
                    (None, Some(d)) => world.spawn_task_at_on(at, workload, d),
                    (None, None) => world.spawn_task_at(at, workload),
                }
            }
        }
    }
    let report = world.run(spec.horizon);
    (report, prerun_rejected)
}

/// Runs one (scenario, scheduler, placement, fleet placement,
/// rebalance, seed) cell to its horizon, constructing a fresh
/// [`World`] (or [`Fleet`] when the spec has `hosts > 1`) for it.
///
/// This is the reference path; sweep workers use a [`CellRunner`],
/// which recycles one world across cells and is proven equivalent by
/// the runner-equivalence tests.
///
/// # Panics
///
/// Panics if the spec is invalid; call [`ScenarioSpec::validate`]
/// first when the spec comes from user input.
#[allow(clippy::too_many_arguments)]
pub fn run_cell(
    spec: &ScenarioSpec,
    scheduler: SchedulerKind,
    placement: PlacementKind,
    fleet_placement: FleetPlacementKind,
    rebalance: RebalanceKind,
    faults: FaultMode,
    seed: u64,
) -> CellResult {
    let started = Instant::now();
    if spec.hosts > 1 {
        return run_fleet_cell(
            spec,
            scheduler,
            placement,
            fleet_placement,
            rebalance,
            faults,
            seed,
            started,
        );
    }
    let device_params = spec.device_params();
    let config = cell_config(spec, rebalance, faults, seed, &device_params);
    let mut world = if spec.devices > 1 {
        World::with_devices(config, placement.build(), |dev| {
            cell_scheduler(spec, scheduler, &device_params, dev)
        })
    } else {
        // Single-device scenarios take the exact legacy constructor
        // path, keeping static scenarios byte-identical to the old
        // harnesses.
        World::new(
            config,
            cell_scheduler(spec, scheduler, &device_params, DeviceId::new(0)),
        )
    };
    finish_cell(
        &mut world,
        spec,
        scheduler,
        placement,
        fleet_placement,
        rebalance,
        faults,
        seed,
        started,
    )
}

/// Shared tail of the fresh and recycled cell paths: trace arming,
/// staging, the run itself, and summarization.
#[allow(clippy::too_many_arguments)]
fn finish_cell(
    world: &mut World,
    spec: &ScenarioSpec,
    scheduler: SchedulerKind,
    placement: PlacementKind,
    fleet_placement: FleetPlacementKind,
    rebalance: RebalanceKind,
    faults: FaultMode,
    seed: u64,
    started: Instant,
) -> CellResult {
    if spec.capture_trace {
        world.trace.set_enabled(true);
    }
    let (report, prerun_rejected) = stage_and_run(world, spec, seed);
    let elapsed = started.elapsed();
    let trace_jsonl = spec.capture_trace.then(|| world.trace.to_jsonl());
    let summary = summarize(
        spec,
        scheduler,
        placement,
        fleet_placement,
        rebalance,
        faults,
        seed,
        &report,
        prerun_rejected,
        elapsed,
    );
    CellResult {
        summary,
        report,
        trace_jsonl,
        fleet: None,
    }
}

/// Builds one host's fresh [`World`] for a fleet cell. Hosts are
/// homogeneous inside (default devices); the spec's interconnect, if
/// any, applies within every host.
#[allow(clippy::too_many_arguments)]
fn fleet_host_world(
    spec: &ScenarioSpec,
    scheduler: SchedulerKind,
    placement: PlacementKind,
    rebalance: RebalanceKind,
    faults: FaultMode,
    seed: u64,
    host_devices: usize,
) -> World {
    let device_params = vec![spec.params.clone().unwrap_or_default(); host_devices];
    let topology = spec.interconnect.clone().map(|ic| {
        Topology::new(
            (0..host_devices)
                .map(|_| DeviceSlotSpec::near(GpuConfig::default()))
                .collect(),
            ic,
        )
    });
    let config = WorldConfig {
        faults: cell_fault_plan(spec, faults),
        devices: if topology.is_none() && host_devices > 1 {
            vec![GpuConfig::default(); host_devices]
        } else {
            Vec::new()
        },
        topology,
        cost: spec.cost.clone().unwrap_or_default(),
        params: spec.params.clone().unwrap_or_default(),
        device_params: device_params.clone(),
        rebalance,
        seed,
        record_requests: spec.record_requests,
        metrics: spec.metrics,
        sample_every: spec.sample_every,
        ..WorldConfig::default()
    };
    if host_devices > 1 {
        World::with_devices(config, placement.build(), |dev| {
            cell_scheduler(spec, scheduler, &device_params, dev)
        })
    } else {
        World::new(
            config,
            cell_scheduler(spec, scheduler, &device_params, DeviceId::new(0)),
        )
    }
}

/// Stages the spec's tenant groups on `fleet` and runs to the horizon
/// — the fleet mirror of [`stage_and_run`], with the identical RNG
/// discipline, so every host count faces the same arrival/lifetime
/// schedule. All scheduled arrivals are staged migratable (a factory
/// rebuilding the member's workload), letting the fleet rebalance
/// policy move them across hosts.
fn stage_fleet_and_run(fleet: &mut Fleet, spec: &ScenarioSpec, seed: u64) -> (FleetReport, u64) {
    let mut prerun_rejected = 0u64;
    let mut root = DetRng::seed_from(seed ^ 0x5CEA_7A11);
    for (gi, group) in spec.groups.iter().enumerate() {
        let mut rng = root.fork(gi as u64 + 1);
        let arrivals = arrival_times(group, &mut rng);
        for at in arrivals {
            let stay = lifetime(group, &mut rng);
            if at == SimTime::ZERO && stay.is_none() {
                let workload = group
                    .build_member()
                    // lint: allow(unchecked-unwrap) — spec.validate() ran
                    // before any workload build on this path
                    .expect("validated spec workloads must build");
                if fleet.add_task(workload).is_err() {
                    prerun_rejected += 1;
                }
            } else {
                let g = group.clone();
                let factory: WorkloadFactory = Box::new(move || {
                    g.build_member()
                        // lint: allow(unchecked-unwrap) — spec.validate() ran
                        // before any workload build on this path
                        .expect("validated spec workloads must build")
                });
                match stay {
                    Some(stay) => fleet.spawn_migratable_for(at, factory, stay),
                    None => fleet.spawn_migratable_at(at, factory),
                }
            }
        }
    }
    let report = fleet.run(spec.horizon);
    (report, prerun_rejected)
}

/// The fleet counterpart of the [`run_cell`] body: builds one fresh
/// [`World`] per host, wraps them in a [`Fleet`], stages, runs, and
/// summarizes.
#[allow(clippy::too_many_arguments)]
fn run_fleet_cell(
    spec: &ScenarioSpec,
    scheduler: SchedulerKind,
    placement: PlacementKind,
    fleet_placement: FleetPlacementKind,
    rebalance: RebalanceKind,
    faults: FaultMode,
    seed: u64,
    started: Instant,
) -> CellResult {
    let hosts: Vec<World> = spec
        .host_device_counts()
        .iter()
        .map(|&dh| fleet_host_world(spec, scheduler, placement, rebalance, faults, seed, dh))
        .collect();
    let mut fleet = Fleet::new(
        hosts,
        fleet_placement.build(),
        spec.fleet_rebalance.build(),
        spec.cluster.clone().unwrap_or_default(),
    );
    if faults != FaultMode::None {
        fleet.set_faults(spec.fault_plan().filtered(faults));
    }
    let (report, prerun_rejected) = stage_fleet_and_run(&mut fleet, spec, seed);
    let elapsed = started.elapsed();
    let summary = summarize_fleet(
        spec,
        scheduler,
        placement,
        fleet_placement,
        rebalance,
        faults,
        seed,
        &report,
        prerun_rejected,
        elapsed,
    );
    let host0 = report.hosts[0].clone();
    CellResult {
        summary,
        report: host0,
        trace_jsonl: None,
        fleet: Some(report),
    }
}

/// A reusable cell executor: builds one [`World`] on first use and
/// [`World::reset`]s it for every subsequent cell, so a sweep worker
/// pays world construction (event-queue slab, trace ring, task table)
/// once instead of per cell. Results are byte-identical to
/// [`run_cell`] — pinned by the runner-equivalence and world-reuse
/// tests.
#[derive(Default)]
pub struct CellRunner {
    world: Option<World>,
}

impl CellRunner {
    /// A runner with no world yet; the first cell builds it.
    pub fn new() -> Self {
        CellRunner::default()
    }

    /// Runs one cell, recycling this runner's world. Fleet cells
    /// (`hosts > 1`) build their hosts fresh each time — a `Fleet`
    /// runs once by design — leaving the recycled world untouched.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &mut self,
        spec: &ScenarioSpec,
        scheduler: SchedulerKind,
        placement: PlacementKind,
        fleet_placement: FleetPlacementKind,
        rebalance: RebalanceKind,
        faults: FaultMode,
        seed: u64,
    ) -> CellResult {
        let started = Instant::now();
        if spec.hosts > 1 {
            return run_fleet_cell(
                spec,
                scheduler,
                placement,
                fleet_placement,
                rebalance,
                faults,
                seed,
                started,
            );
        }
        let device_params = spec.device_params();
        let config = cell_config(spec, rebalance, faults, seed, &device_params);
        let make_sched = |dev: DeviceId| cell_scheduler(spec, scheduler, &device_params, dev);
        let world = match self.world.as_mut() {
            Some(world) => {
                world.reset(config, placement.build(), make_sched);
                world
            }
            None => self
                .world
                .insert(World::with_devices(config, placement.build(), make_sched)),
        };
        finish_cell(
            world,
            spec,
            scheduler,
            placement,
            fleet_placement,
            rebalance,
            faults,
            seed,
            started,
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn summarize(
    spec: &ScenarioSpec,
    scheduler: SchedulerKind,
    placement: PlacementKind,
    fleet_placement: FleetPlacementKind,
    rebalance: RebalanceKind,
    faults_mode: FaultMode,
    seed: u64,
    report: &RunReport,
    prerun_rejected: u64,
    elapsed: std::time::Duration,
) -> CellSummary {
    let min_presence = spec.horizon / 20;
    let shares: Vec<f64> = report
        .tasks
        .iter()
        .filter(|t| t.presence(spec.horizon) >= min_presence)
        .map(|t| {
            let presence = t.presence(spec.horizon);
            t.usage.as_micros_f64() / presence.as_micros_f64().max(1.0)
        })
        .collect();
    let fairness = if shares.is_empty() {
        1.0
    } else {
        jain_index(&shares)
    };
    // One interface for percentiles whatever the metrics mode: exact
    // vectors when present, merged per-task histograms otherwise.
    let rounds = report.round_distribution();
    CellSummary {
        scenario: spec.name.clone(),
        scheduler,
        placement,
        fleet_placement,
        rebalance,
        faults_mode,
        seed,
        horizon: spec.horizon,
        devices: spec.devices,
        hosts: 1,
        admitted: report.tasks.len(),
        rejected: report.rejected_admissions + prerun_rejected,
        departed: report
            .tasks
            .iter()
            .filter(|t| t.finished_at.is_some() && !t.killed)
            .count(),
        killed: report.tasks.iter().filter(|t| t.killed).count(),
        total_rounds: rounds.count(),
        completed_requests: report.tasks.iter().map(|t| t.completed_requests).sum(),
        faults: report.faults,
        direct_submits: report.direct_submits,
        utilization: report.utilization(),
        fairness,
        round_p50: rounds.quantile(50.0),
        round_p95: rounds.quantile(95.0),
        round_p99: rounds.quantile(99.0),
        migrations: report.migrations,
        transfer_stall: report.transfer_stall,
        cross_host_migrations: 0,
        cluster_transfer_stall: SimDuration::ZERO,
        fleet_rejected: 0,
        injected_faults: report.injected_faults,
        watchdog_kills: report.watchdog_kills,
        fault_retries: report.fault_retries,
        recovered_tasks: report.recovered_tasks,
        lost_tasks: report.lost_tasks,
        hot_removes: report.hot_removes,
        degraded: report.degraded,
        per_device: report
            .devices
            .iter()
            .map(|d| DeviceSummary {
                device: d.device,
                utilization: d.utilization(spec.horizon),
                rejected: d.rejected,
                tenants: d.tenants,
                migrations_in: d.migrations_in,
                migrations_out: d.migrations_out,
                transfer_stall: d.transfer_stall,
            })
            .collect(),
        per_host: Vec::new(),
        elapsed,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

#[allow(clippy::too_many_arguments)]
fn summarize_fleet(
    spec: &ScenarioSpec,
    scheduler: SchedulerKind,
    placement: PlacementKind,
    fleet_placement: FleetPlacementKind,
    rebalance: RebalanceKind,
    faults_mode: FaultMode,
    seed: u64,
    fleet: &FleetReport,
    prerun_rejected: u64,
    elapsed: std::time::Duration,
) -> CellSummary {
    let min_presence = spec.horizon / 20;
    let shares: Vec<f64> = fleet
        .hosts
        .iter()
        .flat_map(|h| h.tasks.iter())
        .filter(|t| t.presence(spec.horizon) >= min_presence)
        .map(|t| {
            let presence = t.presence(spec.horizon);
            t.usage.as_micros_f64() / presence.as_micros_f64().max(1.0)
        })
        .collect();
    let fairness = if shares.is_empty() {
        1.0
    } else {
        jain_index(&shares)
    };
    let rounds = fleet.round_distribution();
    let sum_duration = |f: &dyn Fn(&RunReport) -> SimDuration| {
        fleet
            .hosts
            .iter()
            .fold(SimDuration::ZERO, |acc, h| acc + f(h))
    };
    CellSummary {
        scenario: spec.name.clone(),
        scheduler,
        placement,
        fleet_placement,
        rebalance,
        faults_mode,
        seed,
        horizon: spec.horizon,
        devices: spec.host_device_counts().iter().sum(),
        hosts: fleet.hosts.len(),
        admitted: fleet.hosts.iter().map(|h| h.tasks.len()).sum(),
        rejected: fleet.rejected_admissions() + prerun_rejected,
        departed: fleet
            .hosts
            .iter()
            .flat_map(|h| h.tasks.iter())
            .filter(|t| t.finished_at.is_some() && !t.killed)
            .count(),
        killed: fleet
            .hosts
            .iter()
            .flat_map(|h| h.tasks.iter())
            .filter(|t| t.killed)
            .count(),
        total_rounds: rounds.count(),
        completed_requests: fleet
            .hosts
            .iter()
            .flat_map(|h| h.tasks.iter())
            .map(|t| t.completed_requests)
            .sum(),
        faults: fleet.hosts.iter().map(|h| h.faults).sum(),
        direct_submits: fleet.hosts.iter().map(|h| h.direct_submits).sum(),
        utilization: fleet.utilization(),
        fairness,
        round_p50: rounds.quantile(50.0),
        round_p95: rounds.quantile(95.0),
        round_p99: rounds.quantile(99.0),
        migrations: fleet.hosts.iter().map(|h| h.migrations).sum(),
        transfer_stall: sum_duration(&|h| h.transfer_stall),
        cross_host_migrations: fleet.cross_host_migrations,
        cluster_transfer_stall: fleet.cluster_transfer_stall,
        fleet_rejected: fleet.fleet_rejected,
        injected_faults: fleet.hosts.iter().map(|h| h.injected_faults).sum::<u64>()
            + fleet.host_failures,
        watchdog_kills: fleet.hosts.iter().map(|h| h.watchdog_kills).sum(),
        fault_retries: fleet.hosts.iter().map(|h| h.fault_retries).sum(),
        recovered_tasks: fleet.hosts.iter().map(|h| h.recovered_tasks).sum::<u64>()
            + fleet.fleet_fault_recovered,
        lost_tasks: fleet.hosts.iter().map(|h| h.lost_tasks).sum::<u64>() + fleet.fleet_lost_tasks,
        hot_removes: fleet.hosts.iter().map(|h| h.hot_removes).sum(),
        degraded: sum_duration(&|h| h.degraded) + fleet.host_degraded,
        per_device: fleet
            .hosts
            .iter()
            .flat_map(|h| h.devices.iter())
            .map(|d| DeviceSummary {
                device: d.device,
                utilization: d.utilization(spec.horizon),
                rejected: d.rejected,
                tenants: d.tenants,
                migrations_in: d.migrations_in,
                migrations_out: d.migrations_out,
                transfer_stall: d.transfer_stall,
            })
            .collect(),
        per_host: fleet
            .hosts
            .iter()
            .enumerate()
            .map(|(i, h)| HostSummary {
                host: i,
                devices: h.devices.len(),
                utilization: h.utilization(),
                admitted: h.tasks.len(),
                rejected: h.rejected_admissions,
                rounds: h.round_distribution().count(),
            })
            .collect(),
        elapsed,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{TenantGroup, WorkloadSpec};
    use neon_core::cost::SchedParams;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn churn_spec() -> ScenarioSpec {
        ScenarioSpec::new("unit", SimDuration::from_millis(120))
            .seeds(vec![7])
            .schedulers(vec![SchedulerKind::DisengagedFairQueueing])
            .group(
                TenantGroup::new(
                    "resident",
                    WorkloadSpec::FixedLoop {
                        service: us(80),
                        gap: us(5),
                        rounds: None,
                    },
                )
                .count(2),
            )
            .group(
                TenantGroup::new(
                    "churner",
                    WorkloadSpec::Throttle {
                        request: us(300),
                        off_ratio: 0.0,
                        jitter: 0.0,
                    },
                )
                .count(4)
                .arrival(ArrivalSpec::Poisson {
                    rate_hz: 100.0,
                    start: SimDuration::from_millis(5),
                })
                .lifetime(LifetimeSpec::Exponential {
                    mean: SimDuration::from_millis(25),
                }),
            )
    }

    #[test]
    fn poisson_arrivals_are_ordered_and_deterministic() {
        let group = TenantGroup::new(
            "g",
            WorkloadSpec::Throttle {
                request: us(100),
                off_ratio: 0.0,
                jitter: 0.0,
            },
        )
        .count(16)
        .arrival(ArrivalSpec::Poisson {
            rate_hz: 1000.0,
            start: SimDuration::from_millis(2),
        });
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(1);
        let ta = arrival_times(&group, &mut a);
        let tb = arrival_times(&group, &mut b);
        assert_eq!(ta, tb);
        assert!(ta.windows(2).all(|w| w[0] <= w[1]));
        assert!(ta[0] >= SimTime::ZERO + SimDuration::from_millis(2));
    }

    #[test]
    fn cell_runs_and_summarizes_churn() {
        let spec = churn_spec();
        let result = run_cell(
            &spec,
            SchedulerKind::DisengagedFairQueueing,
            PlacementKind::LeastLoaded,
            FleetPlacementKind::LeastLoaded,
            RebalanceKind::Off,
            FaultMode::None,
            7,
        );
        let s = &result.summary;
        assert!(s.admitted >= 2, "residents must be admitted");
        assert!(s.total_rounds > 100, "rounds: {}", s.total_rounds);
        assert!(s.utilization > 0.5, "utilization: {:.2}", s.utilization);
        assert!((0.0..=1.0).contains(&s.fairness));
        // At least one churner both arrived and departed mid-run.
        assert!(
            result
                .report
                .tasks
                .iter()
                .any(|t| t.arrived_at > SimTime::ZERO),
            "no mid-run arrival happened"
        );
    }

    #[test]
    fn cells_are_deterministic_per_seed() {
        let spec = churn_spec();
        let ll = PlacementKind::LeastLoaded;
        let a = run_cell(
            &spec,
            SchedulerKind::DisengagedFairQueueing,
            ll,
            FleetPlacementKind::LeastLoaded,
            RebalanceKind::Off,
            FaultMode::None,
            7,
        );
        let b = run_cell(
            &spec,
            SchedulerKind::DisengagedFairQueueing,
            ll,
            FleetPlacementKind::LeastLoaded,
            RebalanceKind::Off,
            FaultMode::None,
            7,
        );
        assert_eq!(a.summary.total_rounds, b.summary.total_rounds);
        assert_eq!(a.summary.faults, b.summary.faults);
        assert_eq!(a.report.compute_busy, b.report.compute_busy);
        let c = run_cell(
            &spec,
            SchedulerKind::DisengagedFairQueueing,
            ll,
            FleetPlacementKind::LeastLoaded,
            RebalanceKind::Off,
            FaultMode::None,
            8,
        );
        assert_ne!(
            (a.summary.total_rounds, a.summary.faults),
            (c.summary.total_rounds, c.summary.faults),
            "different seeds should perturb the run"
        );
    }

    #[test]
    fn static_scenarios_match_the_legacy_harness_path() {
        // A purely AtStart/Forever scenario must equal a hand-built
        // World with the same seed and workloads.
        let spec = ScenarioSpec::new("static", SimDuration::from_millis(60))
            .seeds(vec![42])
            .schedulers(vec![SchedulerKind::Direct])
            .group(
                TenantGroup::new(
                    "pair",
                    WorkloadSpec::FixedLoop {
                        service: us(50),
                        gap: us(5),
                        rounds: None,
                    },
                )
                .count(2),
            );
        let via_scenario = run_cell(
            &spec,
            SchedulerKind::Direct,
            PlacementKind::LeastLoaded,
            FleetPlacementKind::LeastLoaded,
            RebalanceKind::Off,
            FaultMode::None,
            42,
        );

        let config = WorldConfig {
            seed: 42,
            ..WorldConfig::default()
        };
        let mut world = World::new(config, SchedulerKind::Direct.build(SchedParams::default()));
        for _ in 0..2 {
            world
                .add_task(
                    WorkloadSpec::FixedLoop {
                        service: us(50),
                        gap: us(5),
                        rounds: None,
                    }
                    .build()
                    .unwrap(),
                )
                .unwrap();
        }
        let direct = world.run(SimDuration::from_millis(60));
        assert_eq!(via_scenario.report.compute_busy, direct.compute_busy);
        for (a, b) in via_scenario.report.tasks.iter().zip(&direct.tasks) {
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.usage, b.usage);
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<SimDuration> = (1..=100).map(SimDuration::from_micros).collect();
        assert_eq!(percentile(&sorted, 50.0), us(50));
        assert_eq!(percentile(&sorted, 95.0), us(95));
        assert_eq!(percentile(&sorted, 99.0), us(99));
        assert_eq!(percentile(&[], 50.0), SimDuration::ZERO);
        assert_eq!(percentile(&[us(7)], 99.0), us(7));
    }

    #[test]
    fn summary_carries_round_percentiles() {
        let spec = churn_spec();
        let r = run_cell(
            &spec,
            SchedulerKind::DisengagedFairQueueing,
            PlacementKind::LeastLoaded,
            FleetPlacementKind::LeastLoaded,
            RebalanceKind::Off,
            FaultMode::None,
            7,
        );
        let s = &r.summary;
        assert!(s.round_p50 > SimDuration::ZERO);
        assert!(s.round_p50 <= s.round_p95);
        assert!(s.round_p95 <= s.round_p99);
        // The p50 must actually be a completed round's duration.
        assert!(r
            .report
            .tasks
            .iter()
            .any(|t| t.rounds.contains(&s.round_p50)));
    }

    #[test]
    fn multi_device_cell_reports_per_device_columns() {
        let spec = ScenarioSpec::new("md", SimDuration::from_millis(60))
            .seeds(vec![3])
            .schedulers(vec![SchedulerKind::DisengagedFairQueueing])
            .devices(2)
            .group(
                TenantGroup::new(
                    "mix",
                    WorkloadSpec::FixedLoop {
                        service: us(100),
                        gap: us(5),
                        rounds: None,
                    },
                )
                .count(4),
            );
        spec.validate().unwrap();
        for placement in PlacementKind::ALL {
            let r = run_cell(
                &spec,
                SchedulerKind::DisengagedFairQueueing,
                placement,
                FleetPlacementKind::LeastLoaded,
                RebalanceKind::Off,
                FaultMode::None,
                3,
            );
            let s = &r.summary;
            assert_eq!(s.devices, 2);
            assert_eq!(s.per_device.len(), 2);
            for d in &s.per_device {
                assert_eq!(d.tenants, 2, "{placement}: tasks must spread 2+2");
                assert!(d.utilization > 0.5, "{placement}: idle device");
                assert_eq!(d.rejected, 0);
            }
        }
    }

    #[test]
    fn pinned_groups_land_on_their_device_with_overridden_params() {
        let spec = ScenarioSpec::new("pin", SimDuration::from_millis(40))
            .seeds(vec![1])
            .schedulers(vec![SchedulerKind::DisengagedFairQueueing])
            .devices(2)
            .group(
                TenantGroup::new(
                    "left",
                    WorkloadSpec::FixedLoop {
                        service: us(100),
                        gap: us(5),
                        rounds: None,
                    },
                )
                .count(2)
                .device(0)
                .params(SchedParams {
                    sampling_requests: 96,
                    ..SchedParams::default()
                }),
            )
            .group(
                TenantGroup::new(
                    "right",
                    WorkloadSpec::FixedLoop {
                        service: us(100),
                        gap: us(5),
                        rounds: None,
                    },
                )
                .count(2)
                .device(1),
            );
        spec.validate().unwrap();
        let r = run_cell(
            &spec,
            SchedulerKind::DisengagedFairQueueing,
            PlacementKind::LeastLoaded,
            FleetPlacementKind::LeastLoaded,
            RebalanceKind::Off,
            FaultMode::None,
            1,
        );
        for (i, t) in r.report.tasks.iter().enumerate() {
            let expected = if i < 2 { 0 } else { 1 };
            assert_eq!(t.device.raw(), expected, "task {i} pinned wrong");
        }
    }

    #[test]
    fn fleet_cells_run_per_host_and_stay_deterministic() {
        let spec = churn_spec().hosts(2);
        spec.validate().unwrap();
        let run = || {
            run_cell(
                &spec,
                SchedulerKind::DisengagedFairQueueing,
                PlacementKind::LeastLoaded,
                FleetPlacementKind::LeastLoaded,
                RebalanceKind::Off,
                FaultMode::None,
                7,
            )
        };
        let result = run();
        let s = &result.summary;
        assert_eq!(s.hosts, 2);
        assert_eq!(s.fleet_placement, FleetPlacementKind::LeastLoaded);
        assert_eq!(s.per_host.len(), 2);
        assert_eq!(s.devices, 2, "two 1-GPU hosts");
        assert!(s.admitted >= 2, "residents must be admitted");
        assert!(
            s.per_host.iter().all(|h| h.admitted > 0),
            "least-loaded fleet placement must spread tenants: {:?}",
            s.per_host
        );
        let fleet = result.fleet.as_ref().expect("fleet cells carry a report");
        assert_eq!(fleet.hosts.len(), 2);
        assert_eq!(s.cross_host_migrations, 0, "rebalance off");
        // The arrival/lifetime schedule is seed-only, so the whole
        // fleet cell is reproducible.
        let again = run();
        assert_eq!(s.total_rounds, again.summary.total_rounds);
        assert_eq!(s.admitted, again.summary.admitted);
        for (a, b) in s.per_host.iter().zip(&again.summary.per_host) {
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.admitted, b.admitted);
        }
    }
}
