//! Executes one scenario cell: a (scenario, scheduler, seed) triple.
//!
//! The driver expands every tenant group into concrete arrival
//! instants and lifetimes (deterministically, from the cell's seed),
//! stages them on a [`World`], runs to the horizon, and condenses the
//! [`RunReport`] into a [`CellSummary`] suitable for tables and JSON.
//!
//! Arrival and lifetime draws depend only on (seed, group index,
//! member index) — never on the scheduler — so every policy in a sweep
//! faces exactly the same churn.

use std::time::Instant;

use neon_core::cost::SchedParams;
use neon_core::sched::SchedulerKind;
use neon_core::world::{World, WorldConfig};
use neon_core::RunReport;
use neon_metrics::jain_index;
use neon_sim::{DetRng, SimDuration, SimTime};

use crate::spec::{ArrivalSpec, LifetimeSpec, ScenarioSpec, TenantGroup};

/// Condensed outcome of one cell, cheap to tabulate and serialize.
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// Scenario name.
    pub scenario: String,
    /// Policy under test.
    pub scheduler: SchedulerKind,
    /// Cell seed.
    pub seed: u64,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Tasks admitted over the run (including those that departed).
    pub admitted: usize,
    /// Arrivals turned away because the device was exhausted.
    pub rejected: u64,
    /// Tasks that left gracefully (scheduled departure or finished
    /// workload) before the horizon.
    pub departed: usize,
    /// Tasks killed by the policy (over-long requests).
    pub killed: usize,
    /// Rounds completed across all tasks.
    pub total_rounds: u64,
    /// Requests completed across all tasks.
    pub completed_requests: u64,
    /// Interceptions (page faults) taken.
    pub faults: u64,
    /// Unintercepted submissions.
    pub direct_submits: u64,
    /// Compute-engine utilization over the horizon.
    pub utilization: f64,
    /// Jain fairness index over per-task device usage normalized by
    /// presence time (tasks present under 5 % of the horizon are
    /// excluded as noise). 1.0 = perfectly equal shares.
    pub fairness: f64,
    /// Host wall-clock time this cell took to simulate.
    pub elapsed: std::time::Duration,
}

/// Full outcome of one cell: the summary plus the raw report for
/// harnesses that need per-task details.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Condensed outcome.
    pub summary: CellSummary,
    /// The raw simulation report.
    pub report: RunReport,
}

/// A uniform draw in `(0, 1]`, for inverse-transform sampling.
fn unit_open(rng: &mut DetRng) -> f64 {
    let u = (rng.raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (1.0 - u).max(f64::MIN_POSITIVE)
}

/// An exponential draw with the given mean.
fn exponential(rng: &mut DetRng, mean: SimDuration) -> SimDuration {
    SimDuration::from_micros_f64(-unit_open(rng).ln() * mean.as_micros_f64())
}

/// Expands a group's arrival process into one instant per member.
fn arrival_times(group: &TenantGroup, rng: &mut DetRng) -> Vec<SimTime> {
    match &group.arrival {
        ArrivalSpec::AtStart => vec![SimTime::ZERO; group.count as usize],
        ArrivalSpec::Staggered { gap } => (0..group.count)
            .map(|i| SimTime::ZERO + *gap * i as u64)
            .collect(),
        ArrivalSpec::At { times } => times.iter().map(|&t| SimTime::ZERO + t).collect(),
        ArrivalSpec::Poisson { rate_hz, start } => {
            let mean = SimDuration::from_micros_f64(1e6 / rate_hz);
            let mut at = SimTime::ZERO + *start;
            (0..group.count)
                .map(|_| {
                    at += exponential(rng, mean);
                    at
                })
                .collect()
        }
    }
}

/// Draws a member's stay; `None` means it runs to workload completion
/// or the horizon.
fn lifetime(group: &TenantGroup, rng: &mut DetRng) -> Option<SimDuration> {
    match &group.lifetime {
        LifetimeSpec::Forever => None,
        LifetimeSpec::Fixed(d) => Some(*d),
        LifetimeSpec::Exponential { mean } => Some(exponential(rng, *mean)),
    }
}

/// Runs one (scenario, scheduler, seed) cell to its horizon.
///
/// # Panics
///
/// Panics if the spec is invalid; call [`ScenarioSpec::validate`]
/// first when the spec comes from user input.
pub fn run_cell(spec: &ScenarioSpec, scheduler: SchedulerKind, seed: u64) -> CellResult {
    let started = Instant::now();
    let params = SchedParams::default();
    let config = WorldConfig {
        seed,
        ..WorldConfig::default()
    };
    let mut world = World::new(config, scheduler.build(params));
    let mut prerun_rejected = 0u64;

    let mut root = DetRng::seed_from(seed ^ 0x5CEA_7A11);
    for (gi, group) in spec.groups.iter().enumerate() {
        let mut rng = root.fork(gi as u64 + 1);
        let arrivals = arrival_times(group, &mut rng);
        for at in arrivals {
            let workload = group
                .workload
                .build()
                .expect("validated spec workloads must build");
            let stay = lifetime(group, &mut rng);
            if at == SimTime::ZERO && stay.is_none() {
                // Closed-loop members present from the start take the
                // classic admission path (staggered first steps), so a
                // purely static scenario reproduces the legacy
                // harnesses byte for byte.
                match world.add_task(workload) {
                    Ok(_) => {}
                    Err(_) => prerun_rejected += 1,
                }
            } else if let Some(stay) = stay {
                world.spawn_task_for(at, workload, stay);
            } else {
                world.spawn_task_at(at, workload);
            }
        }
    }

    let report = world.run(spec.horizon);
    let elapsed = started.elapsed();
    let summary = summarize(spec, scheduler, seed, &report, prerun_rejected, elapsed);
    CellResult { summary, report }
}

fn summarize(
    spec: &ScenarioSpec,
    scheduler: SchedulerKind,
    seed: u64,
    report: &RunReport,
    prerun_rejected: u64,
    elapsed: std::time::Duration,
) -> CellSummary {
    let min_presence = spec.horizon / 20;
    let shares: Vec<f64> = report
        .tasks
        .iter()
        .filter(|t| t.presence(spec.horizon) >= min_presence)
        .map(|t| {
            let presence = t.presence(spec.horizon);
            t.usage.as_micros_f64() / presence.as_micros_f64().max(1.0)
        })
        .collect();
    let fairness = if shares.is_empty() {
        1.0
    } else {
        jain_index(&shares)
    };
    CellSummary {
        scenario: spec.name.clone(),
        scheduler,
        seed,
        horizon: spec.horizon,
        admitted: report.tasks.len(),
        rejected: report.rejected_admissions + prerun_rejected,
        departed: report
            .tasks
            .iter()
            .filter(|t| t.finished_at.is_some() && !t.killed)
            .count(),
        killed: report.tasks.iter().filter(|t| t.killed).count(),
        total_rounds: report.tasks.iter().map(|t| t.rounds.len() as u64).sum(),
        completed_requests: report.tasks.iter().map(|t| t.completed_requests).sum(),
        faults: report.faults,
        direct_submits: report.direct_submits,
        utilization: report.utilization(),
        fairness,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{TenantGroup, WorkloadSpec};

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn churn_spec() -> ScenarioSpec {
        ScenarioSpec::new("unit", SimDuration::from_millis(120))
            .seeds(vec![7])
            .schedulers(vec![SchedulerKind::DisengagedFairQueueing])
            .group(
                TenantGroup::new(
                    "resident",
                    WorkloadSpec::FixedLoop {
                        service: us(80),
                        gap: us(5),
                        rounds: None,
                    },
                )
                .count(2),
            )
            .group(
                TenantGroup::new(
                    "churner",
                    WorkloadSpec::Throttle {
                        request: us(300),
                        off_ratio: 0.0,
                        jitter: 0.0,
                    },
                )
                .count(4)
                .arrival(ArrivalSpec::Poisson {
                    rate_hz: 100.0,
                    start: SimDuration::from_millis(5),
                })
                .lifetime(LifetimeSpec::Exponential {
                    mean: SimDuration::from_millis(25),
                }),
            )
    }

    #[test]
    fn poisson_arrivals_are_ordered_and_deterministic() {
        let group = TenantGroup::new(
            "g",
            WorkloadSpec::Throttle {
                request: us(100),
                off_ratio: 0.0,
                jitter: 0.0,
            },
        )
        .count(16)
        .arrival(ArrivalSpec::Poisson {
            rate_hz: 1000.0,
            start: SimDuration::from_millis(2),
        });
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(1);
        let ta = arrival_times(&group, &mut a);
        let tb = arrival_times(&group, &mut b);
        assert_eq!(ta, tb);
        assert!(ta.windows(2).all(|w| w[0] <= w[1]));
        assert!(ta[0] >= SimTime::ZERO + SimDuration::from_millis(2));
    }

    #[test]
    fn cell_runs_and_summarizes_churn() {
        let spec = churn_spec();
        let result = run_cell(&spec, SchedulerKind::DisengagedFairQueueing, 7);
        let s = &result.summary;
        assert!(s.admitted >= 2, "residents must be admitted");
        assert!(s.total_rounds > 100, "rounds: {}", s.total_rounds);
        assert!(s.utilization > 0.5, "utilization: {:.2}", s.utilization);
        assert!((0.0..=1.0).contains(&s.fairness));
        // At least one churner both arrived and departed mid-run.
        assert!(
            result
                .report
                .tasks
                .iter()
                .any(|t| t.arrived_at > SimTime::ZERO),
            "no mid-run arrival happened"
        );
    }

    #[test]
    fn cells_are_deterministic_per_seed() {
        let spec = churn_spec();
        let a = run_cell(&spec, SchedulerKind::DisengagedFairQueueing, 7);
        let b = run_cell(&spec, SchedulerKind::DisengagedFairQueueing, 7);
        assert_eq!(a.summary.total_rounds, b.summary.total_rounds);
        assert_eq!(a.summary.faults, b.summary.faults);
        assert_eq!(a.report.compute_busy, b.report.compute_busy);
        let c = run_cell(&spec, SchedulerKind::DisengagedFairQueueing, 8);
        assert_ne!(
            (a.summary.total_rounds, a.summary.faults),
            (c.summary.total_rounds, c.summary.faults),
            "different seeds should perturb the run"
        );
    }

    #[test]
    fn static_scenarios_match_the_legacy_harness_path() {
        // A purely AtStart/Forever scenario must equal a hand-built
        // World with the same seed and workloads.
        let spec = ScenarioSpec::new("static", SimDuration::from_millis(60))
            .seeds(vec![42])
            .schedulers(vec![SchedulerKind::Direct])
            .group(
                TenantGroup::new(
                    "pair",
                    WorkloadSpec::FixedLoop {
                        service: us(50),
                        gap: us(5),
                        rounds: None,
                    },
                )
                .count(2),
            );
        let via_scenario = run_cell(&spec, SchedulerKind::Direct, 42);

        let config = WorldConfig {
            seed: 42,
            ..WorldConfig::default()
        };
        let mut world = World::new(config, SchedulerKind::Direct.build(SchedParams::default()));
        for _ in 0..2 {
            world
                .add_task(
                    WorkloadSpec::FixedLoop {
                        service: us(50),
                        gap: us(5),
                        rounds: None,
                    }
                    .build()
                    .unwrap(),
                )
                .unwrap();
        }
        let direct = world.run(SimDuration::from_millis(60));
        assert_eq!(via_scenario.report.compute_busy, direct.compute_busy);
        for (a, b) in via_scenario.report.tasks.iter().zip(&direct.tasks) {
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.usage, b.usage);
        }
    }
}
