//! Result emission: JSON and CSV, with no external dependencies.
//!
//! The JSON writer emits a stable, self-describing document:
//!
//! ```json
//! {
//!   "sweep": { "cells": 14, "threads": 8, "wall_ms": 123.4 },
//!   "results": [ { "scenario": "churn", "scheduler": "direct", ... } ]
//! }
//! ```
//!
//! CSV carries the same per-cell summary fields, one row per cell.

use std::fmt::Write as _;

use crate::driver::CellSummary;
use crate::sweep::SweepOutcome;

/// Escapes a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float compactly and JSON-safely (no NaN/Inf literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn summary_json(s: &CellSummary, indent: &str) -> String {
    let mut o = String::new();
    let _ = write!(
        o,
        "{indent}{{\"scenario\": \"{}\", \"scheduler\": \"{}\", \"seed\": {}, \
\"horizon_ms\": {}, \"admitted\": {}, \"rejected\": {}, \"departed\": {}, \
\"killed\": {}, \"total_rounds\": {}, \"completed_requests\": {}, \
\"faults\": {}, \"direct_submits\": {}, \"utilization\": {}, \
\"fairness\": {}, \"elapsed_ms\": {}}}",
        json_escape(&s.scenario),
        s.scheduler.label(),
        s.seed,
        json_f64(s.horizon.as_secs_f64() * 1e3),
        s.admitted,
        s.rejected,
        s.departed,
        s.killed,
        s.total_rounds,
        s.completed_requests,
        s.faults,
        s.direct_submits,
        json_f64(s.utilization),
        json_f64(s.fairness),
        json_f64(s.elapsed.as_secs_f64() * 1e3),
    );
    o
}

/// Serializes a sweep outcome as a JSON document.
pub fn to_json(outcome: &SweepOutcome) -> String {
    let mut o = String::new();
    o.push_str("{\n");
    let _ = writeln!(
        o,
        "  \"sweep\": {{\"cells\": {}, \"threads\": {}, \"wall_ms\": {}}},",
        outcome.results.len(),
        outcome.threads,
        json_f64(outcome.wall.as_secs_f64() * 1e3),
    );
    o.push_str("  \"results\": [\n");
    let rows: Vec<String> = outcome
        .results
        .iter()
        .map(|r| summary_json(&r.summary, "    "))
        .collect();
    o.push_str(&rows.join(",\n"));
    o.push_str("\n  ]\n}\n");
    o
}

/// CSV column order, matching [`to_csv`] rows.
pub const CSV_HEADER: &str = "scenario,scheduler,seed,horizon_ms,admitted,rejected,departed,\
killed,total_rounds,completed_requests,faults,direct_submits,utilization,fairness,elapsed_ms";

/// Serializes a sweep outcome as CSV (header + one row per cell).
pub fn to_csv(outcome: &SweepOutcome) -> String {
    let mut o = String::from(CSV_HEADER);
    o.push('\n');
    for r in &outcome.results {
        let s = &r.summary;
        let scenario = if s.scenario.contains([',', '"']) {
            format!("\"{}\"", s.scenario.replace('"', "\"\""))
        } else {
            s.scenario.clone()
        };
        let _ = writeln!(
            o,
            "{},{},{},{:.3},{},{},{},{},{},{},{},{},{:.6},{:.6},{:.3}",
            scenario,
            s.scheduler.label(),
            s.seed,
            s.horizon.as_secs_f64() * 1e3,
            s.admitted,
            s.rejected,
            s.departed,
            s.killed,
            s.total_rounds,
            s.completed_requests,
            s.faults,
            s.direct_submits,
            s.utilization,
            s.fairness,
            s.elapsed.as_secs_f64() * 1e3,
        );
    }
    o
}

/// Renders the human-readable summary table printed by the CLI.
pub fn to_table(outcome: &SweepOutcome) -> String {
    let mut table = neon_metrics::Table::new(vec![
        "scenario".into(),
        "scheduler".into(),
        "seed".into(),
        "tasks".into(),
        "rej".into(),
        "rounds".into(),
        "faults".into(),
        "util".into(),
        "fairness".into(),
        "ms".into(),
    ]);
    for r in &outcome.results {
        let s = &r.summary;
        table.row(vec![
            s.scenario.clone(),
            s.scheduler.label().to_string(),
            s.seed.to_string(),
            s.admitted.to_string(),
            s.rejected.to_string(),
            s.total_rounds.to_string(),
            s.faults.to_string(),
            format!("{:.2}", s.utilization),
            format!("{:.3}", s.fairness),
            format!("{:.1}", s.elapsed.as_secs_f64() * 1e3),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::CellResult;
    use neon_core::sched::SchedulerKind;
    use neon_core::RunReport;
    use neon_sim::SimDuration;
    use std::time::Duration;

    fn outcome() -> SweepOutcome {
        let summary = CellSummary {
            scenario: "say \"hi\", ok".into(),
            scheduler: SchedulerKind::Direct,
            seed: 7,
            horizon: SimDuration::from_millis(100),
            admitted: 3,
            rejected: 1,
            departed: 2,
            killed: 0,
            total_rounds: 1234,
            completed_requests: 1300,
            faults: 9,
            direct_submits: 1291,
            utilization: 0.875,
            fairness: 0.99,
            elapsed: Duration::from_millis(12),
        };
        let report = RunReport {
            scheduler: "direct",
            wall: SimDuration::from_millis(100),
            tasks: vec![],
            compute_busy: SimDuration::from_millis(80),
            dma_busy: SimDuration::ZERO,
            faults: 9,
            polls: 100,
            direct_submits: 1291,
            rejected_admissions: 1,
        };
        SweepOutcome {
            results: vec![CellResult { summary, report }],
            wall: Duration::from_millis(15),
            threads: 4,
        }
    }

    #[test]
    fn json_escapes_and_structures() {
        let json = to_json(&outcome());
        assert!(json.contains("\"cells\": 1"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("say \\\"hi\\\", ok"), "{json}");
        assert!(json.contains("\"fairness\": 0.990000"));
        // Must parse as balanced braces/brackets at minimum.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn csv_quotes_awkward_fields() {
        let csv = to_csv(&outcome());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        let row = lines.next().unwrap();
        assert!(row.starts_with("\"say \"\"hi\"\", ok\""), "{row}");
        assert!(row.contains(",direct,7,"));
    }

    #[test]
    fn table_renders_every_cell() {
        let text = to_table(&outcome());
        assert!(text.contains("direct"));
        assert!(text.contains("1234"));
    }
}
