//! Result emission: JSON and CSV, with no external dependencies.
//!
//! The JSON writer emits a stable, self-describing document:
//!
//! ```json
//! {
//!   "sweep": { "cells": 14, "threads": 8, "wall_ms": 123.4 },
//!   "results": [ { "scenario": "churn", "scheduler": "direct", ... } ]
//! }
//! ```
//!
//! CSV carries the same per-cell summary fields, one row per cell.

use std::fmt::Write as _;

use neon_core::fault::FaultMode;
use neon_core::telemetry::SimStats;
use neon_metrics::CounterKey as _;

use crate::driver::CellSummary;
use crate::sweep::SweepOutcome;

/// Escapes a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float compactly and JSON-safely (no NaN/Inf literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// The structured-counter block as a JSON object, keys in
/// [`neon_core::telemetry::StatKey`] order.
fn stats_json(stats: &SimStats) -> String {
    let fields: Vec<String> = stats
        .iter()
        .map(|(key, value)| format!("\"{}\": {value}", key.label()))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

fn summary_json(s: &CellSummary, stats: &SimStats, indent: &str) -> String {
    let mut o = String::new();
    let _ = write!(
        o,
        "{indent}{{\"scenario\": \"{}\", \"scheduler\": \"{}\", \"placement\": \"{}\", \
\"fleet_placement\": \"{}\", \"rebalance\": \"{}\", \
\"seed\": {}, \"horizon_ms\": {}, \"devices\": {}, \"hosts\": {}, \"admitted\": {}, \
\"rejected\": {}, \
\"departed\": {}, \"killed\": {}, \"total_rounds\": {}, \"completed_requests\": {}, \
\"faults\": {}, \"direct_submits\": {}, \"utilization\": {}, \"fairness\": {}, \
\"round_p50_us\": {}, \"round_p95_us\": {}, \"round_p99_us\": {}, \"migrations\": {}, \
\"transfer_stall_us\": {}, \"fleet_rejected\": {}, \"cross_host_migrations\": {}, \
\"cluster_transfer_stall_us\": {}, \"faults_mode\": \"{}\", \"injected_faults\": {}, \
\"watchdog_kills\": {}, \"fault_retries\": {}, \"recovered_tasks\": {}, \"lost_tasks\": {}, \
\"hot_removes\": {}, \"degraded_us\": {}, \"per_device\": [",
        json_escape(&s.scenario),
        s.scheduler.label(),
        s.placement,
        s.fleet_placement,
        s.rebalance,
        s.seed,
        json_f64(s.horizon.as_secs_f64() * 1e3),
        s.devices,
        s.hosts,
        s.admitted,
        s.rejected,
        s.departed,
        s.killed,
        s.total_rounds,
        s.completed_requests,
        s.faults,
        s.direct_submits,
        json_f64(s.utilization),
        json_f64(s.fairness),
        json_f64(s.round_p50.as_micros_f64()),
        json_f64(s.round_p95.as_micros_f64()),
        json_f64(s.round_p99.as_micros_f64()),
        s.migrations,
        json_f64(s.transfer_stall.as_micros_f64()),
        s.fleet_rejected,
        s.cross_host_migrations,
        json_f64(s.cluster_transfer_stall.as_micros_f64()),
        s.faults_mode.label(),
        s.injected_faults,
        s.watchdog_kills,
        s.fault_retries,
        s.recovered_tasks,
        s.lost_tasks,
        s.hot_removes,
        json_f64(s.degraded.as_micros_f64()),
    );
    let devs: Vec<String> = s
        .per_device
        .iter()
        .map(|d| {
            format!(
                "{{\"device\": {}, \"utilization\": {}, \"rejected\": {}, \"tenants\": {}, \
\"migrations_in\": {}, \"migrations_out\": {}, \"transfer_stall_us\": {}}}",
                d.device.raw(),
                json_f64(d.utilization),
                d.rejected,
                d.tenants,
                d.migrations_in,
                d.migrations_out,
                json_f64(d.transfer_stall.as_micros_f64()),
            )
        })
        .collect();
    let hosts: Vec<String> = s
        .per_host
        .iter()
        .map(|h| {
            format!(
                "{{\"host\": {}, \"devices\": {}, \"utilization\": {}, \"admitted\": {}, \
\"rejected\": {}, \"rounds\": {}}}",
                h.host,
                h.devices,
                json_f64(h.utilization),
                h.admitted,
                h.rejected,
                h.rounds,
            )
        })
        .collect();
    let peak_rss = match s.peak_rss_bytes {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    };
    let _ = write!(
        o,
        "{}], \"per_host\": [{}], \"stats\": {}, \"elapsed_ms\": {}, \"peak_rss_bytes\": {}}}",
        devs.join(", "),
        hosts.join(", "),
        stats_json(stats),
        json_f64(s.elapsed.as_secs_f64() * 1e3),
        peak_rss,
    );
    o
}

/// Serializes a sweep outcome as a JSON document.
pub fn to_json(outcome: &SweepOutcome) -> String {
    let mut o = String::new();
    o.push_str("{\n");
    let _ = writeln!(
        o,
        "  \"sweep\": {{\"cells\": {}, \"threads\": {}, \"wall_ms\": {}}},",
        outcome.results.len(),
        outcome.threads,
        json_f64(outcome.wall.as_secs_f64() * 1e3),
    );
    o.push_str("  \"results\": [\n");
    let rows: Vec<String> = outcome
        .results
        .iter()
        .map(|r| summary_json(&r.summary, &r.report.stats, "    "))
        .collect();
    o.push_str(&rows.join(",\n"));
    o.push_str("\n  ]\n}\n");
    o
}

/// Serializes the telemetry timelines of a sweep as a JSON document:
/// one record per cell, each with the sampler's bound/drop accounting
/// and its retained [`neon_core::telemetry::TimelineSample`]s. Cells
/// whose sampler was off contribute empty sample lists.
pub fn timeline_json(outcome: &SweepOutcome) -> String {
    let mut o = String::new();
    o.push_str("{\n  \"timelines\": [\n");
    let rows: Vec<String> = outcome
        .results
        .iter()
        .map(|r| {
            let s = &r.summary;
            let tl = &r.report.timeline;
            let samples: Vec<String> = tl
                .iter()
                .map(|sample| {
                    let devs: Vec<String> = sample
                        .devices
                        .iter()
                        .map(|d| {
                            format!(
                                "{{\"device\": {}, \"utilization\": {}, \"queue_depth\": {}, \
\"tenants\": {}, \"engines_busy\": {}, \"migrations_in\": {}, \"migrations_out\": {}}}",
                                d.device.raw(),
                                json_f64(d.utilization),
                                d.queue_depth,
                                d.tenants,
                                d.engines_busy,
                                d.migrations_in,
                                d.migrations_out,
                            )
                        })
                        .collect();
                    format!(
                        "      {{\"t_ns\": {}, \"events\": {}, \"live_tasks\": {}, \
\"inflight_migrations\": {}, \"devices\": [{}]}}",
                        sample.at.as_nanos(),
                        sample.events,
                        sample.live_tasks,
                        sample.inflight_migrations,
                        devs.join(", "),
                    )
                })
                .collect();
            format!(
                "    {{\"scenario\": \"{}\", \"scheduler\": \"{}\", \"placement\": \"{}\", \
\"rebalance\": \"{}\", \"seed\": {}, \"samples_retained\": {}, \"samples_dropped\": {}, \
\"capacity\": {}, \"samples\": [\n{}\n    ]}}",
                json_escape(&s.scenario),
                s.scheduler.label(),
                s.placement,
                s.rebalance,
                s.seed,
                tl.len(),
                tl.dropped(),
                tl.capacity(),
                samples.join(",\n"),
            )
        })
        .collect();
    o.push_str(&rows.join(",\n"));
    o.push_str("\n  ]\n}\n");
    o
}

/// The timelines of a sweep as flat CSV: one row per (cell, sample,
/// device) triple.
pub fn timeline_csv(outcome: &SweepOutcome) -> String {
    let mut o = String::from(
        "scenario,scheduler,placement,rebalance,seed,t_ns,events,live_tasks,\
inflight_migrations,device,utilization,queue_depth,tenants,engines_busy,\
migrations_in,migrations_out\n",
    );
    for r in &outcome.results {
        let s = &r.summary;
        let scenario = if s.scenario.contains([',', '"']) {
            format!("\"{}\"", s.scenario.replace('"', "\"\""))
        } else {
            s.scenario.clone()
        };
        for sample in r.report.timeline.iter() {
            for d in &sample.devices {
                let _ = writeln!(
                    o,
                    "{},{},{},{},{},{},{},{},{},{},{:.6},{},{},{},{},{}",
                    scenario,
                    s.scheduler.label(),
                    s.placement,
                    s.rebalance,
                    s.seed,
                    sample.at.as_nanos(),
                    sample.events,
                    sample.live_tasks,
                    sample.inflight_migrations,
                    d.device.raw(),
                    d.utilization,
                    d.queue_depth,
                    d.tenants,
                    d.engines_busy,
                    d.migrations_in,
                    d.migrations_out,
                );
            }
        }
    }
    o
}

/// Serializes a `neon bench` run as the machine-readable perf
/// trajectory document (`BENCH_core.json`): wall times, simulated
/// discrete-event counts and simulator throughput (events per host
/// second), overall and per reference scenario. `serial` and every
/// entry of `parallel_runs` are runs of the *same* plan, so their
/// event totals must agree — the document carries one event count and
/// one throughput per run.
///
/// `row_rss` carries one instantaneous RSS sample per parallel run,
/// taken by the caller right after that run finished (see
/// [`crate::driver::current_rss_bytes`]); missing entries emit `null`.
///
/// Schema `neon-bench-core/3`:
/// - the header carries a `schema` tag, a reproducible
///   (revision-free) `created_by` string, and the `scenario_set` the
///   plan covered, so trajectory tooling can detect plan drift
///   between snapshots;
/// - the legacy headline fields (`threads`, `parallel_ms`,
///   `speedup`, `events_per_sec_parallel`) describe the widest
///   parallel run, and `threads_sweep` carries one row per parallel
///   run — `threads`, `parallel_ms`, `speedup`, `events_per_sec`,
///   `peak_rss_bytes` — in the order the runs executed;
/// - each `threads_sweep` row's `peak_rss_bytes` is a **per-row
///   current-RSS sample** (Linux `VmRSS`, read as that run
///   completed), so rows are comparable to each other and can go
///   down as well as up. Schema `/2` reported the run-wide `VmHWM`
///   high-water mark here — a monotone per-process counter that made
///   later rows inherit earlier rows' footprint; per-scenario rows
///   still report the high-water mark (`VmHWM` max over the
///   scenario's serial cells). `null` off Linux.
pub fn bench_json(
    serial: &SweepOutcome,
    parallel_runs: &[SweepOutcome],
    row_rss: &[Option<u64>],
) -> String {
    let total_events: u64 = serial.results.iter().map(|r| r.report.events).sum();
    let serial_s = serial.wall.as_secs_f64();
    // The headline parallel run: the widest one (ties: the last).
    let headline = parallel_runs
        .iter()
        .enumerate()
        .max_by_key(|(i, run)| (run.threads, *i))
        .map(|(_, run)| run)
        .unwrap_or(serial);
    let headline_s = headline.wall.as_secs_f64();
    let mut scenario_set: Vec<&str> = Vec::new();
    for r in &serial.results {
        let name = r.summary.scenario.as_str();
        if !scenario_set.contains(&name) {
            scenario_set.push(name);
        }
    }
    let mut o = String::new();
    o.push_str("{\n");
    let _ = writeln!(
        o,
        "  \"schema\": \"neon-bench-core/3\", \"created_by\": \"neon bench\",",
    );
    let _ = writeln!(
        o,
        "  \"scenario_set\": [{}],",
        scenario_set
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect::<Vec<_>>()
            .join(", "),
    );
    let _ = writeln!(
        o,
        "  \"bench\": \"core\", \"cells\": {}, \"threads\": {},",
        serial.results.len(),
        headline.threads,
    );
    let _ = writeln!(
        o,
        "  \"serial_ms\": {}, \"parallel_ms\": {}, \"speedup\": {},",
        json_f64(serial_s * 1e3),
        json_f64(headline_s * 1e3),
        json_f64(serial_s / headline_s.max(1e-9)),
    );
    let _ = writeln!(
        o,
        "  \"sim_events\": {}, \"events_per_sec_serial\": {}, \
\"events_per_sec_parallel\": {},",
        total_events,
        json_f64(total_events as f64 / serial_s.max(1e-9)),
        json_f64(total_events as f64 / headline_s.max(1e-9)),
    );
    o.push_str("  \"threads_sweep\": [\n");
    let thread_rows: Vec<String> = parallel_runs
        .iter()
        .enumerate()
        .map(|(i, run)| {
            let run_s = run.wall.as_secs_f64();
            format!(
                "    {{\"threads\": {}, \"parallel_ms\": {}, \"speedup\": {}, \
\"events_per_sec\": {}, \"peak_rss_bytes\": {}}}",
                run.threads,
                json_f64(run_s * 1e3),
                json_f64(serial_s / run_s.max(1e-9)),
                json_f64(total_events as f64 / run_s.max(1e-9)),
                row_rss
                    .get(i)
                    .copied()
                    .flatten()
                    .map_or("null".to_string(), |b| b.to_string()),
            )
        })
        .collect();
    o.push_str(&thread_rows.join(",\n"));
    o.push_str("\n  ],\n");
    o.push_str("  \"scenarios\": [\n");
    let mut rows: Vec<String> = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    for r in &serial.results {
        let name = r.summary.scenario.as_str();
        if seen.contains(&name) {
            continue;
        }
        seen.push(name);
        let cells = serial.results.iter().filter(|c| c.summary.scenario == name);
        let (mut n, mut events, mut wall) = (0u64, 0u64, 0.0f64);
        let mut peak_rss: Option<u64> = None;
        for c in cells {
            n += 1;
            events += c.report.events;
            wall += c.summary.elapsed.as_secs_f64();
            if let Some(rss) = c.summary.peak_rss_bytes {
                peak_rss = Some(peak_rss.map_or(rss, |p| p.max(rss)));
            }
        }
        rows.push(format!(
            "    {{\"scenario\": \"{}\", \"cells\": {}, \"sim_events\": {}, \
\"serial_ms\": {}, \"events_per_sec\": {}, \"peak_rss_bytes\": {}}}",
            json_escape(name),
            n,
            events,
            json_f64(wall * 1e3),
            json_f64(events as f64 / wall.max(1e-9)),
            peak_rss.map_or("null".to_string(), |b| b.to_string()),
        ));
    }
    o.push_str(&rows.join(",\n"));
    o.push_str("\n  ]\n}\n");
    o
}

/// Fixed CSV column prefix; [`to_csv`] appends `placement`,
/// `rebalance`, the percentile columns, `migrations`,
/// `transfer_stall_us`, `peak_rss_bytes` (empty off Linux), the fleet
/// columns (`hosts`, `fleet_placement`, `fleet_rejected`,
/// `cross_host_migrations`, `cluster_transfer_stall_us`), the fault
/// columns (`faults_mode`, `injected_faults`, `watchdog_kills`,
/// `fault_retries`, `recovered_tasks`, `lost_tasks`, `hot_removes`,
/// `degraded_us`), per-device
/// `dev<i>_util`/`dev<i>_rej`/`dev<i>_migr`/`dev<i>_migr_out`/
/// `dev<i>_stall_us` groups sized to the widest cell in the sweep,
/// and per-host `host<i>_util`/`host<i>_admitted`/`host<i>_rej`/
/// `host<i>_rounds` groups sized to the widest fleet cell (absent in
/// single-host sweeps).
pub const CSV_HEADER: &str = "scenario,scheduler,seed,horizon_ms,admitted,rejected,departed,\
killed,total_rounds,completed_requests,faults,direct_submits,utilization,fairness,elapsed_ms";

/// Serializes a sweep outcome as CSV (header + one row per cell).
pub fn to_csv(outcome: &SweepOutcome) -> String {
    let max_devices = outcome
        .results
        .iter()
        .map(|r| r.summary.per_device.len())
        .max()
        .unwrap_or(0);
    let max_hosts = outcome
        .results
        .iter()
        .map(|r| r.summary.per_host.len())
        .max()
        .unwrap_or(0);
    let mut o = String::from(CSV_HEADER);
    o.push_str(
        ",placement,rebalance,round_p50_us,round_p95_us,round_p99_us,migrations,\
transfer_stall_us,peak_rss_bytes,hosts,fleet_placement,fleet_rejected,\
cross_host_migrations,cluster_transfer_stall_us,faults_mode,injected_faults,\
watchdog_kills,fault_retries,recovered_tasks,lost_tasks,hot_removes,degraded_us",
    );
    for d in 0..max_devices {
        let _ = write!(
            o,
            ",dev{d}_util,dev{d}_rej,dev{d}_migr,dev{d}_migr_out,dev{d}_stall_us"
        );
    }
    for h in 0..max_hosts {
        let _ = write!(
            o,
            ",host{h}_util,host{h}_admitted,host{h}_rej,host{h}_rounds"
        );
    }
    o.push('\n');
    for r in &outcome.results {
        let s = &r.summary;
        let scenario = if s.scenario.contains([',', '"']) {
            format!("\"{}\"", s.scenario.replace('"', "\"\""))
        } else {
            s.scenario.clone()
        };
        let _ = write!(
            o,
            "{},{},{},{:.3},{},{},{},{},{},{},{},{},{:.6},{:.6},{:.3},{},{},{:.3},{:.3},{:.3},{}",
            scenario,
            s.scheduler.label(),
            s.seed,
            s.horizon.as_secs_f64() * 1e3,
            s.admitted,
            s.rejected,
            s.departed,
            s.killed,
            s.total_rounds,
            s.completed_requests,
            s.faults,
            s.direct_submits,
            s.utilization,
            s.fairness,
            s.elapsed.as_secs_f64() * 1e3,
            s.placement,
            s.rebalance,
            s.round_p50.as_micros_f64(),
            s.round_p95.as_micros_f64(),
            s.round_p99.as_micros_f64(),
            s.migrations,
        );
        let _ = write!(o, ",{:.3}", s.transfer_stall.as_micros_f64());
        match s.peak_rss_bytes {
            Some(b) => {
                let _ = write!(o, ",{b}");
            }
            None => o.push(','),
        }
        let _ = write!(
            o,
            ",{},{},{},{},{:.3}",
            s.hosts,
            s.fleet_placement,
            s.fleet_rejected,
            s.cross_host_migrations,
            s.cluster_transfer_stall.as_micros_f64(),
        );
        let _ = write!(
            o,
            ",{},{},{},{},{},{},{},{:.3}",
            s.faults_mode.label(),
            s.injected_faults,
            s.watchdog_kills,
            s.fault_retries,
            s.recovered_tasks,
            s.lost_tasks,
            s.hot_removes,
            s.degraded.as_micros_f64(),
        );
        for d in 0..max_devices {
            match s.per_device.get(d) {
                Some(dev) => {
                    let _ = write!(
                        o,
                        ",{:.6},{},{},{},{:.3}",
                        dev.utilization,
                        dev.rejected,
                        dev.migrations_in,
                        dev.migrations_out,
                        dev.transfer_stall.as_micros_f64()
                    );
                }
                None => o.push_str(",,,,,"),
            }
        }
        for h in 0..max_hosts {
            match s.per_host.get(h) {
                Some(host) => {
                    let _ = write!(
                        o,
                        ",{:.6},{},{},{}",
                        host.utilization, host.admitted, host.rejected, host.rounds
                    );
                }
                None => o.push_str(",,,,"),
            }
        }
        o.push('\n');
    }
    o
}

/// Renders the human-readable summary table printed by the CLI.
pub fn to_table(outcome: &SweepOutcome) -> String {
    let multi = outcome.results.iter().any(|r| r.summary.devices > 1);
    let fleet = outcome.results.iter().any(|r| r.summary.hosts > 1);
    let faulted = outcome
        .results
        .iter()
        .any(|r| r.summary.faults_mode != FaultMode::None);
    let mut headers = vec![
        "scenario".to_string(),
        "scheduler".into(),
        "seed".into(),
        "tasks".into(),
        "rej".into(),
        "rounds".into(),
        "p95".into(),
        "faults".into(),
        "util".into(),
        "fairness".into(),
        "ms".into(),
    ];
    if multi {
        headers.insert(2, "placement".into());
        headers.insert(3, "rebal".into());
        headers.push("per-dev util".into());
    }
    if fleet {
        headers.insert(2, "fleet".into());
        headers.push("per-host util".into());
    }
    if faulted {
        headers.push("fmode".into());
        headers.push("injected".into());
        headers.push("recov".into());
        headers.push("lost".into());
    }
    let mut table = neon_metrics::Table::new(headers);
    for r in &outcome.results {
        let s = &r.summary;
        let mut row = vec![
            s.scenario.clone(),
            s.scheduler.label().to_string(),
            s.seed.to_string(),
            s.admitted.to_string(),
            s.rejected.to_string(),
            s.total_rounds.to_string(),
            format!("{}", s.round_p95),
            s.faults.to_string(),
            format!("{:.2}", s.utilization),
            format!("{:.3}", s.fairness),
            format!("{:.1}", s.elapsed.as_secs_f64() * 1e3),
        ];
        if multi {
            row.insert(2, s.placement.to_string());
            row.insert(3, s.rebalance.to_string());
            row.push(
                s.per_device
                    .iter()
                    .map(|d| format!("{:.2}", d.utilization))
                    .collect::<Vec<_>>()
                    .join("/"),
            );
        }
        if fleet {
            row.insert(2, s.fleet_placement.to_string());
            row.push(
                s.per_host
                    .iter()
                    .map(|h| format!("{:.2}", h.utilization))
                    .collect::<Vec<_>>()
                    .join("/"),
            );
        }
        if faulted {
            row.push(s.faults_mode.label().to_string());
            row.push(s.injected_faults.to_string());
            row.push(s.recovered_tasks.to_string());
            row.push(s.lost_tasks.to_string());
        }
        table.row(row);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{CellResult, DeviceSummary, HostSummary};
    use neon_core::fleet::FleetPlacementKind;
    use neon_core::placement::PlacementKind;
    use neon_core::rebalance::RebalanceKind;
    use neon_core::report::DeviceReport;
    use neon_core::sched::SchedulerKind;
    use neon_core::telemetry::{DeviceSample, SimStats, StatKey, Timeline, TimelineSample};
    use neon_core::RunReport;
    use neon_gpu::DeviceId;
    use neon_sim::{SimDuration, SimTime};
    use std::time::Duration;

    fn outcome() -> SweepOutcome {
        let summary = CellSummary {
            scenario: "say \"hi\", ok".into(),
            scheduler: SchedulerKind::Direct,
            placement: PlacementKind::RoundRobin,
            fleet_placement: FleetPlacementKind::LeastLoaded,
            rebalance: RebalanceKind::CostAware,
            seed: 7,
            horizon: SimDuration::from_millis(100),
            devices: 2,
            hosts: 1,
            admitted: 3,
            rejected: 1,
            departed: 2,
            killed: 0,
            total_rounds: 1234,
            completed_requests: 1300,
            faults: 9,
            direct_submits: 1291,
            utilization: 0.875,
            fairness: 0.99,
            round_p50: SimDuration::from_micros(150),
            round_p95: SimDuration::from_micros(900),
            round_p99: SimDuration::from_micros(1500),
            migrations: 2,
            transfer_stall: SimDuration::from_micros(250),
            fleet_rejected: 0,
            cross_host_migrations: 0,
            cluster_transfer_stall: SimDuration::ZERO,
            faults_mode: neon_core::fault::FaultMode::None,
            injected_faults: 0,
            watchdog_kills: 0,
            fault_retries: 0,
            recovered_tasks: 0,
            lost_tasks: 0,
            hot_removes: 0,
            degraded: SimDuration::ZERO,
            per_device: vec![
                DeviceSummary {
                    device: DeviceId::new(0),
                    utilization: 0.9,
                    rejected: 1,
                    tenants: 2,
                    migrations_in: 0,
                    migrations_out: 2,
                    transfer_stall: SimDuration::ZERO,
                },
                DeviceSummary {
                    device: DeviceId::new(1),
                    utilization: 0.85,
                    rejected: 0,
                    tenants: 1,
                    migrations_in: 2,
                    migrations_out: 0,
                    transfer_stall: SimDuration::from_micros(250),
                },
            ],
            per_host: Vec::new(),
            elapsed: Duration::from_millis(12),
            peak_rss_bytes: Some(64 * 1024 * 1024),
        };
        let mut stats = SimStats::new();
        stats.set(StatKey::Events, 12_345);
        stats.set(StatKey::Faults, 9);
        stats.set(StatKey::Denials, 3);
        let mut timeline = Timeline::with_capacity(8);
        timeline.push(TimelineSample {
            at: SimTime::from_micros(50_000),
            events: 6_000,
            live_tasks: 3,
            inflight_migrations: 1,
            devices: vec![DeviceSample {
                device: DeviceId::new(0),
                utilization: 0.75,
                queue_depth: 4,
                tenants: 2,
                engines_busy: 1,
                migrations_in: 0,
                migrations_out: 1,
            }],
        });
        let report = RunReport {
            scheduler: "direct",
            wall: SimDuration::from_millis(100),
            tasks: vec![],
            devices: vec![
                DeviceReport {
                    device: DeviceId::new(0),
                    compute_busy: SimDuration::from_millis(90),
                    dma_busy: SimDuration::ZERO,
                    tenants: 2,
                    rejected: 1,
                    migrations_in: 0,
                    migrations_out: 2,
                    transfer_stall: SimDuration::ZERO,
                    degraded: SimDuration::ZERO,
                    stats: SimStats::new(),
                },
                DeviceReport {
                    device: DeviceId::new(1),
                    compute_busy: SimDuration::from_millis(85),
                    dma_busy: SimDuration::ZERO,
                    tenants: 1,
                    rejected: 0,
                    migrations_in: 2,
                    migrations_out: 0,
                    transfer_stall: SimDuration::from_micros(250),
                    degraded: SimDuration::ZERO,
                    stats: SimStats::new(),
                },
            ],
            compute_busy: SimDuration::from_millis(175),
            dma_busy: SimDuration::ZERO,
            faults: 9,
            polls: 100,
            direct_submits: 1291,
            rejected_admissions: 1,
            migrations: 2,
            transfer_stall: SimDuration::from_micros(250),
            injected_faults: 0,
            watchdog_kills: 0,
            fault_retries: 0,
            recovered_tasks: 0,
            lost_tasks: 0,
            hot_removes: 0,
            degraded: SimDuration::ZERO,
            events: 12_345,
            stats,
            groups: vec![],
            timeline,
        };
        SweepOutcome {
            results: vec![CellResult {
                summary,
                report,
                fleet: None,
                trace_jsonl: None,
            }],
            wall: Duration::from_millis(15),
            threads: 4,
        }
    }

    #[test]
    fn bench_json_reports_events_per_sec() {
        let serial = outcome();
        let parallel = outcome();
        let json = bench_json(&serial, std::slice::from_ref(&parallel), &[]);
        assert!(json.contains("\"bench\": \"core\""), "{json}");
        assert!(json.contains("\"sim_events\": 12345"), "{json}");
        assert!(json.contains("\"events_per_sec_serial\""), "{json}");
        assert!(json.contains("\"scenarios\": ["), "{json}");
        // 12_345 events over the cell's 12 ms elapsed ≈ 1.029M ev/s.
        assert!(json.contains("\"events_per_sec\": 1028750.0"), "{json}");
        // One scenario group for the single cell.
        assert_eq!(json.matches("\"cells\": 1").count(), 2, "{json}");
    }

    #[test]
    fn bench_json_threads_sweep_has_one_row_per_run() {
        let serial = outcome();
        let mut narrow = outcome();
        narrow.threads = 1;
        narrow.wall = Duration::from_millis(30);
        let wide = outcome(); // 4 threads, 15 ms
        let json = bench_json(
            &serial,
            &[narrow, wide],
            &[Some(9_000_000), Some(7_500_000)],
        );
        assert!(json.contains("\"threads_sweep\": ["), "{json}");
        // One row per parallel run, in execution order.
        assert!(
            json.contains("{\"threads\": 1, \"parallel_ms\": 30.000000, \"speedup\": 0.500000"),
            "{json}"
        );
        assert!(
            json.contains("{\"threads\": 4, \"parallel_ms\": 15.000000, \"speedup\": 1.000000"),
            "{json}"
        );
        // Headline fields describe the widest run.
        assert!(json.contains("\"threads\": 4,\n"), "{json}");
        assert!(json.contains("\"speedup\": 1.000000,\n"), "{json}");
        // Each thread row carries its own current-RSS sample — not a
        // shared run-wide high-water mark — so a later row may report
        // *less* than an earlier one.
        assert!(json.contains("\"peak_rss_bytes\": 9000000"), "{json}");
        assert!(json.contains("\"peak_rss_bytes\": 7500000"), "{json}");
        // The scenario row still reports the per-cell VmHWM max.
        assert_eq!(
            json.matches(&format!("\"peak_rss_bytes\": {}", 64 * 1024 * 1024))
                .count(),
            1,
            "{json}"
        );
    }

    #[test]
    fn bench_json_rows_without_a_sample_emit_null() {
        let serial = outcome();
        let run = outcome();
        let json = bench_json(&serial, std::slice::from_ref(&run), &[None]);
        assert!(json.contains("\"peak_rss_bytes\": null"), "{json}");
    }

    #[test]
    fn json_escapes_and_structures() {
        let json = to_json(&outcome());
        assert!(json.contains("\"cells\": 1"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("say \\\"hi\\\", ok"), "{json}");
        assert!(json.contains("\"fairness\": 0.990000"));
        assert!(json.contains("\"placement\": \"round-robin\""));
        assert!(json.contains("\"rebalance\": \"cost-aware\""));
        assert!(json.contains("\"round_p95_us\": 900.000000"));
        assert!(
            json.contains("\"per_device\": [{\"device\": 0, \"utilization\": 0.900000"),
            "{json}"
        );
        assert!(json.contains("\"migrations\": 2"));
        assert!(json.contains("\"transfer_stall_us\": 250.000000"));
        assert!(json.contains("\"migrations_in\": 2"), "{json}");
        assert!(json.contains("\"migrations_out\": 2"), "{json}");
        // Must parse as balanced braces/brackets at minimum.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        let open_brackets = json.matches('[').count();
        let close_brackets = json.matches(']').count();
        assert_eq!(open_brackets, close_brackets);
    }

    #[test]
    fn csv_carries_placement_percentiles_and_device_columns() {
        let csv = to_csv(&outcome());
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with(CSV_HEADER), "{header}");
        assert!(
            header.ends_with(
                ",placement,rebalance,round_p50_us,round_p95_us,round_p99_us,migrations,\
                 transfer_stall_us,peak_rss_bytes,hosts,fleet_placement,fleet_rejected,\
                 cross_host_migrations,cluster_transfer_stall_us,faults_mode,\
                 injected_faults,watchdog_kills,fault_retries,recovered_tasks,lost_tasks,\
                 hot_removes,degraded_us,\
                 dev0_util,dev0_rej,dev0_migr,dev0_migr_out,dev0_stall_us,\
                 dev1_util,dev1_rej,dev1_migr,dev1_migr_out,dev1_stall_us"
            ),
            "{header}"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("\"say \"\"hi\"\", ok\""), "{row}");
        assert!(row.contains(",direct,7,"));
        assert!(row.contains(",round-robin,cost-aware,"));
        assert!(
            row.contains(&format!(",{},1,least-loaded,0,0,0.000,", 64 * 1024 * 1024)),
            "{row}"
        );
        assert!(
            row.contains(",0.900000,1,0,2,0.000,0.850000,0,2,0,250.000"),
            "{row}"
        );
        assert_eq!(
            header.split(',').count(),
            row.split(',').count() - 1, // the quoted scenario field contains one comma
            "row width must match the header"
        );
    }

    #[test]
    fn fleet_cells_emit_host_columns_and_json_blocks() {
        let mut out = outcome();
        {
            let s = &mut out.results[0].summary;
            s.hosts = 2;
            s.fleet_placement = FleetPlacementKind::RoundRobin;
            s.fleet_rejected = 3;
            s.cross_host_migrations = 1;
            s.cluster_transfer_stall = SimDuration::from_micros(400);
            s.per_host = vec![
                HostSummary {
                    host: 0,
                    devices: 1,
                    utilization: 0.9,
                    admitted: 2,
                    rejected: 1,
                    rounds: 700,
                },
                HostSummary {
                    host: 1,
                    devices: 1,
                    utilization: 0.85,
                    admitted: 1,
                    rejected: 0,
                    rounds: 534,
                },
            ];
        }
        let json = to_json(&out);
        assert!(json.contains("\"hosts\": 2"), "{json}");
        assert!(
            json.contains("\"fleet_placement\": \"round-robin\""),
            "{json}"
        );
        assert!(json.contains("\"fleet_rejected\": 3"), "{json}");
        assert!(json.contains("\"cross_host_migrations\": 1"), "{json}");
        assert!(
            json.contains("\"cluster_transfer_stall_us\": 400.000000"),
            "{json}"
        );
        assert!(
            json.contains(
                "\"per_host\": [{\"host\": 0, \"devices\": 1, \"utilization\": 0.900000, \
\"admitted\": 2, \"rejected\": 1, \"rounds\": 700}, "
            ),
            "{json}"
        );
        let csv = to_csv(&out);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(
            header.ends_with(
                ",host0_util,host0_admitted,host0_rej,host0_rounds,\
                 host1_util,host1_admitted,host1_rej,host1_rounds"
            ),
            "{header}"
        );
        let row = lines.next().unwrap();
        assert!(row.contains(",2,round-robin,3,1,400.000,"), "{row}");
        assert!(row.ends_with(",0.900000,2,1,700,0.850000,1,0,534"), "{row}");
        assert_eq!(
            header.split(',').count(),
            row.split(',').count() - 1, // the quoted scenario holds one comma
            "fleet row width must match the header"
        );
        let table = to_table(&out);
        assert!(table.contains("fleet"), "{table}");
        assert!(table.contains("0.90/0.85"), "{table}");
    }

    #[test]
    fn json_carries_stats_block_and_rss() {
        let json = to_json(&outcome());
        assert!(
            json.contains("\"stats\": {\"events\": 12345, "),
            "stats must lead with the events counter in StatKey order: {json}"
        );
        assert!(json.contains("\"denials\": 3"), "{json}");
        assert!(json.contains("\"rebalance_vetoed\": 0"), "{json}");
        assert!(
            json.contains(&format!("\"peak_rss_bytes\": {}", 64 * 1024 * 1024)),
            "{json}"
        );
    }

    #[test]
    fn bench_json_carries_schema_and_scenario_set() {
        let json = bench_json(&outcome(), std::slice::from_ref(&outcome()), &[Some(1)]);
        assert!(json.contains("\"schema\": \"neon-bench-core/3\""), "{json}");
        assert!(json.contains("\"created_by\": \"neon bench\""), "{json}");
        assert!(
            json.contains("\"scenario_set\": [\"say \\\"hi\\\", ok\"]"),
            "{json}"
        );
        assert!(
            json.contains(&format!("\"peak_rss_bytes\": {}", 64 * 1024 * 1024)),
            "{json}"
        );
    }

    #[test]
    fn timeline_json_carries_samples_and_drop_accounting() {
        let json = timeline_json(&outcome());
        assert!(json.contains("\"samples_retained\": 1"), "{json}");
        assert!(json.contains("\"samples_dropped\": 0"), "{json}");
        assert!(json.contains("\"capacity\": 8"), "{json}");
        assert!(json.contains("\"t_ns\": 50000000"), "{json}");
        assert!(json.contains("\"queue_depth\": 4"), "{json}");
        assert!(json.contains("\"engines_busy\": 1"), "{json}");
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count(), "{json}");
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn timeline_csv_is_one_row_per_cell_sample_device() {
        let csv = timeline_csv(&outcome());
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("scenario,scheduler,"), "{header}");
        assert!(
            header.ends_with(",migrations_in,migrations_out"),
            "{header}"
        );
        let row = lines.next().unwrap();
        assert!(
            row.contains(",50000000,6000,3,1,0,0.750000,4,2,1,0,1"),
            "{row}"
        );
        assert_eq!(
            header.split(',').count(),
            row.split(',').count() - 1, // quoted scenario holds one comma
            "row width must match the header"
        );
        assert!(lines.next().is_none(), "one sample × one device = one row");
    }

    #[test]
    fn table_renders_every_cell() {
        let text = to_table(&outcome());
        assert!(text.contains("direct"));
        assert!(text.contains("1234"));
        assert!(text.contains("round-robin"));
        assert!(text.contains("cost-aware"));
        assert!(text.contains("0.90/0.85"));
    }
}
