//! Parallel execution of scenario sweeps.
//!
//! A sweep is the cross product of scenarios × schedulers × placements
//! × fleet placements × rebalance policies × seeds. Every cell is an
//! independent,
//! deterministic simulation, so cells fan out perfectly across OS
//! threads. The runner is a **work-stealing** scheme over scoped
//! `std::thread` workers:
//!
//! - The plan is pre-chunked into per-worker deques, contiguous in
//!   plan order and weighted by a per-cell cost estimate
//!   (horizon × member count ≈ simulated events), so workers start on
//!   balanced shares without any shared counter.
//! - A worker drains its own deque from the front; when empty, it
//!   steals one cell from the *back* of the busiest victim's deque.
//! - Each worker recycles a single [`World`](neon_core::world::World)
//!   across its cells through a [`CellRunner`], and buffers results in
//!   its own pre-sized `Vec` — no per-cell locking. Buffers are merged
//!   into plan order once, at the end.
//!
//! Determinism comes from the *output discipline*, not the execution
//! order: every cell is seeded independently of which worker runs it,
//! and results are reassembled in plan order, so any thread count —
//! including the serial path — produces identical results.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use neon_core::fault::FaultMode;
use neon_core::fleet::FleetPlacementKind;
use neon_core::placement::PlacementKind;
use neon_core::rebalance::RebalanceKind;
use neon_core::sched::SchedulerKind;

use crate::driver::{CellResult, CellRunner};
use crate::spec::ScenarioSpec;

/// One cell of a sweep plan.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The scenario (shared across its cells).
    pub spec: Arc<ScenarioSpec>,
    /// Policy under test.
    pub scheduler: SchedulerKind,
    /// Placement policy under test.
    pub placement: PlacementKind,
    /// Fleet (cross-host) placement policy under test. A label-only
    /// pass-through for single-host scenarios.
    pub fleet_placement: FleetPlacementKind,
    /// Rebalancing policy under test.
    pub rebalance: RebalanceKind,
    /// Fault categories this cell injects from the scenario's fault
    /// schedule ([`FaultMode::None`] for fault-free scenarios).
    pub faults: FaultMode,
    /// Seed for this cell.
    pub seed: u64,
}

/// Expands scenarios into their full cell matrix, in deterministic
/// order (scenario-major, then scheduler, then placement, then fleet
/// placement, then rebalance, then fault mode, then seed). Fault-free
/// scenarios contribute a single [`FaultMode::None`] entry on that
/// axis, so their plans are unchanged by its existence.
pub fn plan(specs: impl IntoIterator<Item = ScenarioSpec>) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for spec in specs {
        let fault_modes = spec.effective_fault_modes();
        let spec = Arc::new(spec);
        for &scheduler in &spec.schedulers {
            for &placement in &spec.placements {
                for &fleet_placement in &spec.fleet_placements {
                    for &rebalance in &spec.rebalances {
                        for &faults in &fault_modes {
                            for &seed in &spec.seeds {
                                cells.push(SweepCell {
                                    spec: Arc::clone(&spec),
                                    scheduler,
                                    placement,
                                    fleet_placement,
                                    rebalance,
                                    faults,
                                    seed,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    cells
}

/// Outcome of a sweep run.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-cell results, in plan order.
    pub results: Vec<CellResult>,
    /// Host wall-clock time for the whole sweep.
    pub wall: Duration,
    /// Worker threads used (1 for a serial run).
    pub threads: usize,
}

/// Runs every cell on the calling thread, in plan order, recycling one
/// `World` across cells.
pub fn run_serial(cells: &[SweepCell]) -> SweepOutcome {
    let started = Instant::now();
    let mut runner = CellRunner::new();
    let results = cells
        .iter()
        .map(|c| {
            runner.run(
                &c.spec,
                c.scheduler,
                c.placement,
                c.fleet_placement,
                c.rebalance,
                c.faults,
                c.seed,
            )
        })
        .collect();
    SweepOutcome {
        results,
        wall: started.elapsed(),
        threads: 1,
    }
}

/// Estimated relative cost of a cell — the work-stealing runner's
/// chunking weight. Simulated events scale with horizon × tenant
/// count, so that product is the estimate; it only steers the initial
/// partition (stealing corrects any error), so it need not be exact.
fn cell_cost(cell: &SweepCell) -> u64 {
    let members: u64 = cell
        .spec
        .groups
        .iter()
        .map(|g| g.count as u64)
        .sum::<u64>()
        .max(1);
    (cell.spec.horizon.as_micros_f64() as u64).max(1) * members
}

/// One worker's deque of pending cell indices. The owner pops from the
/// front (preserving plan-order locality of its contiguous chunk);
/// thieves take from the back, where the chunk's coldest work sits.
/// `len` mirrors the deque length so victim selection never takes a
/// lock.
struct WorkDeque {
    jobs: Mutex<VecDeque<usize>>,
    len: AtomicUsize,
}

impl WorkDeque {
    fn new(jobs: VecDeque<usize>) -> Self {
        let len = AtomicUsize::new(jobs.len());
        WorkDeque {
            jobs: Mutex::new(jobs),
            len,
        }
    }

    fn pop_front(&self) -> Option<usize> {
        // lint: allow(unchecked-unwrap) — a poisoned deque means another
        // worker already panicked; propagating is the only sound option
        let mut jobs = self.jobs.lock().expect("work deque poisoned");
        let job = jobs.pop_front();
        if job.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        job
    }

    fn steal_back(&self) -> Option<usize> {
        // lint: allow(unchecked-unwrap) — a poisoned deque means another
        // worker already panicked; propagating is the only sound option
        let mut jobs = self.jobs.lock().expect("work deque poisoned");
        let job = jobs.pop_back();
        if job.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        job
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
}

/// Splits the plan into `threads` contiguous, cost-balanced chunks:
/// walking plan order, a cell goes to the current worker until that
/// worker's share of the total estimated cost is filled.
fn chunk_plan(cells: &[SweepCell], threads: usize) -> Vec<VecDeque<usize>> {
    let costs: Vec<u64> = cells.iter().map(cell_cost).collect();
    let total: u128 = costs.iter().map(|&c| c as u128).sum();
    let mut chunks: Vec<VecDeque<usize>> = (0..threads).map(|_| VecDeque::new()).collect();
    let mut spent: u128 = 0;
    let mut worker = 0usize;
    for (i, &cost) in costs.iter().enumerate() {
        // Advance to the worker whose cost budget this cell falls in;
        // the last worker absorbs any rounding remainder.
        while worker + 1 < threads && spent * threads as u128 >= total * (worker as u128 + 1) {
            worker += 1;
        }
        chunks[worker].push_back(i);
        spent += cost as u128;
    }
    chunks
}

/// Runs the plan across `threads` work-stealing workers (defaulting to
/// the machine's available parallelism), each recycling one `World`
/// across its cells. Results are identical to [`run_serial`] for every
/// thread count — see the module docs for why.
pub fn run_parallel(cells: &[SweepCell], threads: Option<usize>) -> SweepOutcome {
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, cells.len().max(1));
    if threads <= 1 || cells.len() <= 1 {
        return run_serial(cells);
    }
    let started = Instant::now();
    let deques: Vec<WorkDeque> = chunk_plan(cells, threads)
        .into_iter()
        .map(WorkDeque::new)
        .collect();
    let mut buffers: Vec<Vec<(usize, CellResult)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let deques = &deques;
        let handles: Vec<_> = (0..threads)
            .map(|me| {
                scope.spawn(move || {
                    let mut runner = CellRunner::new();
                    // Pre-size for the initial chunk plus room for a
                    // few stolen cells, so result pushes don't grow.
                    let mut out: Vec<(usize, CellResult)> =
                        Vec::with_capacity(deques[me].len() + 4);
                    loop {
                        let job = deques[me].pop_front().or_else(|| {
                            // Own deque empty: steal one cell from the
                            // back of the busiest victim.
                            (0..deques.len())
                                .filter(|&v| v != me)
                                .max_by_key(|&v| deques[v].len())
                                .and_then(|v| deques[v].steal_back())
                        });
                        match job {
                            Some(i) => {
                                let c = &cells[i];
                                out.push((
                                    i,
                                    runner.run(
                                        &c.spec,
                                        c.scheduler,
                                        c.placement,
                                        c.fleet_placement,
                                        c.rebalance,
                                        c.faults,
                                        c.seed,
                                    ),
                                ));
                            }
                            None => {
                                // A steal can race another thief; only
                                // quit once every deque is drained
                                // (lengths never grow, so this is
                                // stable once observed).
                                if deques.iter().all(|d| d.len() == 0) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            // lint: allow(unchecked-unwrap) — re-raises a worker panic on the
            // coordinating thread
            buffers.push(handle.join().expect("sweep worker panicked"));
        }
    });
    // Single merge back into plan order — the only post-run pass.
    let mut slots: Vec<Option<CellResult>> = (0..cells.len()).map(|_| None).collect();
    for (i, result) in buffers.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "cell {i} ran twice");
        slots[i] = Some(result);
    }
    let results = slots
        .into_iter()
        // lint: allow(unchecked-unwrap) — the work deque hands each cell
        // index to exactly one worker
        .map(|r| r.expect("every cell was claimed by exactly one worker"))
        .collect();
    SweepOutcome {
        results,
        wall: started.elapsed(),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ArrivalSpec, LifetimeSpec, TenantGroup, WorkloadSpec};
    use neon_sim::SimDuration;

    fn small_spec(name: &str, seeds: Vec<u64>) -> ScenarioSpec {
        ScenarioSpec::new(name, SimDuration::from_millis(40))
            .seeds(seeds)
            .schedulers(vec![
                SchedulerKind::Direct,
                SchedulerKind::DisengagedFairQueueing,
            ])
            .group(
                TenantGroup::new(
                    "mix",
                    WorkloadSpec::Throttle {
                        request: SimDuration::from_micros(120),
                        off_ratio: 0.0,
                        jitter: 0.0,
                    },
                )
                .count(3)
                .arrival(ArrivalSpec::Staggered {
                    gap: SimDuration::from_millis(4),
                })
                .lifetime(LifetimeSpec::Fixed(SimDuration::from_millis(25))),
            )
    }

    #[test]
    fn plan_is_the_full_cross_product() {
        let cells = plan([small_spec("a", vec![1, 2]), small_spec("b", vec![3])]);
        assert_eq!(cells.len(), 2 * 2 + 2);
        assert_eq!(cells[0].spec.name, "a");
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[1].seed, 2);
    }

    #[test]
    fn parallel_equals_serial() {
        let cells = plan([small_spec("par", vec![1, 2, 3])]);
        let serial = run_serial(&cells);
        let parallel = run_parallel(&cells, Some(4));
        assert_eq!(serial.results.len(), parallel.results.len());
        for (s, p) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(s.summary.scenario, p.summary.scenario);
            assert_eq!(s.summary.seed, p.summary.seed);
            assert_eq!(s.summary.total_rounds, p.summary.total_rounds);
            assert_eq!(s.summary.faults, p.summary.faults);
            assert_eq!(s.report.compute_busy, p.report.compute_busy);
        }
        assert!(parallel.threads > 1);
    }

    #[test]
    fn placement_axis_expands_the_plan() {
        let spec = small_spec("plc", vec![1, 2])
            .devices(2)
            .placements(PlacementKind::ALL.to_vec());
        let cells = plan([spec]);
        // 2 schedulers × 5 placements × 2 seeds.
        assert_eq!(cells.len(), 20);
        assert_eq!(cells[0].placement, PlacementKind::LeastLoaded);
        assert_eq!(cells[2].placement, PlacementKind::RoundRobin);
        assert_eq!(cells[8].placement, PlacementKind::CostMin);
        // Placement-major over seeds, scheduler-major over placements.
        assert_eq!(cells[0].scheduler, cells[9].scheduler);
        assert_ne!(cells[0].scheduler, cells[10].scheduler);
    }

    #[test]
    fn fleet_placement_axis_expands_the_plan() {
        let spec = small_spec("fleet", vec![1])
            .hosts(2)
            .fleet_placements(FleetPlacementKind::ALL.to_vec());
        let cells = plan([spec]);
        // 2 schedulers × 1 placement × 3 fleet placements × 1 seed.
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].fleet_placement, FleetPlacementKind::LeastLoaded);
        assert_eq!(cells[1].fleet_placement, FleetPlacementKind::RoundRobin);
        assert_eq!(cells[2].fleet_placement, FleetPlacementKind::FewestTenants);
        // Fleet-placement-major within a scheduler.
        assert_eq!(cells[0].scheduler, cells[2].scheduler);
        assert_ne!(cells[2].scheduler, cells[3].scheduler);
    }

    #[test]
    fn single_cell_plans_fall_back_to_serial() {
        let mut spec = small_spec("solo", vec![9]);
        spec.schedulers = vec![SchedulerKind::Direct];
        let cells = plan([spec]);
        assert_eq!(cells.len(), 1);
        let outcome = run_parallel(&cells, None);
        assert_eq!(outcome.threads, 1);
        assert_eq!(outcome.results.len(), 1);
    }
}
