//! Parallel execution of scenario sweeps.
//!
//! A sweep is the cross product of scenarios × schedulers × placements
//! × rebalance policies × seeds. Every cell is an independent,
//! deterministic simulation
//! with its own [`neon_core::world::World`], so cells fan out
//! perfectly across OS threads: the runner uses scoped `std::thread`
//! workers pulling cell indices from a shared atomic counter. Results
//! are returned in plan order regardless of completion order, and are
//! bit-identical to a serial run of the same plan.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use neon_core::placement::PlacementKind;
use neon_core::rebalance::RebalanceKind;
use neon_core::sched::SchedulerKind;

use crate::driver::{run_cell, CellResult};
use crate::spec::ScenarioSpec;

/// One cell of a sweep plan.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The scenario (shared across its cells).
    pub spec: Arc<ScenarioSpec>,
    /// Policy under test.
    pub scheduler: SchedulerKind,
    /// Placement policy under test.
    pub placement: PlacementKind,
    /// Rebalancing policy under test.
    pub rebalance: RebalanceKind,
    /// Seed for this cell.
    pub seed: u64,
}

/// Expands scenarios into their full cell matrix, in deterministic
/// order (scenario-major, then scheduler, then placement, then
/// rebalance, then seed).
pub fn plan(specs: impl IntoIterator<Item = ScenarioSpec>) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for spec in specs {
        let spec = Arc::new(spec);
        for &scheduler in &spec.schedulers {
            for &placement in &spec.placements {
                for &rebalance in &spec.rebalances {
                    for &seed in &spec.seeds {
                        cells.push(SweepCell {
                            spec: Arc::clone(&spec),
                            scheduler,
                            placement,
                            rebalance,
                            seed,
                        });
                    }
                }
            }
        }
    }
    cells
}

/// Outcome of a sweep run.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-cell results, in plan order.
    pub results: Vec<CellResult>,
    /// Host wall-clock time for the whole sweep.
    pub wall: Duration,
    /// Worker threads used (1 for a serial run).
    pub threads: usize,
}

/// Runs every cell on the calling thread, in plan order.
pub fn run_serial(cells: &[SweepCell]) -> SweepOutcome {
    let started = Instant::now();
    let results = cells
        .iter()
        .map(|c| run_cell(&c.spec, c.scheduler, c.placement, c.rebalance, c.seed))
        .collect();
    SweepOutcome {
        results,
        wall: started.elapsed(),
        threads: 1,
    }
}

/// Runs the plan across `threads` workers (defaults to the machine's
/// available parallelism when `None`), one `World` per cell.
pub fn run_parallel(cells: &[SweepCell], threads: Option<usize>) -> SweepOutcome {
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, cells.len().max(1));
    if threads <= 1 || cells.len() <= 1 {
        return run_serial(cells);
    }
    let started = Instant::now();
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<CellResult>>> =
        Mutex::new((0..cells.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let cell = &cells[i];
                let result = run_cell(
                    &cell.spec,
                    cell.scheduler,
                    cell.placement,
                    cell.rebalance,
                    cell.seed,
                );
                slots.lock().expect("result lock poisoned")[i] = Some(result);
            });
        }
    });
    let results = slots
        .into_inner()
        .expect("result lock poisoned")
        .into_iter()
        .map(|r| r.expect("every cell index was claimed by a worker"))
        .collect();
    SweepOutcome {
        results,
        wall: started.elapsed(),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ArrivalSpec, LifetimeSpec, TenantGroup, WorkloadSpec};
    use neon_sim::SimDuration;

    fn small_spec(name: &str, seeds: Vec<u64>) -> ScenarioSpec {
        ScenarioSpec::new(name, SimDuration::from_millis(40))
            .seeds(seeds)
            .schedulers(vec![
                SchedulerKind::Direct,
                SchedulerKind::DisengagedFairQueueing,
            ])
            .group(
                TenantGroup::new(
                    "mix",
                    WorkloadSpec::Throttle {
                        request: SimDuration::from_micros(120),
                        off_ratio: 0.0,
                        jitter: 0.0,
                    },
                )
                .count(3)
                .arrival(ArrivalSpec::Staggered {
                    gap: SimDuration::from_millis(4),
                })
                .lifetime(LifetimeSpec::Fixed(SimDuration::from_millis(25))),
            )
    }

    #[test]
    fn plan_is_the_full_cross_product() {
        let cells = plan([small_spec("a", vec![1, 2]), small_spec("b", vec![3])]);
        assert_eq!(cells.len(), 2 * 2 + 2);
        assert_eq!(cells[0].spec.name, "a");
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[1].seed, 2);
    }

    #[test]
    fn parallel_equals_serial() {
        let cells = plan([small_spec("par", vec![1, 2, 3])]);
        let serial = run_serial(&cells);
        let parallel = run_parallel(&cells, Some(4));
        assert_eq!(serial.results.len(), parallel.results.len());
        for (s, p) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(s.summary.scenario, p.summary.scenario);
            assert_eq!(s.summary.seed, p.summary.seed);
            assert_eq!(s.summary.total_rounds, p.summary.total_rounds);
            assert_eq!(s.summary.faults, p.summary.faults);
            assert_eq!(s.report.compute_busy, p.report.compute_busy);
        }
        assert!(parallel.threads > 1);
    }

    #[test]
    fn placement_axis_expands_the_plan() {
        let spec = small_spec("plc", vec![1, 2])
            .devices(2)
            .placements(PlacementKind::ALL.to_vec());
        let cells = plan([spec]);
        // 2 schedulers × 5 placements × 2 seeds.
        assert_eq!(cells.len(), 20);
        assert_eq!(cells[0].placement, PlacementKind::LeastLoaded);
        assert_eq!(cells[2].placement, PlacementKind::RoundRobin);
        assert_eq!(cells[8].placement, PlacementKind::CostMin);
        // Placement-major over seeds, scheduler-major over placements.
        assert_eq!(cells[0].scheduler, cells[9].scheduler);
        assert_ne!(cells[0].scheduler, cells[10].scheduler);
    }

    #[test]
    fn single_cell_plans_fall_back_to_serial() {
        let mut spec = small_spec("solo", vec![9]);
        spec.schedulers = vec![SchedulerKind::Direct];
        let cells = plan([spec]);
        assert_eq!(cells.len(), 1);
        let outcome = run_parallel(&cells, None);
        assert_eq!(outcome.threads, 1);
        assert_eq!(outcome.results.len(), 1);
    }
}
