//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors exactly the subset of the `rand` 0.9 API that `neon-sim`
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random`] and [`Rng::random_range`] over the integer, float
//! and length ranges the workload models draw from.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction `rand`'s 64-bit `SmallRng` uses. Streams are not
//! bit-compatible with upstream `rand`, but every guarantee the
//! simulator relies on (determinism for equal seeds, independence of
//! forked streams, uniformity) holds.

use std::ops::{Range, RangeInclusive};

/// Seeding interface: the subset of `rand::SeedableRng` in use.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface: the subset of `rand::Rng` in use.
pub trait Rng {
    /// The core entropy source.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a [`Standard`]-distributed type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types samplable without parameters (the `Standard` distribution).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// A uniform double in `[0, 1)` from the high 53 bits of a draw.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, span)` (Lemire's method).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span {
            return (m >> 64) as u64;
        }
        // Rejection zone for exact uniformity.
        let threshold = span.wrapping_neg() % span;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u64, usize, u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

pub mod rngs {
    //! Small, fast generators.

    use super::{Rng, SeedableRng};

    /// xoshiro256++: the small-state generator backing this shim.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors (and done by rand).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.random_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let f: f64 = r.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: usize = r.random_range(0usize..5);
            assert!(i < 5);
            let s: f64 = r.random_range(-0.25..=0.25);
            assert!((-0.25..=0.25).contains(&s));
        }
    }

    #[test]
    fn full_range_inclusive_does_not_overflow() {
        let mut r = SmallRng::seed_from_u64(3);
        let _: u64 = r.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn uniformity_rough_check() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            let i: usize = r.random_range(0usize..10);
            buckets[i] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((800..1200).contains(&b), "bucket {i} count {b}");
        }
    }
}
