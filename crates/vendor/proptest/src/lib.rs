//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate vendors
//! the subset of proptest's API that the workspace's property tests
//! use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assume!`] / [`prop_oneof!`], integer
//! range strategies, [`prelude::Just`], [`prelude::any`], and
//! [`collection::vec`].
//!
//! Inputs are generated from a deterministic per-test stream (seeded
//! from the test's module path and case index), so failures are
//! reproducible run-to-run. There is no shrinking: a failing case
//! reports its exact inputs instead.

pub mod test_runner {
    //! Test-case configuration and the deterministic input stream.

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
        /// Accepted for upstream compatibility; this shim does not
        /// shrink failing inputs (it reports them exactly instead).
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic generator for test inputs (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream unique to (test name, case index), stable across
        /// runs so failures reproduce.
        pub fn for_case(test: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below: empty range");
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (n as u128);
                let low = m as u64;
                if low >= n || low >= n.wrapping_neg() % n {
                    return (m >> 64) as u64;
                }
            }
        }
    }
}

pub mod strategy {
    //! Input-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, usize);

    /// Types with a parameterless default strategy ([`crate::prelude::any`]).
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    /// Strategy form of [`Arbitrary`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(pub PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_tuple_strategies {
        ($(($($s:ident/$v:ident),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategies!(
        (S0 / s0, S1 / s1),
        (S0 / s0, S1 / s1, S2 / s2),
        (S0 / s0, S1 / s1, S2 / s2, S3 / s3)
    );

    /// A uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// An empty union; populate with [`Union::push`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union {
                options: Vec::new(),
            }
        }

        /// Adds an alternative.
        pub fn push<S: Strategy<Value = T> + 'static>(&mut self, s: S) {
            self.options.push(Box::new(s));
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "prop_oneof! of zero options");
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `len` and elements
    /// from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy: `vec(strategy, min..max)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// The default strategy for `T`: `any::<bool>()` etc.
    pub fn any<T: crate::strategy::Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any(std::marker::PhantomData)
    }
}

/// Declares property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(
                    &($strat),
                    &mut __proptest_rng,
                );)+
                let __proptest_inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}; ", &$arg));
                    )+
                    s
                };
                let __proptest_result: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(msg) = __proptest_result {
                    panic!(
                        "property failed at case {case}: {msg}\n    inputs: {}",
                        __proptest_inputs
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}: `{:?} == {:?}`", format!($($fmt)+), l, r
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a premise.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut union = $crate::strategy::Union::new();
        $(union.push($strat);)+
        union
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn streams_are_reproducible() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut rng = TestRng::for_case("range", 0);
        for _ in 0..500 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..100 {
            let v = crate::collection::vec(0u64..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let s = prop_oneof![Just(1u64), Just(2u64), Just(3u64)];
        let mut rng = TestRng::for_case("oneof", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// The macro surface itself works end to end.
        #[test]
        fn macro_roundtrip(x in 0u64..100, flip in any::<bool>()) {
            prop_assume!(x != 99);
            prop_assert!(x < 100, "x was {x}");
            let y = if flip { x + 1 } else { x };
            prop_assert_eq!(x, if flip { y - 1 } else { y });
        }
    }
}
