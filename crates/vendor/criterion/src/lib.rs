//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the small slice of criterion's API that `neon-bench` uses:
//! [`Criterion::bench_function`], [`Bencher::iter`], the
//! `sample_size` knob, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurements are simple wall-clock
//! means over `sample_size` iterations — adequate for spotting
//! order-of-magnitude regressions, with zero dependencies.
//!
//! Binaries accept `--test` (run each benchmark once, for CI smoke
//! runs) and a substring filter as the first free argument, mirroring
//! criterion's CLI behaviour closely enough for `cargo bench`.

use std::time::{Duration, Instant};

/// Benchmark harness configuration and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if !a.starts_with('-') && filter.is_none() => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Criterion {
            sample_size: 100,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets a target measurement time. Accepted for API compatibility;
    /// this shim always runs exactly `sample_size` iterations.
    pub fn measurement_time(self, _t: Duration) -> Self {
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: if self.test_mode { 1 } else { self.sample_size },
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{name:<48} (no iterations)");
        } else {
            let mean = b.total / b.iters as u32;
            println!("{name:<48} mean {mean:>12.3?} ({} iters)", b.iters);
        }
        self
    }
}

/// Per-benchmark timing context handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` `sample_size` times, timing each call.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = f();
            self.total += start.elapsed();
            self.iters += 1;
            std::hint::black_box(out);
        }
    }
}

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
            filter: None,
        };
        let mut runs = 0;
        c.bench_function("shim/counts", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 1,
            test_mode: false,
            filter: Some("match-me".into()),
        };
        let mut runs = 0;
        c.bench_function("other", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
        c.bench_function("has match-me inside", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
