//! Lightweight simulation trace recorder.
//!
//! The trace is a bounded, append-only log of `(time, label, detail)`
//! entries. Experiments use it to verify event ordering and to debug
//! scheduler decisions; it also backs the determinism property tests
//! (same seed ⇒ byte-identical trace).

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event happened.
    pub at: SimTime,
    /// Short machine-readable category, e.g. `"fault"`, `"token"`.
    pub label: &'static str,
    /// Free-form detail (task ids, durations...).
    pub detail: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.label, self.detail)
    }
}

/// A bounded trace buffer.
///
/// When full, the oldest entries are discarded, so memory stays constant
/// over arbitrarily long simulations. Recording can be disabled entirely
/// (the default for benchmark runs) at which point [`Trace::record`] is
/// effectively free.
///
/// # Example
///
/// ```
/// use neon_sim::{SimTime, Trace};
///
/// let mut trace = Trace::with_capacity(8);
/// trace.set_enabled(true);
/// trace.record(SimTime::from_micros(1), "fault", "task 0 channel 2".to_string());
/// assert_eq!(trace.len(), 1);
/// assert!(trace.iter().any(|e| e.label == "fault"));
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// Default capacity used by [`Trace::new`].
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a disabled trace with the default capacity.
    pub fn new() -> Self {
        Trace::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a disabled trace that keeps at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            entries: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            enabled: false,
            dropped: 0,
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// `true` if recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an entry if recording is enabled.
    ///
    /// The `detail` string is built by the *caller*, so prefer
    /// [`Trace::record_with`] (or the [`crate::trace_event!`] macro) on
    /// hot paths: this form pays the formatting allocation even when
    /// recording is disabled.
    pub fn record(&mut self, at: SimTime, label: &'static str, detail: String) {
        if !self.enabled {
            return;
        }
        self.push(at, label, detail);
    }

    /// Appends an entry if recording is enabled, building the detail
    /// string only in that case. This is the zero-cost form for hot
    /// paths: when recording is disabled (the default for benchmark and
    /// sweep runs) the closure is never invoked, so no formatting and
    /// no allocation happen.
    ///
    /// ```
    /// use neon_sim::{SimTime, Trace};
    ///
    /// let mut trace = Trace::new(); // disabled by default
    /// trace.record_with(SimTime::ZERO, "fault", || unreachable!("not built"));
    /// ```
    pub fn record_with(
        &mut self,
        at: SimTime,
        label: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        self.push(at, label, detail());
    }

    fn push(&mut self, at: SimTime, label: &'static str, detail: String) {
        if self.entries.len() == self.capacity {
            // Ring behavior: at capacity, pop + push reuses the slot the
            // oldest entry vacated — the deque never grows past the
            // allocation that first reached `capacity` (tested below).
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { at, label, detail });
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries discarded due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Retained entries with a given label, oldest first.
    pub fn with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.label == label)
    }

    /// Drops all retained entries (the drop counter is preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Returns the trace to its freshly-constructed state — no entries,
    /// drop counter zeroed, recording disabled — while keeping the ring
    /// allocation. After `reset`, [`Trace::to_jsonl`] output is
    /// byte-identical to a brand-new trace's, which is what lets a
    /// recycled simulation world pass golden-trace comparisons. Unlike
    /// [`Trace::clear`], which preserves the drop counter for
    /// within-run accounting, `reset` starts a new accounting epoch.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.dropped = 0;
        self.enabled = false;
    }

    /// Renders the retained entries as newline-separated text; used by
    /// the determinism tests to compare runs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// The distinct labels among the retained entries, sorted and
    /// deduplicated — the machine-readable vocabulary of this trace.
    /// Note entries evicted by the capacity bound no longer contribute:
    /// on long runs this reflects the retained window, not the whole
    /// history.
    pub fn labels(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = self.entries.iter().map(|e| e.label).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Renders the trace as JSON Lines: one header record carrying the
    /// buffer accounting (retained/dropped/capacity — consumers must
    /// check `dropped` before treating the stream as complete), then
    /// one `entry` record per retained entry, oldest first.
    ///
    /// ```
    /// use neon_sim::{SimTime, Trace};
    ///
    /// let mut trace = Trace::new();
    /// trace.set_enabled(true);
    /// trace.record(SimTime::from_micros(3), "fault", "t0 on ch2".to_string());
    /// let jsonl = trace.to_jsonl();
    /// let mut lines = jsonl.lines();
    /// assert!(lines.next().unwrap().starts_with("{\"record\":\"header\""));
    /// assert_eq!(
    ///     lines.next().unwrap(),
    ///     "{\"record\":\"entry\",\"t_ns\":3000,\"label\":\"fault\",\"detail\":\"t0 on ch2\"}"
    /// );
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.entries.len() * 64);
        out.push_str(&format!(
            "{{\"record\":\"header\",\"entries\":{},\"dropped\":{},\"capacity\":{}}}\n",
            self.entries.len(),
            self.dropped,
            self.capacity
        ));
        for e in &self.entries {
            out.push_str(&format!(
                "{{\"record\":\"entry\",\"t_ns\":{},\"label\":{},\"detail\":{}}}\n",
                e.at.as_nanos(),
                json_string(e.label),
                json_string(&e.detail)
            ));
        }
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// trace labels and details are plain ASCII in practice, but arbitrary
/// workload names must not be able to corrupt the stream.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

/// Records a trace entry with `format!`-style arguments, skipping the
/// formatting (and its allocation) entirely when the trace is disabled
/// — the hot-path companion of [`Trace::record`].
///
/// ```
/// use neon_sim::{trace_event, SimTime, Trace};
///
/// let mut trace = Trace::new();
/// trace.set_enabled(true);
/// let task = 7;
/// trace_event!(trace, SimTime::ZERO, "fault", "task {task} faulted");
/// assert_eq!(trace.iter().next().unwrap().detail, "task 7 faulted");
/// ```
#[macro_export]
macro_rules! trace_event {
    ($trace:expr, $at:expr, $label:expr, $($fmt:tt)+) => {
        if $trace.is_enabled() {
            // lint: allow(eager-trace) — this line is trace_event!'s own
            // expansion; the is_enabled() gate above makes the format! lazy
            $trace.record($at, $label, format!($($fmt)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut trace = Trace::new();
        trace.record(t(1), "x", "y".into());
        assert!(trace.is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut trace = Trace::new();
        trace.set_enabled(true);
        trace.record(t(1), "a", "1".into());
        trace.record(t(2), "b", "2".into());
        let labels: Vec<_> = trace.iter().map(|e| e.label).collect();
        assert_eq!(labels, vec!["a", "b"]);
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let mut trace = Trace::with_capacity(3);
        trace.set_enabled(true);
        for i in 0..5 {
            trace.record(t(i), "e", i.to_string());
        }
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.dropped(), 2);
        let first = trace.iter().next().unwrap();
        assert_eq!(first.detail, "2");
    }

    #[test]
    fn with_label_filters() {
        let mut trace = Trace::new();
        trace.set_enabled(true);
        trace.record(t(1), "fault", "f1".into());
        trace.record(t(2), "poll", "p1".into());
        trace.record(t(3), "fault", "f2".into());
        assert_eq!(trace.with_label("fault").count(), 2);
        assert_eq!(trace.with_label("poll").count(), 1);
        assert_eq!(trace.with_label("nope").count(), 0);
    }

    #[test]
    fn render_is_line_per_entry() {
        let mut trace = Trace::new();
        trace.set_enabled(true);
        trace.record(t(1), "a", "x".into());
        trace.record(t(2), "b", "y".into());
        let text = trace.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("a: x"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Trace::with_capacity(0);
    }

    #[test]
    fn record_with_skips_closure_when_disabled() {
        let mut trace = Trace::new();
        trace.record_with(t(1), "x", || panic!("closure must not run while disabled"));
        assert!(trace.is_empty());
        trace.set_enabled(true);
        trace.record_with(t(2), "y", || "built".to_string());
        assert_eq!(trace.iter().next().unwrap().detail, "built");
    }

    #[test]
    fn trace_event_macro_formats_lazily() {
        let mut trace = Trace::new();
        let mut built = 0u32;
        let build = |v: &mut u32| {
            *v += 1;
            "detail"
        };
        crate::trace_event!(trace, t(1), "a", "{}", build(&mut built));
        assert_eq!(built, 0, "disabled trace must not format");
        trace.set_enabled(true);
        crate::trace_event!(trace, t(2), "a", "{}", build(&mut built));
        assert_eq!(built, 1);
        assert_eq!(trace.iter().next().unwrap().detail, "detail");
    }

    #[test]
    fn ring_never_reallocates_past_the_cap() {
        let capacity = 64;
        let mut trace = Trace::with_capacity(capacity);
        trace.set_enabled(true);
        // Fill to the cap, note the backing allocation...
        for i in 0..capacity as u64 {
            trace.record(t(i), "e", i.to_string());
        }
        let full_alloc = trace.entries.capacity();
        // ...then wrap around the ring many times over.
        let wraps = 10 * capacity as u64;
        for i in 0..wraps {
            trace.record(t(capacity as u64 + i), "e", i.to_string());
        }
        assert_eq!(
            trace.entries.capacity(),
            full_alloc,
            "capacity-full eviction must reuse slots, not reallocate"
        );
        assert_eq!(trace.len(), capacity);
        assert_eq!(trace.dropped(), wraps, "every wrap drops exactly one");
        // Oldest retained entry is the expected one after wraparound.
        let first = trace.iter().next().unwrap();
        assert_eq!(first.detail, (wraps - capacity as u64).to_string());
    }

    #[test]
    fn labels_are_sorted_and_distinct() {
        let mut trace = Trace::new();
        trace.set_enabled(true);
        trace.record(t(1), "poll", String::new());
        trace.record(t(2), "fault", String::new());
        trace.record(t(3), "poll", String::new());
        assert_eq!(trace.labels(), vec!["fault", "poll"]);
    }

    #[test]
    fn jsonl_header_counts_retained_and_dropped() {
        let mut trace = Trace::with_capacity(2);
        trace.set_enabled(true);
        for i in 0..5 {
            trace.record(t(i), "e", i.to_string());
        }
        let jsonl = trace.to_jsonl();
        let header = jsonl.lines().next().unwrap();
        assert_eq!(
            header,
            "{\"record\":\"header\",\"entries\":2,\"dropped\":3,\"capacity\":2}"
        );
        assert_eq!(jsonl.lines().count(), 3, "header + one line per entry");
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn jsonl_escapes_hostile_details() {
        let mut trace = Trace::new();
        trace.set_enabled(true);
        trace.record(t(1), "kill", "name \"quoted\"\\\n\u{1}".to_string());
        let jsonl = trace.to_jsonl();
        let entry = jsonl.lines().nth(1).unwrap();
        assert!(entry.contains("\\u0001"), "got {entry}");
        assert!(
            entry.contains(r#""detail":"name \"quoted\"\\\n\u0001""#),
            "got {entry}"
        );
    }

    #[test]
    fn reset_matches_a_fresh_trace_byte_for_byte() {
        let mut used = Trace::with_capacity(2);
        used.set_enabled(true);
        for i in 0..5 {
            used.record(t(i), "e", i.to_string());
        }
        assert!(used.dropped() > 0);
        used.reset();
        let fresh = Trace::with_capacity(2);
        assert!(!used.is_enabled(), "reset disables recording");
        assert_eq!(used.to_jsonl(), fresh.to_jsonl());
        // Re-armed, it records exactly like a fresh trace.
        used.set_enabled(true);
        used.record(t(9), "e", "x".into());
        let mut fresh2 = Trace::with_capacity(2);
        fresh2.set_enabled(true);
        fresh2.record(t(9), "e", "x".into());
        assert_eq!(used.to_jsonl(), fresh2.to_jsonl());
    }

    #[test]
    fn clear_preserves_drop_counter() {
        let mut trace = Trace::with_capacity(1);
        trace.set_enabled(true);
        trace.record(t(1), "a", String::new());
        trace.record(t(2), "a", String::new());
        assert_eq!(trace.dropped(), 1);
        trace.clear();
        assert!(trace.is_empty());
        assert_eq!(trace.dropped(), 1);
    }
}
