//! # neon-sim
//!
//! Deterministic discrete-event simulation engine used by the
//! disengaged-scheduling reproduction.
//!
//! The engine is deliberately minimal: a nanosecond-resolution simulated
//! clock ([`SimTime`] / [`SimDuration`]), a total-ordered event queue
//! ([`EventQueue`]) with stable FIFO tie-breaking, a seeded random-number
//! wrapper ([`DetRng`]) so that every experiment is exactly reproducible,
//! and a lightweight trace recorder ([`Trace`]).
//!
//! The modeled system (GPU, kernel interposition, schedulers, workloads)
//! lives in the `neon-gpu`, `neon-core` and `neon-workloads` crates; this
//! crate knows nothing about them.
//!
//! # Example
//!
//! ```
//! use neon_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_micros(5), "second");
//! queue.schedule(SimTime::ZERO + SimDuration::from_micros(1), "first");
//!
//! let (t, event) = queue.pop().unwrap();
//! assert_eq!(event, "first");
//! assert_eq!(t.as_micros(), 1);
//! ```

pub mod event;
pub mod rng;
pub mod time;
pub mod trace;

pub use event::{EventQueue, ScheduledEvent};
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEntry};
