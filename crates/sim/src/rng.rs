//! Deterministic random numbers for workload variation.
//!
//! Every run of every experiment is seeded, so results are exactly
//! reproducible. [`DetRng`] wraps `rand`'s `SmallRng` and adds the small
//! set of helpers the workload models need (jitter around a mean,
//! uniform spans, Bernoulli draws).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// A seeded random-number generator with duration-oriented helpers.
///
/// # Example
///
/// ```
/// use neon_sim::{DetRng, SimDuration};
///
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// let mean = SimDuration::from_micros(100);
/// assert_eq!(a.jittered(mean, 0.2), b.jittered(mean, 0.2));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each task its
    /// own stream so that adding a task never perturbs another's draws.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        let seed = self.inner.random::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::seed_from(seed)
    }

    /// A duration jittered uniformly in `[mean*(1-spread), mean*(1+spread)]`.
    ///
    /// `spread` is clamped to `[0, 1]`. With `spread == 0` the mean is
    /// returned unchanged (and the generator state is *not* advanced, so
    /// zero-jitter workloads are insensitive to draw order).
    pub fn jittered(&mut self, mean: SimDuration, spread: f64) -> SimDuration {
        let spread = spread.clamp(0.0, 1.0);
        if spread == 0.0 || mean.is_zero() {
            return mean;
        }
        let factor = 1.0 + self.inner.random_range(-spread..=spread);
        mean.mul_f64(factor)
    }

    /// A duration uniform in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        assert!(lo <= hi, "uniform: lo > hi");
        if lo == hi {
            return lo;
        }
        SimDuration::from_nanos(self.inner.random_range(lo.as_nanos()..=hi.as_nanos()))
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return false;
        }
        if p == 1.0 {
            return true;
        }
        self.inner.random_range(0.0..1.0) < p
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.inner.random_range(0..n)
    }

    /// A raw 64-bit draw (for seeding subordinate structures).
    pub fn raw(&mut self) -> u64 {
        self.inner.random()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.raw(), b.raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..32).filter(|_| a.raw() == b.raw()).count();
        assert!(same < 4, "streams should be essentially independent");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut root1 = DetRng::seed_from(9);
        let mut root2 = DetRng::seed_from(9);
        let mut c1 = root1.fork(1);
        let mut c2 = root2.fork(1);
        assert_eq!(c1.raw(), c2.raw());
        let mut d1 = root1.fork(2);
        assert_ne!(c1.raw(), d1.raw());
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = DetRng::seed_from(3);
        let mean = SimDuration::from_micros(100);
        for _ in 0..1000 {
            let d = rng.jittered(mean, 0.25);
            assert!(d >= SimDuration::from_micros(75), "{d} below band");
            assert!(d <= SimDuration::from_micros(125), "{d} above band");
        }
    }

    #[test]
    fn zero_jitter_returns_mean_exactly() {
        let mut rng = DetRng::seed_from(3);
        let mean = SimDuration::from_micros(42);
        assert_eq!(rng.jittered(mean, 0.0), mean);
    }

    #[test]
    fn uniform_bounds_inclusive() {
        let mut rng = DetRng::seed_from(5);
        let lo = SimDuration::from_nanos(10);
        let hi = SimDuration::from_nanos(12);
        for _ in 0..200 {
            let d = rng.uniform(lo, hi);
            assert!(d >= lo && d <= hi);
        }
        assert_eq!(rng.uniform(lo, lo), lo);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seed_from(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = DetRng::seed_from(13);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn index_in_range() {
        let mut rng = DetRng::seed_from(17);
        for _ in 0..100 {
            assert!(rng.index(5) < 5);
        }
    }
}
