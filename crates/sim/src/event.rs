//! The discrete-event queue.
//!
//! [`EventQueue`] is a priority queue over (time, sequence) pairs: events
//! fire in nondecreasing time order, and events scheduled for the same
//! instant fire in the order they were scheduled (stable FIFO
//! tie-breaking). Stability is what makes whole-simulation determinism
//! possible, so it is load-bearing, tested, and guaranteed.
//!
//! # Design: inline-payload slab
//!
//! Payloads live in a `Vec` slab with a free list; heap keys carry the
//! payload's slot index and a per-slot generation counter, so every
//! operation on the hot path is allocation- and hash-free:
//!
//! - **schedule** pushes a 32-byte key and writes one slab slot —
//!   amortized O(log n), no hashing (the previous design paid a SipHash
//!   `HashMap` insert per event).
//! - **cancel** is O(1): bump the slot's generation and reclaim it. The
//!   stale heap key is tombstoned implicitly — its generation no longer
//!   matches — and is discarded when it surfaces.
//! - **pop** drains stale tombstone keys lazily as they reach the top.
//! - **peek_time** drains stale tops the same way, making it O(1) when
//!   the top is live and amortized O(log n) overall (the previous
//!   design scanned the *entire* heap on every peek).
//!
//! Cancellation tokens encode `(generation << 32) | slot`; a token
//! becomes stale the moment its event fires or is cancelled, and a
//! stale token can only be confused with a live one after a single slot
//! is reused 2^32 times — unreachable in practice.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event together with its scheduled firing time and a cancellation
/// handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic sequence number; total order tie-breaker and
    /// cancellation token.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

/// Heap key: ordered by `(at, seq)` — `seq` is unique, so the slot and
/// generation fields never influence the order; they exist to find and
/// validate the payload without a lookup table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

/// One slab slot. A slot is *live* while a heap key carrying its
/// current generation exists; vacating the slot (pop or cancel) bumps
/// the generation, which simultaneously invalidates the old heap key
/// and any outstanding cancellation token.
#[derive(Debug)]
struct Slot<E> {
    gen: u32,
    payload: Option<(SimTime, E)>,
}

/// A deterministic discrete-event queue.
///
/// # Example
///
/// ```
/// use neon_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_micros(10);
/// q.schedule(t, 'a');
/// q.schedule(t, 'b'); // same instant: FIFO order preserved
/// assert_eq!(q.pop().map(|(_, e)| e), Some('a'));
/// assert_eq!(q.pop().map(|(_, e)| e), Some('b'));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Key>>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at instant `at`, returning a token that
    /// can be passed to [`EventQueue::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the most recently popped event's
    /// time: the simulator may not schedule into its own past.
    pub fn schedule(&mut self, at: SimTime, event: E) -> u64 {
        assert!(
            at >= self.last_popped,
            "cannot schedule into the past: {} < {}",
            at,
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].payload = Some((at, event));
                slot
            }
            None => {
                // lint: allow(unchecked-unwrap) — 2^32 concurrently-live
                // events cannot fit in memory; truncating the slot id would
                // corrupt cancellation tokens
                let slot = u32::try_from(self.slots.len()).expect("more than 2^32 live events");
                self.slots.push(Slot {
                    gen: 0,
                    payload: Some((at, event)),
                });
                slot
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.heap.push(Reverse(Key { at, seq, slot, gen }));
        self.live += 1;
        ((gen as u64) << 32) | slot as u64
    }

    /// Cancels a previously scheduled event. Returns the payload if the
    /// event had not yet fired or been cancelled. O(1): the heap is not
    /// touched; the stale key is discarded lazily when it surfaces.
    pub fn cancel(&mut self, token: u64) -> Option<E> {
        let slot = (token & u32::MAX as u64) as usize;
        // lint: allow(narrowing-cast) — deliberate upper-half bit extraction
        // from the packed (gen, slot) token
        let gen = (token >> 32) as u32;
        match self.slots.get_mut(slot) {
            Some(s) if s.gen == gen => {
                // lint: allow(unchecked-unwrap) — the generation match above
                // proves the slot is live
                let (_, event) = s.payload.take().expect("live slot must hold a payload");
                s.gen = s.gen.wrapping_add(1);
                // lint: allow(narrowing-cast) — slot was masked to the low 32
                // bits of the token above
                self.free.push(slot as u32);
                self.live -= 1;
                Some(event)
            }
            _ => None,
        }
    }

    /// Removes and returns the next event in (time, schedule-order).
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(key)) = self.heap.pop() {
            let slot = &mut self.slots[key.slot as usize];
            if slot.gen != key.gen {
                continue; // cancelled: discard the stale key
            }
            // lint: allow(unchecked-unwrap) — the generation match above
            // proves the slot is live
            let (at, event) = slot.payload.take().expect("live slot must hold a payload");
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(key.slot);
            self.live -= 1;
            debug_assert_eq!(at, key.at);
            self.last_popped = at;
            return Some((at, event));
        }
        None
    }

    /// The firing time of the next live event, if any. Stale
    /// (cancelled) keys sitting atop the heap are drained as a side
    /// effect, so repeated peeks stay cheap even after mass
    /// cancellation — each stale key is paid for exactly once, here or
    /// in [`EventQueue::pop`].
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(key)) = self.heap.peek() {
            if self.slots[key.slot as usize].gen == key.gen {
                return Some(key.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (not cancelled, not yet fired) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Empties the queue while keeping the slab, free list, and heap
    /// allocations, so a long-lived queue can be recycled across
    /// simulation runs without touching the allocator.
    ///
    /// A cleared queue is observationally identical to a fresh one:
    /// sequence numbers restart at zero, "now" rewinds to
    /// [`SimTime::ZERO`], and the free list is rebuilt so slots are
    /// handed out in the same `0, 1, 2, …` order a new queue would use.
    /// (Slot generations keep advancing, but generations never
    /// influence event order — only `(at, seq)` does — so reuse cannot
    /// perturb determinism.) All outstanding cancellation tokens die.
    pub fn clear(&mut self) {
        self.heap.clear();
        for slot in &mut self.slots {
            if slot.payload.take().is_some() {
                slot.gen = slot.gen.wrapping_add(1);
            }
        }
        self.free.clear();
        // lint: allow(narrowing-cast) — slots.len() stayed below 2^32,
        // enforced at allocation in schedule()
        self.free.extend((0..self.slots.len() as u32).rev());
        self.live = 0;
        self.next_seq = 0;
        self.last_popped = SimTime::ZERO;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let keep = q.schedule(t(1), "keep");
        let drop = q.schedule(t(2), "drop");
        assert_eq!(q.cancel(drop), Some("drop"));
        assert_eq!(q.cancel(drop), None, "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(1), "keep")));
        assert!(q.pop().is_none());
        let _ = keep;
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let tok = q.schedule(t(1), 7);
        assert!(q.pop().is_some());
        assert_eq!(q.cancel(tok), None);
    }

    #[test]
    fn stale_token_cannot_cancel_a_slot_reuse() {
        let mut q = EventQueue::new();
        let tok = q.schedule(t(1), 'a');
        assert_eq!(q.pop(), Some((t(1), 'a')));
        // 'b' reuses the slot that 'a' vacated, under a new generation.
        let _tok_b = q.schedule(t(2), 'b');
        assert_eq!(q.cancel(tok), None, "a fired token must stay dead");
        assert_eq!(q.pop(), Some((t(2), 'b')));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let first = q.schedule(t(1), 'x');
        q.schedule(t(5), 'y');
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(t(5)));
    }

    #[test]
    fn peek_time_stays_cheap_under_mass_cancellation() {
        // Regression for the O(n) full-heap scan: cancel a large prefix
        // of earliest-firing events, then peek. The first peek drains
        // the stale tops; subsequent peeks find a live top immediately.
        let mut q = EventQueue::new();
        let tokens: Vec<u64> = (0..10_000).map(|i| q.schedule(t(i), i)).collect();
        q.schedule(t(1_000_000), 42);
        for tok in tokens {
            assert!(q.cancel(tok).is_some());
        }
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(1_000_000)));
        // The stale keys were drained by the peek, not merely skipped:
        // the heap now holds exactly the one live entry, so further
        // peeks and the final pop are O(1).
        assert_eq!(q.heap.len(), 1);
        assert_eq!(q.peek_time(), Some(t(1_000_000)));
        assert_eq!(q.pop(), Some((t(1_000_000), 42)));
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn slots_are_reused_not_leaked() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..10 {
                q.schedule(t(round * 10 + i), i);
            }
            while q.pop().is_some() {}
        }
        assert!(
            q.slots.len() <= 10,
            "slab grew to {} slots for 10 concurrent events",
            q.slots.len()
        );
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(4), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(4));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(9), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.pop();
        q.schedule(t(10), 2);
        assert_eq!(q.pop(), Some((t(10), 2)));
    }

    #[test]
    fn cleared_queue_behaves_like_a_fresh_one() {
        let mut fresh = EventQueue::new();
        let mut reused = EventQueue::new();
        // Dirty the reused queue: live events, cancellations, pops.
        let tok = reused.schedule(t(5), 100);
        reused.schedule(t(7), 101);
        reused.cancel(tok);
        reused.schedule(t(50), 102);
        reused.pop();
        reused.clear();
        assert!(reused.is_empty());
        assert_eq!(reused.now(), SimTime::ZERO);
        // Same schedule program on both: identical pops and tokens
        // modulo generation bits (which never affect order).
        let mut toks = Vec::new();
        for q in [&mut fresh, &mut reused] {
            toks.push(vec![
                q.schedule(t(10), 1),
                q.schedule(t(10), 2),
                q.schedule(t(3), 3),
            ]);
        }
        for (a, b) in toks[0].iter().zip(&toks[1]) {
            assert_eq!(
                a & u32::MAX as u64,
                b & u32::MAX as u64,
                "slot order differs"
            );
        }
        loop {
            let (a, b) = (fresh.pop(), reused.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn clear_kills_outstanding_tokens_and_keeps_capacity() {
        let mut q = EventQueue::new();
        let toks: Vec<u64> = (0..32).map(|i| q.schedule(t(i), i)).collect();
        let slots_before = q.slots.len();
        q.clear();
        for tok in toks {
            assert_eq!(q.cancel(tok), None, "pre-clear token must be dead");
        }
        assert_eq!(q.slots.len(), slots_before, "slab capacity retained");
        // And scheduling at ZERO works again (now rewound).
        q.schedule(SimTime::ZERO, 0);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 0)));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        // Schedule something between now and the pending event.
        q.schedule(t(15), 3);
        assert_eq!(q.pop(), Some((t(15), 3)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        let _ = SimDuration::ZERO; // silence unused import in some cfgs
    }
}
