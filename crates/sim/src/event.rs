//! The discrete-event queue.
//!
//! [`EventQueue`] is a priority queue over (time, sequence) pairs: events
//! fire in nondecreasing time order, and events scheduled for the same
//! instant fire in the order they were scheduled (stable FIFO
//! tie-breaking). Stability is what makes whole-simulation determinism
//! possible, so it is load-bearing, tested, and guaranteed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event together with its scheduled firing time and a cancellation
/// handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic sequence number; total order tie-breaker and
    /// cancellation token.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    seq: u64,
}

/// A deterministic discrete-event queue.
///
/// # Example
///
/// ```
/// use neon_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_micros(10);
/// q.schedule(t, 'a');
/// q.schedule(t, 'b'); // same instant: FIFO order preserved
/// assert_eq!(q.pop().map(|(_, e)| e), Some('a'));
/// assert_eq!(q.pop().map(|(_, e)| e), Some('b'));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Key>>,
    // Payloads are stored out-of-line, keyed by seq, so that cancellation
    // is O(1) without heap surgery.
    payloads: std::collections::HashMap<u64, (SimTime, E)>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at instant `at`, returning a token that
    /// can be passed to [`EventQueue::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the most recently popped event's
    /// time: the simulator may not schedule into its own past.
    pub fn schedule(&mut self, at: SimTime, event: E) -> u64 {
        assert!(
            at >= self.last_popped,
            "cannot schedule into the past: {} < {}",
            at,
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Key { at, seq }));
        self.payloads.insert(seq, (at, event));
        seq
    }

    /// Cancels a previously scheduled event. Returns the payload if the
    /// event had not yet fired or been cancelled.
    pub fn cancel(&mut self, token: u64) -> Option<E> {
        self.payloads.remove(&token).map(|(_, e)| e)
    }

    /// Removes and returns the next event in (time, schedule-order).
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(key)) = self.heap.pop() {
            if let Some((at, event)) = self.payloads.remove(&key.seq) {
                debug_assert_eq!(at, key.at);
                self.last_popped = at;
                return Some((at, event));
            }
            // Cancelled entry: skip the stale heap key.
        }
        None
    }

    /// The firing time of the next live event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Stale (cancelled) keys may sit atop the heap; scan past them
        // without mutating. BinaryHeap has no retain-peek, so we look at
        // the smallest live payload instead when the top is stale.
        let mut best: Option<SimTime> = None;
        for Reverse(key) in self.heap.iter() {
            if self.payloads.contains_key(&key.seq) {
                best = Some(match best {
                    Some(b) => b.min(key.at),
                    None => key.at,
                });
            }
        }
        best
    }

    /// Number of live (not cancelled, not yet fired) events.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let keep = q.schedule(t(1), "keep");
        let drop = q.schedule(t(2), "drop");
        assert_eq!(q.cancel(drop), Some("drop"));
        assert_eq!(q.cancel(drop), None, "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(1), "keep")));
        assert!(q.pop().is_none());
        let _ = keep;
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let tok = q.schedule(t(1), 7);
        assert!(q.pop().is_some());
        assert_eq!(q.cancel(tok), None);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let first = q.schedule(t(1), 'x');
        q.schedule(t(5), 'y');
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(t(5)));
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(4), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(4));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(9), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.pop();
        q.schedule(t(10), 2);
        assert_eq!(q.pop(), Some((t(10), 2)));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        // Schedule something between now and the pending event.
        q.schedule(t(15), 3);
        assert_eq!(q.pop(), Some((t(15), 3)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        let _ = SimDuration::ZERO; // silence unused import in some cfgs
    }
}
