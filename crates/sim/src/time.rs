//! Simulated time: instants and durations with nanosecond resolution.
//!
//! Newtypes keep instants ([`SimTime`]) and spans ([`SimDuration`])
//! statically distinct, mirroring `std::time::{Instant, Duration}`.
//! All arithmetic is saturating-free and panics on overflow in debug
//! builds, which is what we want in a simulator: overflow is a bug,
//! not a value.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated timeline, in nanoseconds since simulation
/// start.
///
/// # Example
///
/// ```
/// use neon_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(30);
/// assert_eq!(t.as_nanos(), 30_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use neon_sim::SimDuration;
///
/// let slice = SimDuration::from_millis(30);
/// assert_eq!(slice.as_micros(), 30_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinitely far
    /// in the future" sentinel (e.g. for requests that never complete).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable span; used to model unbounded (e.g.
    /// infinite-loop) GPU requests.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from a float number of microseconds (rounding to
    /// the nearest nanosecond). Negative inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        if us <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration((us * 1_000.0).round() as u64)
        }
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in microseconds as a float (for reporting and ratios).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length in seconds as a float (for reporting and ratios).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - other`, or zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition, pinned at [`SimDuration::MAX`].
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiplies the span by a float factor (for jitter and scaling).
    /// Negative factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if factor <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration((self.0 as f64 * factor).round() as u64)
        }
    }

    /// The ratio `self / other` as a float.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        assert!(!other.is_zero(), "ratio: division by zero duration");
        self.0 as f64 / other.0 as f64
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                // lint: allow(unchecked-unwrap) — sim-time underflow is a
                // causality bug, not recoverable input
                .expect("SimTime subtraction went before simulation start"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                // lint: allow(unchecked-unwrap) — duration underflow is an
                // accounting bug, not recoverable input
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "inf")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
    }

    #[test]
    fn time_duration_arithmetic() {
        let t = SimTime::from_nanos(1_000);
        let t2 = t + SimDuration::from_nanos(500);
        assert_eq!(t2.as_nanos(), 1_500);
        assert_eq!(t2 - t, SimDuration::from_nanos(500));
        assert_eq!(t2.duration_since(t).as_nanos(), 500);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_nanos(20)
        );
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_negative_span() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        let _ = early.duration_since(late);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_micros(25));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn ratio_behaves() {
        let a = SimDuration::from_micros(30);
        let b = SimDuration::from_micros(10);
        assert!((a.ratio(b) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn ratio_panics_on_zero() {
        let _ = SimDuration::from_micros(1).ratio(SimDuration::ZERO);
    }

    #[test]
    fn from_micros_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimDuration::from_micros_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(0.0001).as_nanos(), 0);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_nanos(3).saturating_sub(SimDuration::from_nanos(5)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
    }

    #[test]
    fn min_max_helpers() {
        let a = SimDuration::from_micros(1);
        let b = SimDuration::from_micros(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimTime::from_micros(1);
        let tb = SimTime::from_micros(2);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }

    #[test]
    fn display_formats_scale() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::MAX), "inf");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}
