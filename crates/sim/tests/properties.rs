//! Property tests for the simulation engine's ordering guarantees.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use neon_sim::{DetRng, EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

/// Reference implementation of the queue's documented semantics — the
/// pre-slab design, kept verbatim as an executable specification: a
/// `(time, seq)` binary heap with out-of-line payloads, stable FIFO
/// tie-breaking at equal times, O(1) cancel by payload removal. The
/// production [`EventQueue`] must agree with this model on every
/// schedule/cancel/pop interleaving.
struct ModelQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    payloads: HashMap<u64, (SimTime, E)>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> ModelQueue<E> {
    fn new() -> Self {
        ModelQueue {
            heap: BinaryHeap::new(),
            payloads: HashMap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    fn schedule(&mut self, at: SimTime, event: E) -> u64 {
        assert!(at >= self.last_popped);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.payloads.insert(seq, (at, event));
        seq
    }

    fn cancel(&mut self, token: u64) -> Option<E> {
        self.payloads.remove(&token).map(|(_, e)| e)
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if let Some((_, event)) = self.payloads.remove(&seq) {
                self.last_popped = at;
                return Some((at, event));
            }
        }
        None
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap
            .iter()
            .filter(|Reverse((_, seq))| self.payloads.contains_key(seq))
            .map(|Reverse((at, _))| *at)
            .min()
    }

    fn now(&self) -> SimTime {
        self.last_popped
    }
}

fn fnv1a(hash: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// A fixed schedule/cancel/pop/peek interleaving whose pop order is
/// hashed and pinned. The constant was captured on the pre-rewrite
/// commit (the `BinaryHeap` + `HashMap` queue), so any rewrite of the
/// queue internals must reproduce the original semantics bit for bit.
#[test]
fn golden_interleaving_pop_order_hash() {
    let mut state = 0x5EED_1234_ABCD_0001u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut tokens: Vec<u64> = Vec::new();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for step in 0..20_000u64 {
        match next() % 8 {
            0..=3 => {
                let at = q.now() + SimDuration::from_nanos(next() % 997);
                tokens.push(q.schedule(at, step));
            }
            4 => {
                // Cancel a remembered token, possibly one that already
                // fired (a no-op): the *position* in the remembered
                // list is deterministic even though token values are
                // representation-dependent.
                if !tokens.is_empty() {
                    let i = next() as usize % tokens.len();
                    let tok = tokens.swap_remove(i);
                    fnv1a(&mut hash, q.cancel(tok).is_some() as u64);
                }
            }
            5 => {
                if let Some(at) = q.peek_time() {
                    fnv1a(&mut hash, at.as_nanos());
                } else {
                    fnv1a(&mut hash, u64::MAX);
                }
            }
            _ => {
                if let Some((at, v)) = q.pop() {
                    fnv1a(&mut hash, at.as_nanos());
                    fnv1a(&mut hash, v);
                }
            }
        }
    }
    while let Some((at, v)) = q.pop() {
        fnv1a(&mut hash, at.as_nanos());
        fnv1a(&mut hash, v);
    }
    assert_eq!(
        hash, 0xFF0D_444D_1D58_D9D6,
        "pop order drifted from the pre-rewrite golden capture (got {hash:#018x})"
    );
}

proptest! {
    /// Events pop in nondecreasing time order regardless of insertion
    /// order, with FIFO stability at equal times.
    #[test]
    fn total_order_with_fifo_ties(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), (t, i));
        }
        let mut popped = Vec::new();
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at.as_nanos(), t);
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancellation removes exactly the cancelled events.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let tokens: Vec<u64> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut cancelled = 0;
        for (tok, &c) in tokens.iter().zip(&cancel_mask) {
            if c && q.cancel(*tok).is_some() {
                cancelled += 1;
            }
        }
        let mut survivors = 0;
        while q.pop().is_some() {
            survivors += 1;
        }
        prop_assert_eq!(survivors + cancelled, times.len());
    }

    /// Duration arithmetic respects the triangle-ish identities used
    /// throughout the schedulers.
    #[test]
    fn duration_identities(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db).saturating_sub(db), da);
        prop_assert_eq!(da.max(db).min(da), da.min(db).max(da.min(db)).max(da).min(da));
        let t = SimTime::ZERO + da;
        prop_assert_eq!(t.saturating_duration_since(SimTime::ZERO), da);
    }

    /// The production queue agrees with the reference model (the
    /// pre-rewrite heap + out-of-line-payload design) on every random
    /// schedule/cancel/pop/peek interleaving: identical pop order,
    /// identical peek times, identical cancel outcomes. This is the
    /// determinism contract the slab rewrite must preserve.
    #[test]
    fn slab_queue_matches_reference_model(
        ops in proptest::collection::vec((0u8..8, 0u64..1_000, 0u64..10_000), 1..400),
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model: ModelQueue<u64> = ModelQueue::new();
        let mut q_tokens = Vec::new();
        let mut m_tokens = Vec::new();
        for (step, &(op, offset, pick)) in ops.iter().enumerate() {
            match op {
                0..=3 => {
                    let at = q.now() + SimDuration::from_nanos(offset);
                    q_tokens.push(q.schedule(at, step as u64));
                    m_tokens.push(model.schedule(at, step as u64));
                }
                4 => {
                    if !q_tokens.is_empty() {
                        let i = pick as usize % q_tokens.len();
                        let a = q.cancel(q_tokens.swap_remove(i));
                        let b = model.cancel(m_tokens.swap_remove(i));
                        prop_assert_eq!(a, b, "cancel outcomes diverged");
                    }
                }
                5 => {
                    prop_assert_eq!(q.peek_time(), model.peek_time(), "peek diverged");
                }
                _ => {
                    prop_assert_eq!(q.pop(), model.pop(), "pop diverged");
                    prop_assert_eq!(q.now(), model.now());
                }
            }
            prop_assert_eq!(q.len(), model.payloads.len());
            prop_assert_eq!(q.is_empty(), model.payloads.is_empty());
        }
        // Drain: the tails must agree event for event.
        loop {
            let (a, b) = (q.pop(), model.pop());
            prop_assert_eq!(&a, &b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    /// Seeded RNG streams are reproducible and stay in band.
    #[test]
    fn rng_reproducible(seed in any::<u64>()) {
        let mut a = DetRng::seed_from(seed);
        let mut b = DetRng::seed_from(seed);
        for _ in 0..16 {
            let mean = SimDuration::from_micros(100);
            let (x, y) = (a.jittered(mean, 0.3), b.jittered(mean, 0.3));
            prop_assert_eq!(x, y);
            prop_assert!(x >= SimDuration::from_micros(70));
            prop_assert!(x <= SimDuration::from_micros(130));
        }
    }
}
