//! Property tests for the simulation engine's ordering guarantees.

use neon_sim::{DetRng, EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events pop in nondecreasing time order regardless of insertion
    /// order, with FIFO stability at equal times.
    #[test]
    fn total_order_with_fifo_ties(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), (t, i));
        }
        let mut popped = Vec::new();
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at.as_nanos(), t);
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancellation removes exactly the cancelled events.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let tokens: Vec<u64> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut cancelled = 0;
        for (tok, &c) in tokens.iter().zip(&cancel_mask) {
            if c && q.cancel(*tok).is_some() {
                cancelled += 1;
            }
        }
        let mut survivors = 0;
        while q.pop().is_some() {
            survivors += 1;
        }
        prop_assert_eq!(survivors + cancelled, times.len());
    }

    /// Duration arithmetic respects the triangle-ish identities used
    /// throughout the schedulers.
    #[test]
    fn duration_identities(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db).saturating_sub(db), da);
        prop_assert_eq!(da.max(db).min(da), da.min(db).max(da.min(db)).max(da).min(da));
        let t = SimTime::ZERO + da;
        prop_assert_eq!(t.saturating_duration_since(SimTime::ZERO), da);
    }

    /// Seeded RNG streams are reproducible and stay in band.
    #[test]
    fn rng_reproducible(seed in any::<u64>()) {
        let mut a = DetRng::seed_from(seed);
        let mut b = DetRng::seed_from(seed);
        for _ in 0..16 {
            let mean = SimDuration::from_micros(100);
            let (x, y) = (a.jittered(mean, 0.3), b.jittered(mean, 0.3));
            prop_assert_eq!(x, y);
            prop_assert!(x >= SimDuration::from_micros(70));
            prop_assert!(x <= SimDuration::from_micros(130));
        }
    }
}
