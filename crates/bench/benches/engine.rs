//! Microbenchmarks of the simulation substrate itself: event queue
//! throughput and full-stack events/second.

use criterion::{criterion_group, criterion_main, Criterion};
use neon_core::cost::SchedParams;
use neon_core::sched::SchedulerKind;
use neon_core::world::{World, WorldConfig};
use neon_sim::{EventQueue, SimDuration, SimTime};
use neon_workloads::Throttle;

fn bench(c: &mut Criterion) {
    c.bench_function("engine/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos(i * 7 % 5_000), i);
            }
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            std::hint::black_box(n)
        })
    });

    c.bench_function("engine/world_100ms_two_tasks_dfq", |b| {
        b.iter(|| {
            let mut world = World::new(
                WorldConfig::default(),
                SchedulerKind::DisengagedFairQueueing.build(SchedParams::default()),
            );
            world
                .add_task(Box::new(Throttle::new(SimDuration::from_micros(25))))
                .unwrap();
            world
                .add_task(Box::new(Throttle::new(SimDuration::from_micros(100))))
                .unwrap();
            std::hint::black_box(world.run(SimDuration::from_millis(100)))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
