//! Regenerates the ablation suite (design-choice sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use neon_experiments::ablation;
use neon_sim::SimDuration;

fn bench(c: &mut Criterion) {
    let rows = ablation::run(&ablation::Config::default());
    println!("\n== Ablations ==\n{}", ablation::render(&rows));

    let quick = ablation::Config {
        horizon: SimDuration::from_millis(200),
        alone_horizon: SimDuration::from_millis(100),
        ..ablation::Config::default()
    };
    c.bench_function("ablation/full_suite_quick", |b| {
        b.iter(|| ablation::run(std::hint::black_box(&quick)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
