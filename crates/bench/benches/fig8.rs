//! Regenerates Figure 8 (four-way fairness and efficiency).

use criterion::{criterion_group, criterion_main, Criterion};
use neon_core::sched::SchedulerKind;
use neon_experiments::fig8;
use neon_sim::SimDuration;

fn bench(c: &mut Criterion) {
    let rows = fig8::run(&fig8::Config::default());
    println!(
        "\n== Figure 8 (four concurrent applications) ==\n{}",
        fig8::render(&rows)
    );

    let quick = fig8::Config {
        horizon: SimDuration::from_millis(300),
        schedulers: vec![SchedulerKind::DisengagedFairQueueing],
        ..fig8::Config::default()
    };
    c.bench_function("fig8/four_way_dfq_300ms", |b| {
        b.iter(|| fig8::run(std::hint::black_box(&quick)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
