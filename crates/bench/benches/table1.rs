//! Regenerates Table 1 (per-app round and request times) and times a
//! representative standalone run.

use criterion::{criterion_group, criterion_main, Criterion};
use neon_experiments::table1;
use neon_sim::SimDuration;

fn bench(c: &mut Criterion) {
    // Regenerate and print the full table once.
    let rows = table1::run(&table1::Config::default());
    println!(
        "\n== Table 1 (paper vs measured) ==\n{}",
        table1::render(&rows)
    );

    let quick = table1::Config {
        horizon: SimDuration::from_millis(60),
        ..table1::Config::default()
    };
    c.bench_function("table1/standalone_sweep_60ms", |b| {
        b.iter(|| table1::run(std::hint::black_box(&quick)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
