//! Regenerates Figure 5 (standalone Throttle slowdown vs request size).

use criterion::{criterion_group, criterion_main, Criterion};
use neon_experiments::fig5;
use neon_sim::SimDuration;

fn bench(c: &mut Criterion) {
    let rows = fig5::run(&fig5::Config::default());
    println!(
        "\n== Figure 5 (Throttle standalone overhead) ==\n{}",
        fig5::render(&rows)
    );

    let quick = fig5::Config {
        horizon: SimDuration::from_millis(100),
        sizes: vec![SimDuration::from_micros(19), SimDuration::from_micros(430)],
        ..fig5::Config::default()
    };
    c.bench_function("fig5/throttle_sweep_100ms", |b| {
        b.iter(|| fig5::run(std::hint::black_box(&quick)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
