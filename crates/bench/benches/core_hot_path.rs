//! Microbenchmarks of the simulation hot path: the slab event queue
//! under a schedule/pop/cancel mix, peek under mass cancellation, and
//! a mid-size churn world with tracing off (the sweep configuration)
//! vs on — the workloads the inline-payload queue, lazy tracing, and
//! allocation-free scheduler context were rewritten for. `neon bench
//! <scenario>` measures the same path end to end and emits
//! `BENCH_core.json` for the perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use neon_core::cost::SchedParams;
use neon_core::sched::SchedulerKind;
use neon_core::workload::FixedLoop;
use neon_core::world::{World, WorldConfig};
use neon_sim::{EventQueue, SimDuration, SimTime};

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

/// A single-device world under DFQ with mid-run arrivals and
/// departures: the reference churn cell in miniature.
fn churn_world(trace: bool) -> World {
    let mut world = World::new(
        WorldConfig::default(),
        SchedulerKind::DisengagedFairQueueing.build(SchedParams::default()),
    );
    world.trace.set_enabled(trace);
    for i in 0..4u64 {
        world
            .add_task(Box::new(FixedLoop::endless(
                format!("resident{i}"),
                us(40 + 30 * i),
                us(5),
            )))
            .unwrap();
    }
    for i in 0..12u64 {
        world.spawn_task_for(
            SimTime::ZERO + SimDuration::from_millis(3 * i + 1),
            Box::new(FixedLoop::endless(format!("visitor{i}"), us(120), us(10))),
            SimDuration::from_millis(8),
        );
    }
    world
}

fn bench(c: &mut Criterion) {
    c.bench_function("core_hot_path/queue_schedule_pop_cancel_64k", |b| {
        b.iter(|| {
            // Deterministic mix: ~60% schedules, ~20% cancels of a
            // remembered token, ~20% pops — the proportions the world
            // loop produces (step/engine tokens are cancelled often).
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut tokens: Vec<u64> = Vec::new();
            let mut state = 0x5EEDu64;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut popped = 0u64;
            for i in 0..65_536u64 {
                match next() % 10 {
                    0..=5 => {
                        let at = q.now() + SimDuration::from_nanos(next() % 1_000);
                        tokens.push(q.schedule(at, i));
                    }
                    6..=7 => {
                        if !tokens.is_empty() {
                            let k = next() as usize % tokens.len();
                            let tok = tokens.swap_remove(k);
                            q.cancel(tok);
                        }
                    }
                    _ => {
                        if q.pop().is_some() {
                            popped += 1;
                        }
                    }
                }
            }
            while q.pop().is_some() {
                popped += 1;
            }
            std::hint::black_box(popped)
        })
    });

    c.bench_function("core_hot_path/peek_under_mass_cancellation", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let tokens: Vec<u64> = (0..8_192u64)
                .map(|i| q.schedule(SimTime::from_nanos(i), i))
                .collect();
            q.schedule(SimTime::from_micros(1_000_000), 0);
            for tok in tokens {
                q.cancel(tok);
            }
            // The first peek drains the stale tops; the rest are O(1).
            let mut acc = 0u64;
            for _ in 0..8_192 {
                acc ^= q.peek_time().map(|t| t.as_nanos()).unwrap_or(0);
            }
            std::hint::black_box(acc)
        })
    });

    c.bench_function("core_hot_path/churn_world_100ms_trace_off", |b| {
        b.iter(|| {
            let mut world = churn_world(false);
            std::hint::black_box(world.run(SimDuration::from_millis(100)))
        })
    });

    c.bench_function("core_hot_path/churn_world_100ms_trace_on", |b| {
        b.iter(|| {
            let mut world = churn_world(true);
            std::hint::black_box(world.run(SimDuration::from_millis(100)))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
