//! Regenerates Figures 6 and 7 (pairwise fairness + efficiency).

use criterion::{criterion_group, criterion_main, Criterion};
use neon_core::sched::SchedulerKind;
use neon_experiments::{fig6, fig7};
use neon_sim::SimDuration;

fn bench(c: &mut Criterion) {
    let rows = fig6::run(&fig6::Config::default());
    println!(
        "\n== Figure 6 (normalized runtimes) ==\n{}",
        fig6::render(&rows)
    );
    let eff = fig7::from_fig6(&rows);
    println!(
        "== Figure 7 (concurrency efficiency) ==\n{}",
        fig7::render(&eff)
    );

    let quick = fig6::Config {
        horizon: SimDuration::from_millis(200),
        throttle_sizes: vec![SimDuration::from_micros(430)],
        schedulers: vec![SchedulerKind::DisengagedFairQueueing],
        apps: vec![fig6::AppFamily::Dct],
        ..fig6::Config::default()
    };
    c.bench_function("fig6/dct_vs_throttle_dfq_200ms", |b| {
        b.iter(|| fig6::run(std::hint::black_box(&quick)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
