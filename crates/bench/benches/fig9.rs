//! Regenerates Figures 9 and 10 (nonsaturating fairness + efficiency).

use criterion::{criterion_group, criterion_main, Criterion};
use neon_core::sched::SchedulerKind;
use neon_experiments::{fig10, fig9};
use neon_sim::SimDuration;

fn bench(c: &mut Criterion) {
    let rows = fig9::run(&fig9::Config::default());
    println!(
        "\n== Figure 9 (nonsaturating fairness) ==\n{}",
        fig9::render(&rows)
    );
    let eff = fig10::from_fig9(&rows);
    println!(
        "== Figure 10 (nonsaturating efficiency) ==\n{}",
        fig10::render(&eff)
    );

    let quick = fig9::Config {
        horizon: SimDuration::from_millis(300),
        off_ratios: vec![0.8],
        schedulers: vec![SchedulerKind::DisengagedFairQueueing],
        ..fig9::Config::default()
    };
    c.bench_function("fig9/nonsaturating_dfq_300ms", |b| {
        b.iter(|| fig9::run(std::hint::black_box(&quick)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
