//! Regenerates the §6.3 channel-DoS experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use neon_experiments::sec63;

fn bench(c: &mut Criterion) {
    let outcomes = sec63::run(&sec63::Config::default());
    println!(
        "\n== Sec 6.3 (channel exhaustion DoS) ==\n{}",
        sec63::render(&outcomes)
    );

    c.bench_function("sec63/dos_attack_and_policy", |b| {
        b.iter(|| sec63::run(std::hint::black_box(&sec63::Config::default())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
