//! Regenerates Figure 4 (standalone slowdown per scheduler).

use criterion::{criterion_group, criterion_main, Criterion};
use neon_core::sched::SchedulerKind;
use neon_experiments::fig4;
use neon_sim::SimDuration;

fn bench(c: &mut Criterion) {
    let rows = fig4::run(&fig4::Config::default());
    println!(
        "\n== Figure 4 (standalone overhead vs direct) ==\n{}",
        fig4::render(&rows)
    );

    let quick = fig4::Config {
        horizon: SimDuration::from_millis(100),
        schedulers: vec![SchedulerKind::DisengagedFairQueueing],
        ..fig4::Config::default()
    };
    c.bench_function("fig4/dfq_standalone_sweep_100ms", |b| {
        b.iter(|| fig4::run(std::hint::black_box(&quick)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
