//! Regenerates Figure 2 (request inter-arrival and service CDFs).

use criterion::{criterion_group, criterion_main, Criterion};
use neon_experiments::fig2;
use neon_sim::SimDuration;

fn bench(c: &mut Criterion) {
    let rows = fig2::run(&fig2::Config::default());
    println!("\n== Figure 2 ==\n{}", fig2::render(&rows));

    let quick = fig2::Config {
        horizon: SimDuration::from_millis(80),
        ..fig2::Config::default()
    };
    c.bench_function("fig2/cdf_collection_80ms", |b| {
        b.iter(|| fig2::run(std::hint::black_box(&quick)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
