//! Regenerates the §3 throughput comparison (direct vs trap-per-request).

use criterion::{criterion_group, criterion_main, Criterion};
use neon_experiments::sec3;
use neon_sim::SimDuration;

fn bench(c: &mut Criterion) {
    let rows = sec3::run(&sec3::Config::default());
    println!(
        "\n== Sec 3 (direct vs trapping stacks) ==\n{}",
        sec3::render(&rows)
    );

    let quick = sec3::Config {
        horizon: SimDuration::from_millis(100),
        sizes: vec![SimDuration::from_micros(20)],
        ..sec3::Config::default()
    };
    c.bench_function("sec3/throughput_comparison_100ms", |b| {
        b.iter(|| sec3::run(std::hint::black_box(&quick)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
