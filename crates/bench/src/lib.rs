//! Criterion benches for the disengaged-scheduling experiments (see benches/).
