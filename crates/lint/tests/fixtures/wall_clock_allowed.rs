//! Allowed: sim time everywhere, one justified host-clock read, and
//! clock *mentions* confined to comments and strings.

pub struct SimTime(u64);

/// Advance by sim ticks, never by Instant::now() deltas.
pub fn advance(now: SimTime, ticks: u64) -> SimTime {
    let _doc = "Instant::now() in a string is not a finding";
    SimTime(now.0 + ticks)
}

pub fn sweep_wall_seconds() -> f64 {
    // lint: allow(wall-clock) — measures the host-side sweep duration for
    // the progress report; the value never enters the simulation
    let start = std::time::Instant::now();
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = std::time::Instant::now();
    }
}
