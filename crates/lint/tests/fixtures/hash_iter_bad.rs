//! Bad: holds an unordered hash container in sim-affecting code.

use std::collections::HashMap;

pub fn tally(xs: &[(u32, u64)]) -> u64 {
    let mut m: HashMap<u32, u64> = HashMap::new();
    for &(k, v) in xs {
        *m.entry(k).or_insert(0) += v;
    }
    m.values().sum()
}
