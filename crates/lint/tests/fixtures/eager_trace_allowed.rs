//! Allowed: lazy detail closures, static labels, format! away from the
//! record call, and a justified gated exception.

pub struct Trace {
    enabled: bool,
}

impl Trace {
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
    pub fn record(&mut self, _at: u64, _label: &str, _detail: String) {}
    pub fn record_with<F: FnOnce() -> String>(&mut self, at: u64, label: &str, f: F) {
        if self.enabled {
            self.record(at, label, f());
        }
    }
}

pub fn on_fault(trace: &mut Trace, at: u64, task: u32) {
    trace.record_with(at, "fault", || format!("task {task} parked"));
    trace.record(at, "grant", String::new());
}

pub fn gated(trace: &mut Trace, at: u64, task: u32) {
    if trace.is_enabled() {
        // lint: allow(eager-trace) — inside an is_enabled() gate, so the
        // format! only runs when the trace is being captured
        trace.record(at, "kill", format!("task {task} overlong"));
    }
}

pub fn unrelated(task: u32) -> String {
    // format! outside a record call is not this rule's business.
    format!("task {task}")
}
