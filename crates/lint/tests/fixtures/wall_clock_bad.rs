//! Bad: reads host clocks and thread identity inside sim-affecting code.

use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    let started = Instant::now();
    let wall = SystemTime::now();
    (started, wall)
}

pub fn worker_tag() -> std::thread::ThreadId {
    std::thread::current().id()
}
