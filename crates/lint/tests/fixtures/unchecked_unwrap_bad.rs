//! Bad: unwrap/expect in library code with no stated invariant.

pub fn first_line(text: &str) -> &str {
    text.lines().next().unwrap()
}

pub fn parse_port(s: &str) -> u16 {
    s.parse().expect("port must be numeric")
}
