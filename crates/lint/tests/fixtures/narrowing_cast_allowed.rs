//! Allowed: checked conversions, widening casts, justified truncation,
//! and cast *mentions* confined to comments and strings.

pub fn checked(len: usize) -> u32 {
    let _doc = "len as u32 in a string is not a finding";
    u32::try_from(len).unwrap_or(u32::MAX)
}

pub fn widen(x: u32) -> u64 {
    x as u64
}

pub fn extract(token: u64) -> u32 {
    // lint: allow(narrowing-cast) — deliberate upper-half bit extraction
    (token >> 32) as u32
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        assert_eq!(300u64 as u8, 44);
    }
}
