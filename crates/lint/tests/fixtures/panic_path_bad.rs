//! Bad: aborting macros on sim-affecting code paths — a panic kills a
//! shared sweep worker, and the placeholder forms compile silently.

pub fn place(device: u32, online: &[u32]) -> u32 {
    if online.is_empty() {
        panic!("no device online");
    }
    if device > 16 {
        todo!("large topologies");
    }
    device
}

pub fn migration_price() -> u64 {
    unimplemented!("priced in a later revision")
}
