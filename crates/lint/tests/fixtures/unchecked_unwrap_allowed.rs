//! Allowed: propagated errors, justified invariants, test scaffolding,
//! and unwrap *mentions* confined to comments and strings.

/// Propagate instead of panicking; .unwrap() in this comment is fine.
pub fn first_line(text: &str) -> Option<&str> {
    let _doc = "calling .unwrap() inside a string is not a finding";
    text.lines().next()
}

pub fn head(xs: &[u32]) -> u32 {
    // lint: allow(unchecked-unwrap) — callers pass the nonempty rotation;
    // an empty one here is an unrecoverable scheduler invariant breach
    *xs.first().expect("rotation nonempty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        assert_eq!("a\nb".lines().next().unwrap(), "a");
    }
}
