//! Allowed: `unreachable!` documents a proven-dead branch, a justified
//! allow covers a misuse guard, and panic!() mentions confined to
//! comments and strings never fire.

pub fn parity(x: u32) -> &'static str {
    match x % 2 {
        0 => "even",
        1 => "odd",
        // The match scrutinee is masked to 0..2 above.
        _ => unreachable!("x % 2 is 0 or 1"),
    }
}

pub fn sized_ring(cap: usize) -> usize {
    let _doc = "todo!() in a string is not a finding";
    if cap == 0 {
        // lint: allow(panic-path) — misuse guard: callers size the ring
        // from a validated config before ever pushing into it
        panic!("zero-capacity ring");
    }
    cap
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_abort() {
        panic!("code under #[cfg(test)] is exempt");
    }
}
