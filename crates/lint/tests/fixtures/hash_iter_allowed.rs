//! Allowed: ordered containers, a justified exception, test scaffolding,
//! and hash-container *mentions* that live only in comments and strings.

use std::collections::BTreeMap;
// lint: allow(hash-iter) — interned strings: keyed contains/insert only,
// never iterated, and the set never reaches the event stream
use std::collections::HashSet;

/// Deterministic tally; a HashMap here would randomize `.values()`.
pub fn tally(xs: &[(u32, u64)]) -> u64 {
    let mut m: BTreeMap<u32, u64> = BTreeMap::new();
    for &(k, v) in xs {
        *m.entry(k).or_insert(0) += v;
    }
    let _doc = "HashMap and HashSet in a string are not findings";
    m.values().sum()
}

pub fn seen(names: &[&str]) -> usize {
    // lint: allow(hash-iter) — membership checks only; len() is order-free
    let s: HashSet<&str> = names.iter().copied().collect();
    s.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }
}
