//! Bad: builds a `format!` string eagerly for every trace-record call,
//! paying the allocation even when tracing is disabled.

pub struct Trace;

impl Trace {
    pub fn record(&mut self, _at: u64, _label: &str, _detail: String) {}
}

pub fn on_fault(trace: &mut Trace, at: u64, task: u32) {
    trace.record(at, "fault", format!("task {task} parked"));
}
