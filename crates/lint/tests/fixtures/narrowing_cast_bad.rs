//! Bad: silently-truncating casts in non-test code.

pub fn pack(len: usize, gen: u64, flag: u64) -> (u32, u16, u8) {
    let slot = len as u32;
    let short = gen as u16;
    let tag = flag as u8;
    (slot, short, tag)
}
