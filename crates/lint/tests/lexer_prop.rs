//! Property test: banned idioms confined to comments, strings and raw
//! strings never produce findings, no matter how the fragments are
//! interleaved. A failure here means the lexer leaked comment or
//! string bytes into the token stream the rule engine scans.

use proptest::prelude::*;

use neon_lint::rules::{lint_source, FileRules};

/// Phrases that would each trip a rule if they reached the token
/// stream as code.
const BANNED: &[&str] = &[
    "HashMap::new()",
    "std::collections::HashSet",
    "Instant::now()",
    "SystemTime::now()",
    "std::thread::current().id()",
    "len as u32",
    "x as u16",
    "y as u8",
    ".unwrap()",
    ".expect(\\\"msg\\\")",
    "trace.record(at, \\\"x\\\", format!(\\\"{t}\\\"))",
];

/// One source line that quarantines `phrase` away from real code.
/// `shape` picks the quarantine; `pad` varies surrounding identifiers
/// so merged comment runs and token adjacency both get exercised.
fn quarantined_line(phrase: &str, shape: u8, pad: usize) -> String {
    match shape % 4 {
        0 => format!("// note {pad}: {phrase} stays commentary"),
        1 => format!("let s{pad} = \"doc {phrase} doc\";"),
        2 => format!("let r{pad} = r#\"raw {phrase} raw\"#;"),
        _ => format!("let b{pad} = 1; /* block {phrase} block */"),
    }
}

proptest! {
    #[test]
    fn banned_phrases_in_comments_and_strings_are_invisible(
        picks in proptest::collection::vec((0usize..11, 0u8..4), 1..40),
    ) {
        let mut src = String::from("pub fn harmless() {\n");
        for (i, &(which, shape)) in picks.iter().enumerate() {
            src.push_str("    ");
            src.push_str(&quarantined_line(BANNED[which], shape, i));
            src.push('\n');
        }
        src.push_str("}\n");
        let findings = lint_source("crates/x/src/lib.rs", &src, &FileRules::default());
        prop_assert!(
            findings.is_empty(),
            "expected no findings, got:\n{}\nsource:\n{src}",
            findings
                .iter()
                .map(|f| f.render())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn lexer_line_numbers_survive_noise_prefix(
        blanks in 0usize..30,
        comments in 0usize..10,
    ) {
        // A finding's line number must count every source line, not
        // just token-bearing ones.
        let mut src = String::new();
        for _ in 0..blanks {
            src.push('\n');
        }
        for i in 0..comments {
            src.push_str(&format!("// filler comment {i}\n"));
        }
        src.push_str("pub fn f(len: usize) -> u32 { len as u32 }\n");
        let findings = lint_source("crates/x/src/lib.rs", &src, &FileRules::default());
        prop_assert_eq!(findings.len(), 1, "source:\n{}", src);
        prop_assert_eq!(findings[0].line as usize, blanks + comments + 1);
        prop_assert_eq!(findings[0].rule, "narrowing-cast");
    }
}
