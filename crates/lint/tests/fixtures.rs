//! Fixture corpus tests: every rule has one `*_bad.rs` fixture whose
//! diagnostics are pinned against a golden `.expected` file, and one
//! `*_allowed.rs` fixture that must lint clean (justified allows,
//! `#[cfg(test)]` code, string/comment mentions).
//!
//! Regenerate the golden files after an intentional diagnostic change:
//!
//! ```text
//! LINT_FIXTURE_BLESS=1 cargo test -p neon-lint --test fixtures
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

use neon_lint::rules::{lint_source, FileRules, RULES};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn read_fixture(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Lints one fixture under the default all-rules config and renders
/// the findings the way the CLI would.
fn rendered_findings(name: &str) -> String {
    let src = read_fixture(name);
    let findings = lint_source(&format!("fixtures/{name}"), &src, &FileRules::default());
    let mut out = String::new();
    for f in &findings {
        out.push_str(&f.render());
        out.push('\n');
    }
    out
}

const BAD_FIXTURES: &[(&str, &str)] = &[
    ("hash-iter", "hash_iter_bad.rs"),
    ("wall-clock", "wall_clock_bad.rs"),
    ("narrowing-cast", "narrowing_cast_bad.rs"),
    ("eager-trace", "eager_trace_bad.rs"),
    ("unchecked-unwrap", "unchecked_unwrap_bad.rs"),
    ("panic-path", "panic_path_bad.rs"),
];

const ALLOWED_FIXTURES: &[&str] = &[
    "hash_iter_allowed.rs",
    "wall_clock_allowed.rs",
    "narrowing_cast_allowed.rs",
    "eager_trace_allowed.rs",
    "unchecked_unwrap_allowed.rs",
    "panic_path_allowed.rs",
];

#[test]
fn bad_fixtures_match_golden_diagnostics() {
    let bless = std::env::var_os("LINT_FIXTURE_BLESS").is_some();
    let mut failures = Vec::new();
    for &(rule, name) in BAD_FIXTURES {
        let got = rendered_findings(name);
        assert!(
            got.contains(&format!("[{rule}]")),
            "{name}: expected at least one [{rule}] finding, got:\n{got}"
        );
        let expected_path =
            fixture_dir().join(format!("{}.expected", name.trim_end_matches(".rs")));
        if bless {
            std::fs::write(&expected_path, &got).expect("write .expected");
            continue;
        }
        let want = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!(
                "cannot read {}: {e}\n(run with LINT_FIXTURE_BLESS=1 to generate)",
                expected_path.display()
            )
        });
        if got != want {
            failures.push(format!(
                "{name}: diagnostics drifted from golden file\n\
                 --- expected ---\n{want}--- got ---\n{got}"
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn bad_fixtures_flag_only_their_own_rule() {
    // Each bad fixture is crafted to trip exactly one rule, so a
    // cross-rule false positive here means a matcher got too greedy.
    for &(rule, name) in BAD_FIXTURES {
        let src = read_fixture(name);
        let findings = lint_source(&format!("fixtures/{name}"), &src, &FileRules::default());
        assert!(!findings.is_empty(), "{name}: no findings at all");
        for f in &findings {
            assert_eq!(
                f.rule, rule,
                "{name}: unexpected [{}] finding at {}:{}",
                f.rule, f.line, f.col
            );
        }
    }
}

#[test]
fn allowed_fixtures_lint_clean() {
    for &name in ALLOWED_FIXTURES {
        let got = rendered_findings(name);
        assert!(got.is_empty(), "{name} should lint clean, got:\n{got}");
    }
}

#[test]
fn every_rule_has_both_fixtures() {
    for rule in RULES {
        let stem = rule.name.replace('-', "_");
        for suffix in ["bad", "allowed"] {
            let path = fixture_dir().join(format!("{stem}_{suffix}.rs"));
            assert!(path.exists(), "missing fixture {}", path.display());
        }
    }
}

// --- CLI end-to-end: exit codes and output over real trees ---------

/// Builds a throwaway tree containing `files` and runs the built
/// `neon-lint` binary over it, returning (exit_ok, stdout).
fn run_cli_on(tag: &str, files: &[(&str, &str)]) -> (bool, String) {
    let root = std::env::temp_dir().join(format!("neon-lint-fixture-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    for (rel, contents) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, contents).expect("write fixture copy");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_neon-lint"))
        .arg("--check")
        .arg(&root)
        .output()
        .expect("run neon-lint");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let _ = std::fs::remove_dir_all(&root);
    (out.status.success(), stdout)
}

#[test]
fn cli_exits_nonzero_on_each_bad_fixture() {
    for &(rule, name) in BAD_FIXTURES {
        let src = read_fixture(name);
        let rel = format!("src/{name}");
        let (ok, stdout) = run_cli_on(name, &[(rel.as_str(), src.as_str())]);
        assert!(!ok, "{name}: CLI should exit nonzero, stdout:\n{stdout}");
        assert!(
            stdout.contains(&format!("[{rule}]")),
            "{name}: stdout missing [{rule}]:\n{stdout}"
        );
    }
}

#[test]
fn cli_exits_zero_on_allowed_fixtures() {
    let sources: Vec<(String, String)> = ALLOWED_FIXTURES
        .iter()
        .map(|name| (format!("src/{name}"), read_fixture(name)))
        .collect();
    let files: Vec<(&str, &str)> = sources
        .iter()
        .map(|(rel, src)| (rel.as_str(), src.as_str()))
        .collect();
    let (ok, stdout) = run_cli_on("allowed", &files);
    assert!(ok, "allowed fixtures should lint clean:\n{stdout}");
    assert!(stdout.contains("0 findings"), "stdout:\n{stdout}");
}

#[test]
fn cli_ignores_findings_under_test_dirs() {
    let src = read_fixture("unchecked_unwrap_bad.rs");
    let (ok, _) = run_cli_on("testdir", &[("tests/unwrap.rs", src.as_str())]);
    assert!(ok, "tests/ dirs are exempt from every rule");
}

#[test]
fn cli_list_and_explain() {
    let bin = env!("CARGO_BIN_EXE_neon-lint");
    let list = Command::new(bin)
        .arg("--list")
        .output()
        .expect("run --list");
    assert!(list.status.success());
    let list_out = String::from_utf8_lossy(&list.stdout).into_owned();
    for rule in RULES {
        assert!(list_out.contains(rule.name), "--list missing {}", rule.name);
    }

    let explain = Command::new(bin)
        .args(["--explain", "hash-iter"])
        .output()
        .expect("run --explain");
    assert!(explain.status.success());
    let explain_out = String::from_utf8_lossy(&explain.stdout).into_owned();
    assert!(
        explain_out.contains("History:"),
        "--explain should cite the historical bug:\n{explain_out}"
    );

    let bogus = Command::new(bin)
        .args(["--explain", "warp-drive"])
        .output()
        .expect("run --explain bogus");
    assert!(
        !bogus.status.success(),
        "--explain on unknown rule must fail"
    );
}
