//! The `neon-lint` CLI.
//!
//! ```text
//! neon-lint [--check] [ROOT]       lint the tree (default: cwd); exit 1 on findings
//! neon-lint --explain <rule>       long-form rule documentation
//! neon-lint --list                 one-line summary of every rule
//! neon-lint --config <path>        config file (default: <ROOT>/lint.toml)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use neon_lint::config::Config;
use neon_lint::rules::{rule_info, RULES};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {} // linting is the default action
            "--list" => {
                for rule in RULES {
                    println!("{:<18} {}", rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(name) = args.next() else {
                    eprintln!("--explain needs a rule name; try --list");
                    return ExitCode::FAILURE;
                };
                let Some(info) = rule_info(&name) else {
                    eprintln!(
                        "unknown rule {name:?}; rules: {}",
                        RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
                    );
                    return ExitCode::FAILURE;
                };
                println!("{}", info.explain);
                return ExitCode::SUCCESS;
            }
            "--config" => {
                let Some(path) = args.next() else {
                    eprintln!("--config needs a path");
                    return ExitCode::FAILURE;
                };
                config_path = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!(
                    "neon-lint — determinism & accounting linter\n\n\
                     usage: neon-lint [--check] [ROOT]\n       \
                     neon-lint --explain <rule> | --list\n       \
                     neon-lint --config <lint.toml>\n\n\
                     Exits 0 on a clean tree, 1 on any finding."
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other:?}; try --help");
                return ExitCode::FAILURE;
            }
            other => {
                if root.replace(PathBuf::from(other)).is_some() {
                    eprintln!("more than one ROOT given");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("neon-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    match neon_lint::lint_tree(&root, &config) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("neon-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
