//! `neon-lint` — a dependency-free determinism & accounting linter.
//!
//! The workspace's load-bearing guarantee is bit-exact determinism:
//! golden trace hashes pin every refactor. This crate enforces the
//! source-level discipline that guarantee rests on, *before* the
//! tests run: no unordered hash iteration in sim-affecting crates, no
//! wall-clock reads in sim code, no silently-truncating casts, no
//! eager `format!` at trace sites, no unjustified panics in library
//! code.
//!
//! Structure:
//!
//! - [`lexer`]: a small hand-rolled Rust lexer (comments, strings,
//!   raw strings, char-vs-lifetime) so rules match tokens, never text;
//! - [`rules`]: the rule engine and the five shipped rules, with
//!   `// lint: allow(rule) — why` suppression;
//! - [`config`]: `lint.toml` per-crate scoping.
//!
//! Run it with `cargo run -p neon-lint --release -- --check`; explain
//! a rule with `-- --explain narrowing-cast`.

pub mod config;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

use config::Config;
use rules::{FileRules, Finding};

/// Result of linting a tree: findings plus file accounting.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files checked (after exclusions).
    pub files_checked: usize,
    /// Number of `.rs` files skipped as tests/benches/examples.
    pub files_skipped: usize,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders every finding plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        let files_with: std::collections::BTreeSet<&str> =
            self.findings.iter().map(|f| f.file.as_str()).collect();
        out.push_str(&format!(
            "neon-lint: {} finding{} across {} file{} ({} files checked, {} test files exempt)\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            files_with.len(),
            if files_with.len() == 1 { "" } else { "s" },
            self.files_checked,
            self.files_skipped,
        ));
        out
    }
}

/// Lints every `.rs` file under `root` with the given config.
pub fn lint_tree(root: &Path, config: &Config) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, config, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for rel in files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if config::is_test_path(&rel_str) {
            report.files_skipped += 1;
            continue;
        }
        let active: Vec<&'static str> = rules::RULES
            .iter()
            .map(|r| r.name)
            .filter(|name| config.rule_applies(name, &rel_str))
            .collect();
        report.files_checked += 1;
        if active.is_empty() {
            continue;
        }
        let file_rules = FileRules {
            active,
            narrowing_targets: config
                .rules
                .get("narrowing-cast")
                .map(|rc| rc.targets.clone())
                .unwrap_or_default(),
        };
        let src = std::fs::read_to_string(root.join(&rel))?;
        report
            .findings
            .extend(rules::lint_source(&rel_str, &src, &file_rules));
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(report)
}

/// Recursively collects workspace-relative `.rs` paths, honouring the
/// global excludes and skipping dotted and `target` directories.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &Config,
    out: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        // lint: allow(unchecked-unwrap) — every walked path came from
        // read_dir under root
        let rel = path.strip_prefix(root).expect("walked under root");
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if config.file_is_excluded(&rel_str) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, config, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_summary() {
        let report = Report {
            findings: vec![],
            files_checked: 10,
            files_skipped: 3,
        };
        assert!(report.is_clean());
        let text = report.render();
        assert!(text.contains("0 findings"), "{text}");
        assert!(text.contains("10 files checked"), "{text}");
    }
}
