//! A small, dependency-free Rust lexer.
//!
//! The linter's rules work on a token stream, never on raw text, so a
//! banned pattern inside a comment, a string literal, a raw string, or
//! a char literal can never produce a finding. The lexer therefore has
//! to get exactly one thing right: *classifying* source bytes into
//! tokens, comments and literals with correct `line:col` positions. It
//! does not need to understand Rust grammar beyond that.
//!
//! Handled forms:
//!
//! - `//` line comments and `/* ... */` block comments (nested, as in
//!   Rust), both captured with their text so allow-comments
//!   (`// lint: allow(rule) — why`) can be recognized;
//! - string literals with escapes (`"a \" b"`), byte strings (`b"..."`),
//!   raw strings with any hash depth (`r"..."`, `r#"..."#`,
//!   `br##"..."##`);
//! - char literals vs lifetimes (`'a'` vs `'a`), including escaped
//!   chars (`'\''`, `'\n'`, `'\u{1F600}'`);
//! - raw identifiers (`r#match`);
//! - numbers (including `0xFF`, `1_000u64`, `1.5e-3`);
//! - identifiers/keywords; everything else as single-char punctuation.

/// What kind of source atom a [`Token`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`HashMap`, `as`, `unwrap`).
    Ident(String),
    /// A lifetime (`'a`); distinct from char literals.
    Lifetime(String),
    /// A numeric literal (verbatim text).
    Number(String),
    /// A string, raw-string, byte-string, or char literal. The content
    /// is deliberately discarded: rules must never see inside.
    Literal,
    /// A single punctuation character.
    Punct(char),
}

/// One token with its 1-indexed source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and (for idents/numbers) text.
    pub kind: Tok,
    /// 1-indexed source line.
    pub line: u32,
    /// 1-indexed column (in characters).
    pub col: u32,
}

/// One comment with its span and verbatim text. A run of whole-line
/// `//` comments on consecutive lines is merged into a single
/// `Comment` spanning the run, so a `lint: allow(...)` marker may wrap
/// its justification onto following comment lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-indexed line the comment starts on.
    pub line: u32,
    /// 1-indexed line the comment ends on (same as `line` for a single
    /// `//`; the last line of a block comment or a merged `//` run).
    pub end_line: u32,
    /// `true` if no code precedes the comment on its first line.
    pub whole_line: bool,
    /// The comment text including its `//` / `/*` introducer; merged
    /// runs are newline-joined.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order (not part of `tokens`).
    pub comments: Vec<Comment>,
}

/// Lexes Rust source text. Never fails: unterminated literals simply
/// consume to end-of-file (the compiler, not the linter, owns
/// rejecting malformed source).
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, col),
                'b' if self.peek(1) == Some('"') => {
                    self.bump(); // b
                    self.string(line, col);
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_at(2) => {
                    self.bump(); // b
                    self.bump(); // r
                    self.raw_string(line, col);
                }
                'r' if self.raw_string_at(1) => {
                    self.bump(); // r
                    self.raw_string(line, col);
                }
                'r' if self.peek(1) == Some('#') && is_ident_start(self.peek(2)) => {
                    // Raw identifier r#ident.
                    self.bump(); // r
                    self.bump(); // #
                    self.ident(line, col);
                }
                '\'' => self.char_or_lifetime(line, col),
                c if is_ident_start(Some(c)) => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c => {
                    self.bump();
                    self.push(Tok::Punct(c), line, col);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: Tok, line: u32, col: u32) {
        self.out.tokens.push(Token { kind, line, col });
    }

    /// Whether `r` (at offset-1) begins a raw string: `r"` or `r#...#"`.
    fn raw_string_at(&self, mut ahead: usize) -> bool {
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        self.peek(ahead) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // A run of whole-line `//` comments on consecutive lines reads
        // as one paragraph, so it lexes as one comment: an allow-marker
        // may wrap its justification. A comment trailing code on its
        // line never joins a run — that would leak an allow written for
        // one statement onto the next.
        let whole_line = self.out.tokens.last().is_none_or(|t| t.line != line);
        if whole_line {
            if let Some(prev) = self.out.comments.last_mut() {
                if prev.end_line + 1 == line && prev.whole_line {
                    prev.end_line = line;
                    prev.text.push('\n');
                    prev.text.push_str(&text);
                    return;
                }
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            whole_line,
            text,
        });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            whole_line: self.out.tokens.last().is_none_or(|t| t.line != line),
            text,
        });
    }

    fn string(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // whatever is escaped, including '"'
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(Tok::Literal, line, col);
    }

    fn raw_string(&mut self, line: u32, col: u32) {
        // At entry the cursor sits on the first '#' or the '"'.
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(Tok::Literal, line, col);
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
                     // `'a` (no closing quote after one ident) is a lifetime; `'a'`
                     // is a char. Escapes (`'\n'`) are always chars.
        if is_ident_start(self.peek(0)) && self.peek(1) != Some('\'') {
            let mut name = String::from("'");
            while is_ident_continue(self.peek(0)) {
                // lint: allow(unchecked-unwrap) — bump follows a successful
                // peek of the same character
                name.push(self.bump().expect("peeked"));
            }
            self.push(Tok::Lifetime(name), line, col);
            return;
        }
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(Tok::Literal, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut name = String::new();
        while is_ident_continue(self.peek(0)) {
            // lint: allow(unchecked-unwrap) — bump follows a successful peek
            // of the same character
            name.push(self.bump().expect("peeked"));
        }
        self.push(Tok::Ident(name), line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `1.max(2)` does not.
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(text.chars().last(), Some('e') | Some('E'))
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // Exponent sign: `1.5e-3`.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Number(text), line, col);
    }
}

fn is_ident_start(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphabetic() || c == '_')
}

fn is_ident_continue(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Convenience: the identifiers of a lexed file, in order (test helper).
#[cfg(test)]
fn idents(lexed: &Lexed) -> Vec<&str> {
    lexed
        .tokens
        .iter()
        .filter_map(|t| match &t.kind {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect()
}

// Unused field kept for error spans in future diagnostics.
impl Lexer<'_> {
    #[allow(dead_code)]
    fn source(&self) -> &str {
        self.src
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_not_tokens() {
        let lexed = lex("// HashMap in a comment\nlet x = 1; /* Instant::now */");
        assert!(idents(&lexed).iter().all(|i| *i != "HashMap"));
        assert!(idents(&lexed).iter().all(|i| *i != "Instant"));
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner HashMap */ still comment */ fn f() {}");
        assert_eq!(idents(&lexed), vec!["fn", "f"]);
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn strings_hide_their_content() {
        let lexed = lex(r#"let s = "Instant::now() . unwrap()";"#);
        assert_eq!(idents(&lexed), vec!["let", "s"]);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lexed = lex(r#"let s = "a \" HashMap \" b"; let t = 2;"#);
        assert_eq!(idents(&lexed), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lexed = lex(r###"let s = r#"as u32 "quoted" more"#; let t = 3;"###);
        assert_eq!(idents(&lexed), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let lexed = lex(r###"let a = b"unwrap()"; let b2 = br#"expect("x")"#;"###);
        assert_eq!(idents(&lexed), vec!["let", "a", "let", "b2"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, Tok::Lifetime(_)))
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Tok::Literal)
            .count();
        assert_eq!(literals, 2, "'x' and '\\'' are char literals");
    }

    #[test]
    fn raw_identifiers() {
        let lexed = lex("let r#as = 1;");
        assert_eq!(idents(&lexed), vec!["let", "as"]);
    }

    #[test]
    fn numbers_and_positions() {
        let lexed = lex("let x = 0xFF_u32;\nlet y = 1.5e-3;");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Number(s) => Some((s.as_str(), t.line, t.col)),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec![("0xFF_u32", 1, 9), ("1.5e-3", 2, 9)]);
    }

    #[test]
    fn method_call_on_number_is_not_consumed() {
        let lexed = lex("let x = 1.max(2);");
        assert!(idents(&lexed).contains(&"max"));
    }

    #[test]
    fn positions_are_one_indexed() {
        let lexed = lex("a\n  b");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[0].col, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[1].col, 3);
    }

    #[test]
    fn unterminated_literals_consume_to_eof() {
        let lexed = lex("let s = \"unterminated HashMap");
        assert_eq!(idents(&lexed), vec!["let", "s"]);
        assert_eq!(lexed.tokens.last().unwrap().kind, Tok::Literal);
    }

    #[test]
    fn whole_line_comment_runs_merge() {
        let lexed = lex("// first line\n// second line\nfn f() {}\n");
        assert_eq!(lexed.comments.len(), 1);
        let c = &lexed.comments[0];
        assert_eq!((c.line, c.end_line), (1, 2));
        assert!(c.whole_line);
        assert_eq!(c.text, "// first line\n// second line");
    }

    #[test]
    fn trailing_comments_do_not_merge() {
        // Trailing comments belong to their statement; merging them
        // would stretch an allow-marker over the next line's code.
        let lexed = lex("let a = 1; // for a\nlet b = 2; // for b\n");
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].whole_line);
        assert_eq!(lexed.comments[0].end_line, 1);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn blank_line_breaks_a_comment_run() {
        let lexed = lex("// one\n\n// two\n");
        assert_eq!(lexed.comments.len(), 2);
    }
}
